//! Dominance and dead-structure analysis over the utility incidence index.
//!
//! Static "dead code" for sensor networks: a sensor whose every incident
//! utility part is also incident to another sensor with pointwise
//! no-smaller singleton contributions can never beat that sensor in any
//! set the greedy (or any other scheduler) builds — it is *dominated*
//! ([`CoolCode::DominatedSensor`]). A period slot no sensor is assigned to
//! is *statically dead* ([`CoolCode::StaticallyDeadSlot`]): coverage there
//! is identically zero whatever the batteries do.
//!
//! Both passes run on the CSR [`IncidenceIndex`] the sparse evaluator
//! already maintains, so the whole analysis is `O(Σ deg)` up to the
//! candidate cap: dominator candidates for `u` are probed only from `u`'s
//! *smallest* incident part (a true dominator must appear in every one of
//! `u`'s parts, hence also in the smallest), and at most
//! [`CANDIDATE_CAP`] of them are tried.
//!
//! Energy positions are not compared: every scenario-derived instance runs
//! all sensors on one homogeneous [`cool_energy::ChargeCycle`], so no
//! sensor holds a better energy position by construction (documented in
//! DESIGN.md §11).

use crate::diag::{Diagnostic, Report};
use cool_common::{CoolCode, SensorId, SensorSet};
use cool_core::schedule::{PeriodSchedule, ScheduleMode};
use cool_utility::{IncidenceIndex, SumUtility, UtilityFunction};

/// Dominator candidates probed per sensor. A dominated sensor in practice
/// shares its smallest part with few peers; the cap keeps the pass
/// `O(Σ deg)` on adversarial instances at the price of (soundly) missing
/// dominators ranked past the cap.
const CANDIDATE_CAP: usize = 8;

/// Flags sensors that can never out-contribute a peer
/// ([`CoolCode::DominatedSensor`]): empty-support sensors (no incident
/// part at all) and sensors pointwise-dominated by a candidate from their
/// smallest incident part. On an exact tie (identical parts, identical
/// contributions) only the higher-indexed sensor is flagged, so mutually
/// identical sensors never knock each other out.
#[must_use]
pub fn lint_dominance(utility: &SumUtility) -> Report {
    let mut report = Report::new();
    let index = utility.incidence();
    let n = index.universe();
    let n_parts = utility.n_targets();

    // Reverse lists: part id -> member sensors, O(Σ deg).
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_parts];
    for v in 0..n {
        for &pid in index.incident(SensorId(v)) {
            members[pid as usize].push(v);
        }
    }

    for u in 0..n {
        let parts_u = index.incident(SensorId(u));
        if parts_u.is_empty() {
            report.push(
                Diagnostic::new(
                    CoolCode::DominatedSensor,
                    format!(
                        "sensor {u} is outside every target's coverage: it contributes \
                             zero utility in any set"
                    ),
                )
                .with_help("remove the sensor or move it inside some target's sensing range"),
            );
            continue;
        }
        // A dominator must share u's smallest part.
        let smallest = parts_u
            .iter()
            .min_by_key(|&&pid| members[pid as usize].len())
            .copied()
            .unwrap_or(parts_u[0]);
        let contributions_u = singleton_contributions(utility, u, parts_u);
        for &v in members[smallest as usize]
            .iter()
            .filter(|&&v| v != u)
            .take(CANDIDATE_CAP)
        {
            if let Some(strict) = dominates(utility, index, v, parts_u, &contributions_u) {
                if strict || v < u {
                    report.push(
                        Diagnostic::new(
                            CoolCode::DominatedSensor,
                            format!(
                                "sensor {u} is dominated by sensor {v}: every part sensor {u} \
                                 touches is also covered by sensor {v} with at least the same \
                                 contribution"
                            ),
                        )
                        .with_help(
                            "the dominated sensor can never beat its dominator in any schedule; \
                             consider redeploying it",
                        ),
                    );
                    break;
                }
            }
        }
    }
    report
}

/// `Some(strict)` when `v` dominates `u`: `incident(u) ⊆ incident(v)` and
/// `c(u, p) ≤ c(v, p)` on every shared part, with `strict` recording
/// whether any containment or contribution is strict.
fn dominates(
    utility: &SumUtility,
    index: &IncidenceIndex,
    v: usize,
    parts_u: &[u32],
    contributions_u: &[f64],
) -> Option<bool> {
    let parts_v = index.incident(SensorId(v));
    // Two-pointer subset test over the sorted CSR slices.
    let mut iv = parts_v.iter();
    for &pu in parts_u {
        if !iv.by_ref().any(|&pv| pv == pu) {
            return None;
        }
    }
    let mut strict = parts_v.len() > parts_u.len();
    for (&pid, &cu) in parts_u.iter().zip(contributions_u) {
        let cv = singleton_eval(utility, v, pid);
        if cu > cv {
            return None;
        }
        strict |= cv > cu;
    }
    Some(strict)
}

/// `c(u, p)` for each of `u`'s incident parts.
fn singleton_contributions(utility: &SumUtility, u: usize, parts_u: &[u32]) -> Vec<f64> {
    parts_u
        .iter()
        .map(|&pid| singleton_eval(utility, u, pid))
        .collect()
}

/// Part `pid`'s value on the singleton `{v}`.
fn singleton_eval(utility: &SumUtility, v: usize, pid: u32) -> f64 {
    let singleton = SensorSet::from_indices(utility.universe(), [v]);
    utility.parts()[pid as usize].eval(&singleton)
}

/// Flags period slots with an empty active set
/// ([`CoolCode::StaticallyDeadSlot`]): coverage in such a slot is zero no
/// matter how the batteries evolve.
#[must_use]
pub fn lint_dead_slots(schedule: &PeriodSchedule) -> Report {
    let mut report = Report::new();
    let slots = schedule.slots_per_period();
    for t in 0..slots {
        if schedule.active_set(t).is_empty() {
            let cause =
                if schedule.mode() == ScheduleMode::ActiveSlot && schedule.n_sensors() < slots {
                    format!(
                        " (structural: {} sensors cannot populate {slots} active-slot positions)",
                        schedule.n_sensors()
                    )
                } else {
                    String::new()
                };
            report.push(
                Diagnostic::new(
                    CoolCode::StaticallyDeadSlot,
                    format!("no sensor is active in slot {t}: coverage is zero there{cause}"),
                )
                .with_help("add sensors or rebalance assignments so every slot has coverage"),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_utility::DetectionUtility;

    /// Three-sensor instance: sensor 0 covers both targets at p = 0.5,
    /// sensor 1 covers only target 0 at p = 0.3 (dominated by 0), sensor 2
    /// covers target 1 at p = 0.9 (not dominated: higher contribution).
    fn instance() -> SumUtility {
        let t0 = DetectionUtility::new(vec![0.5, 0.3, 0.0]);
        let t1 = DetectionUtility::new(vec![0.5, 0.0, 0.9]);
        SumUtility::new(vec![t0.into(), t1.into()])
    }

    #[test]
    fn dominated_sensor_is_w007() {
        let r = lint_dominance(&instance());
        assert!(r.has_code(CoolCode::DominatedSensor), "{r}");
        let flagged: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == CoolCode::DominatedSensor)
            .collect();
        assert_eq!(flagged.len(), 1, "{r}");
        assert!(flagged[0]
            .message
            .contains("sensor 1 is dominated by sensor 0"));
    }

    #[test]
    fn exact_ties_flag_only_the_higher_index() {
        let t0 = DetectionUtility::new(vec![0.4, 0.4]);
        let u = SumUtility::new(vec![t0.into()]);
        let r = lint_dominance(&u);
        let flagged: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == CoolCode::DominatedSensor)
            .collect();
        assert_eq!(flagged.len(), 1, "{r}");
        assert!(flagged[0]
            .message
            .contains("sensor 1 is dominated by sensor 0"));
    }

    #[test]
    fn empty_support_sensor_is_w007() {
        let t0 = DetectionUtility::new(vec![0.4, 0.0]);
        let u = SumUtility::new(vec![t0.into()]);
        let r = lint_dominance(&u);
        assert!(r.has_code(CoolCode::DominatedSensor), "{r}");
        assert!(r.diagnostics().iter().any(|d| d
            .message
            .contains("sensor 1 is outside every target's coverage")));
    }

    #[test]
    fn incomparable_sensors_are_clean() {
        let t0 = DetectionUtility::new(vec![0.5, 0.0]);
        let t1 = DetectionUtility::new(vec![0.0, 0.5]);
        let u = SumUtility::new(vec![t0.into(), t1.into()]);
        assert!(lint_dominance(&u).is_clean());
    }

    #[test]
    fn dead_slot_is_w008() {
        // Two sensors over four slots: slots 2 and 3 are empty.
        let s = PeriodSchedule::new(ScheduleMode::ActiveSlot, 4, vec![0, 1]);
        let r = lint_dead_slots(&s);
        let dead: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == CoolCode::StaticallyDeadSlot)
            .collect();
        assert_eq!(dead.len(), 2, "{r}");
        assert!(dead[0].message.contains("structural"), "{r}");
    }

    #[test]
    fn fully_populated_schedule_has_no_dead_slots() {
        let s = PeriodSchedule::new(ScheduleMode::ActiveSlot, 4, vec![0, 1, 2, 3, 0]);
        assert!(lint_dead_slots(&s).is_clean());
    }
}
