//! Static invariant analysis for Cool scenarios, schedules, and utilities.
//!
//! Everything the schedulers and the testbed simulator *assume* — the slot
//! algebra of §II-B, per-sensor energy budgets, the submodular-utility
//! axioms behind the greedy's ½-approximation (Lemma 4.1), and the scenario
//! file grammar — is checkable **before** anything executes. This crate
//! performs those checks and reports findings as [`Diagnostic`]s carrying
//! stable, append-only [`CoolCode`]s (`COOL-E001`, `COOL-W004`, …),
//! severity levels, and source locations into scenario files; a [`Report`]
//! renders them for humans or as JSON for tooling.
//!
//! # Entry points
//!
//! * [`lint_scenario_text`] / [`lint_scenario_path`] — scenario files
//!   (`cool lint <scenario>` in the CLI);
//! * [`lint_schedule`] / [`lint_horizon`] — schedules against charge
//!   cycles;
//! * [`lint_utility`] / [`lint_universe`] — utility implementations against
//!   the submodular axioms, by sampling;
//! * [`preflight`] — the bundle of checks the testbed simulator runs before
//!   accepting a plan.
//!
//! # Example
//!
//! ```
//! use cool_lint::lint_scenario_text;
//! use cool_common::CoolCode;
//!
//! let report = lint_scenario_text("detection_p = 1.5\n", "bad.txt");
//! assert!(!report.is_clean());
//! assert!(report.has_code(CoolCode::InvalidProbability));
//! assert!(report.to_json().contains("COOL-E005"));
//! ```

pub mod abstract_energy;
pub mod audit;
pub mod connectivity;
pub mod diag;
pub mod dominance;
pub mod sarif;
pub mod scenario;
pub mod schedule;
pub mod utility;

pub use abstract_energy::{
    feasible_region, grid_feasible_region, grid_sensor_replay_clean, interval_step, interval_tick,
    lint_grid_schedule_abstract, lint_schedule_abstract, proves_feasible_for_all,
    proves_grid_feasible_for_all, sensor_replay_clean, FeasibleRegion,
};
pub use audit::{audit_scenario_path, audit_scenario_text, AuditOptions, AuditOutcome};
pub use connectivity::lint_connectivity;
pub use cool_common::CoolCode;
pub use diag::{Diagnostic, Report, Severity};
pub use dominance::{lint_dead_slots, lint_dominance};
pub use sarif::to_sarif;
pub use scenario::{lint_geometry, lint_scenario_path, lint_scenario_text, ScenarioSpec};
pub use schedule::{lint_grid_schedule, lint_horizon, lint_schedule, lint_schedule_from};
pub use utility::{lint_universe, lint_utility};

use cool_common::SeedSequence;
use cool_utility::UtilityFunction;

/// Sampling trials used by [`preflight`]'s utility-axiom check — small
/// enough to be negligible next to a simulation run, large enough to catch
/// the systematic violations that break the greedy's guarantee.
const PREFLIGHT_TRIALS: usize = 64;

/// The mandatory pre-flight bundle for a simulator entry: universe/size
/// consistency, a non-empty horizon, and a sampled utility-axiom
/// conformance check (deterministic — the RNG is fixed, so a given input
/// always produces the same report).
pub fn preflight<U: UtilityFunction>(utility: &U, n_nodes: usize, slots: usize) -> Report {
    let mut report = Report::new();
    if slots == 0 {
        report.push(
            Diagnostic::new(CoolCode::EmptySlotCount, "simulation horizon is zero slots")
                .with_help("run the simulator for at least one slot"),
        );
    }
    report.merge(lint_universe(utility, n_nodes));
    if report.is_clean() {
        report.merge(lint_utility(
            utility,
            PREFLIGHT_TRIALS,
            &mut SeedSequence::new(0).nth_rng(0),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_utility::DetectionUtility;

    #[test]
    fn preflight_accepts_conforming_input() {
        let u = DetectionUtility::uniform(6, 0.4);
        let r = preflight(&u, 6, 48);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn preflight_rejects_universe_mismatch() {
        let u = DetectionUtility::uniform(6, 0.4);
        let r = preflight(&u, 7, 48);
        assert!(r.has_code(CoolCode::UniverseMismatch), "{r}");
    }

    #[test]
    fn preflight_rejects_zero_slots() {
        let u = DetectionUtility::uniform(6, 0.4);
        let r = preflight(&u, 6, 0);
        assert!(r.has_code(CoolCode::EmptySlotCount), "{r}");
    }

    #[test]
    fn preflight_is_deterministic() {
        let u = DetectionUtility::uniform(6, 0.4);
        assert_eq!(preflight(&u, 6, 48), preflight(&u, 6, 48));
    }
}
