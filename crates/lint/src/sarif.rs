//! SARIF v2.1.0 rendering of lint/audit [`Report`]s.
//!
//! [Static Analysis Results Interchange Format][sarif] is the lingua
//! franca of CI code-scanning UIs; emitting it lets `cool lint`/`cool
//! audit` findings land in the same annotation pipelines as any other
//! analyser. The emitter is hand-rolled (the workspace has no JSON
//! dependency), byte-deterministic — fixed key order, no timestamps —
//! and publishes **every** [`CoolCode`] in the rules table (with its
//! [`CoolCode::summary`] as `shortDescription`) so `ruleIndex` is stable
//! across runs and releases: rule order is the append-only order of
//! [`CoolCode::all`].
//!
//! [sarif]: https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html

use crate::diag::{Report, Severity};
use cool_common::json::escape as json_string;
use cool_common::CoolCode;
use std::fmt::Write as _;

/// Renders `report` as a single-run SARIF v2.1.0 log.
///
/// Severity maps `error → "error"`, `warning → "warning"`; a diagnostic's
/// file/line (when present) becomes its `physicalLocation`. Output is
/// byte-identical for equal reports.
#[must_use]
pub fn to_sarif(report: &Report) -> String {
    // Writing into a String is infallible; write! results are discarded.
    let mut out = String::from("{");
    out.push_str(
        "\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",",
    );
    out.push_str("\"runs\":[{\"tool\":{\"driver\":{\"name\":\"cool-lint\",");
    let _ = write!(
        out,
        "\"version\":{},",
        json_string(env!("CARGO_PKG_VERSION"))
    );
    out.push_str("\"informationUri\":\"https://github.com/cool-paper/cool\",\"rules\":[");
    for (i, &code) in CoolCode::all().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let level = if code.is_error() { "error" } else { "warning" };
        let _ = write!(
            out,
            "{{\"id\":{},\"name\":{},\"shortDescription\":{{\"text\":{}}},\
             \"defaultConfiguration\":{{\"level\":\"{level}\"}}}}",
            json_string(code.as_str()),
            json_string(code.name()),
            json_string(code.summary()),
        );
    }
    out.push_str("]}},\"results\":[");
    for (i, d) in report.diagnostics().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let level = match d.severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let rule_index = rule_index(d.code);
        let _ = write!(
            out,
            "{{\"ruleId\":{},\"ruleIndex\":{rule_index},\"level\":\"{level}\",",
            json_string(d.code.as_str()),
        );
        let mut message = d.message.clone();
        if let Some(help) = &d.help {
            let _ = write!(message, " (help: {help})");
        }
        let _ = write!(out, "\"message\":{{\"text\":{}}}", json_string(&message));
        if let Some(file) = &d.file {
            let _ = write!(
                out,
                ",\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":{}}}",
                json_string(file)
            );
            if let Some(line) = d.line {
                let _ = write!(out, ",\"region\":{{\"startLine\":{line}}}");
            }
            out.push_str("}}]");
        }
        out.push('}');
    }
    out.push_str("]}]}");
    out
}

/// Index of `code` in the append-only [`CoolCode::all`] rules table.
fn rule_index(code: CoolCode) -> usize {
    // `all()` enumerates every variant (unit-tested in cool-common), so the
    // fallback is unreachable; 0 keeps the emitter total without panicking.
    CoolCode::all()
        .iter()
        .position(|&c| c == code)
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;

    fn sample() -> Report {
        let mut r = Report::for_file("scenarios/bad.txt");
        r.push(
            Diagnostic::new(CoolCode::InvalidProbability, "detection_p = 1.5")
                .with_line(4)
                .with_help("use a probability in [0, 1]"),
        );
        r.push(Diagnostic::new(CoolCode::ZeroWeightTarget, "target 3"));
        r
    }

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let sarif = to_sarif(&sample());
        assert!(sarif.starts_with("{\"$schema\":"));
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        // Every code appears as a rule, including ones with no result.
        for &code in CoolCode::all() {
            assert!(sarif.contains(&format!("\"id\":\"{}\"", code.as_str())));
        }
        assert!(sarif.contains("\"ruleId\":\"COOL-E005\""));
        assert!(sarif.contains("\"level\":\"warning\""));
        assert!(sarif.contains("\"startLine\":4"));
        assert!(sarif.contains("\"uri\":\"scenarios/bad.txt\""));
        assert!(sarif.contains("(help: use a probability in [0, 1])"));
    }

    #[test]
    fn rule_index_matches_rules_array_order() {
        let sarif = to_sarif(&sample());
        let e005 = rule_index(CoolCode::InvalidProbability);
        assert!(sarif.contains(&format!("\"ruleIndex\":{e005},")));
        assert_eq!(rule_index(CoolCode::InfeasiblePeriodStructure), 0);
    }

    #[test]
    fn sarif_is_byte_deterministic() {
        assert_eq!(to_sarif(&sample()), to_sarif(&sample()));
    }

    #[test]
    fn empty_report_has_empty_results() {
        let sarif = to_sarif(&Report::new());
        assert!(sarif.contains("\"results\":[]"));
        assert!(sarif.ends_with("]}]}"));
    }
}
