//! Scenario-file linting.
//!
//! [`lint_scenario_text`] re-implements the `key = value` scenario grammar
//! of the `cool` CLI as a *tolerant* parser: instead of stopping at the
//! first malformed input like `Scenario::parse`, it records every problem
//! as a [`Diagnostic`] with a line number, then — when the fields are
//! usable — goes on to check the physical invariants the schedulers assume
//! (slot algebra, probabilities, geometry) and, deterministically
//! re-deriving the same instance the scenario would run, the reachability
//! and weight of every target. Nothing here executes a scheduler or the
//! simulator.

use crate::diag::{Diagnostic, Report};
use crate::utility::{lint_universe, lint_utility};
use cool_common::{CoolCode, SeedSequence};
use cool_core::instances::geometric_multi_target;
use cool_energy::{ChargeCycle, CycleError, Fleet, FleetError, FleetGrid, SensorProfile};
use cool_geometry::deployment::{disks_at, sensors_covering};
use cool_geometry::{Point, Rect};
use cool_utility::AnyUtility;

/// The scenario fields the linter understands, mirroring the CLI's
/// `Scenario` defaults (the paper's testbed setting).
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Number of sensors `n`.
    pub sensors: usize,
    /// Number of targets `m`.
    pub targets: usize,
    /// Per-sensor detection probability `p`.
    pub detection_p: f64,
    /// Discharge time `T_d` in minutes.
    pub discharge_minutes: f64,
    /// Recharge time `T_r` in minutes.
    pub recharge_minutes: f64,
    /// Working time in hours.
    pub hours: f64,
    /// Square region side length.
    pub region: f64,
    /// Sensing radius.
    pub radius: f64,
    /// Communication radius for the connectivity lint; `0` disables the
    /// check (the paper's model has no communication graph).
    pub comms_radius: f64,
    /// Root random seed.
    pub seed: u64,
    /// Per-sensor battery capacities (comma list, cyclic). When any of the
    /// four profile lists is non-empty the profiles define the energy
    /// model and the homogeneous duration keys are ignored.
    pub battery: Vec<f64>,
    /// Per-sensor active draws in milliwatts (comma list, cyclic).
    pub mu_d: Vec<f64>,
    /// Per-sensor recharge powers in milliwatts (comma list, cyclic).
    pub mu_r: Vec<f64>,
    /// Per-sensor solar efficiencies in `(0, 1]` (comma list, cyclic).
    pub solar_eff: Vec<f64>,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            sensors: 100,
            targets: 5,
            detection_p: 0.4,
            discharge_minutes: 15.0,
            recharge_minutes: 45.0,
            hours: 12.0,
            region: 500.0,
            radius: 100.0,
            comms_radius: 0.0,
            seed: 2011,
            battery: Vec::new(),
            mu_d: Vec::new(),
            mu_r: Vec::new(),
            solar_eff: Vec::new(),
        }
    }
}

impl ScenarioSpec {
    /// `true` when any per-sensor profile list is set.
    pub fn has_profiles(&self) -> bool {
        !self.battery.is_empty()
            || !self.mu_d.is_empty()
            || !self.mu_r.is_empty()
            || !self.solar_eff.is_empty()
    }

    /// The fleet the scenario describes: per-sensor profiles (cyclic
    /// assignment, unset fields at their defaults) when any profile list
    /// is set, else `sensors` copies of the homogeneous cycle.
    ///
    /// # Errors
    ///
    /// [`FleetError`] for degenerate or non-decomposable profiles;
    /// a [`CycleError`] is wrapped as `BadProfile` on the legacy path.
    pub fn fleet(&self) -> Result<Fleet, FleetError> {
        if self.has_profiles() {
            let defaults = SensorProfile::default();
            let pick = |values: &[f64], v: usize, default: f64| {
                if values.is_empty() {
                    default
                } else {
                    values[v % values.len()]
                }
            };
            let profiles = (0..self.sensors)
                .map(|v| SensorProfile {
                    battery: pick(&self.battery, v, defaults.battery),
                    mu_d: pick(&self.mu_d, v, defaults.mu_d),
                    mu_r: pick(&self.mu_r, v, defaults.mu_r),
                    solar_eff: pick(&self.solar_eff, v, defaults.solar_eff),
                })
                .collect();
            Fleet::new(profiles)
        } else {
            let cycle = ChargeCycle::from_minutes(self.discharge_minutes, self.recharge_minutes)
                .map_err(|source| FleetError::BadProfile { sensor: 0, source })?;
            Fleet::uniform_from_cycle(self.sensors, cycle)
        }
    }
}

/// Which source line last assigned each field (for diagnostics).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct FieldLines {
    sensors: Option<usize>,
    targets: Option<usize>,
    detection_p: Option<usize>,
    discharge_minutes: Option<usize>,
    recharge_minutes: Option<usize>,
    hours: Option<usize>,
    region: Option<usize>,
    radius: Option<usize>,
    comms_radius: Option<usize>,
    battery: Option<usize>,
    mu_d: Option<usize>,
    mu_r: Option<usize>,
    solar_eff: Option<usize>,
}

const KNOWN_KEYS: [&str; 15] = [
    "sensors",
    "targets",
    "detection_p",
    "discharge_minutes",
    "recharge_minutes",
    "hours",
    "region",
    "radius",
    "comms_radius",
    "seed",
    "scheduler",
    "battery",
    "mu_d",
    "mu_r",
    "solar_eff",
];

const SCHEDULERS: [&str; 10] = [
    "greedy",
    "lazy",
    "round-robin",
    "round_robin",
    "random",
    "static",
    "rsc",
    "set-once",
    "set_once",
    "hef",
];

/// Trials for the sampled utility-axiom conformance check.
const AXIOM_TRIALS: usize = 200;

/// Lints scenario text, attributing diagnostics to `file`.
///
/// The returned [`Report`] is clean (possibly with warnings) exactly when
/// the scenario can be handed to the scheduler pipeline without panicking
/// or producing a meaningless result.
pub fn lint_scenario_text(text: &str, file: &str) -> Report {
    let mut report = Report::for_file(file);
    let (spec, lines, fields_usable) = parse_tolerant(text, &mut report);
    check_fields(&spec, lines, &mut report);
    // Deeper, instance-level checks only make sense on well-formed fields.
    if fields_usable && report.is_clean() {
        check_instance(&spec, &mut report);
    }
    report
}

/// Reads and lints a scenario file from disk.
///
/// # Errors
///
/// Returns the I/O error message when the file cannot be read (an unreadable
/// file is not a lint finding — there is nothing to attach a line to).
pub fn lint_scenario_path(path: &str) -> Result<Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(lint_scenario_text(&text, path))
}

/// Tolerant `key = value` parse: every malformed line, unknown key,
/// duplicate key, and unparsable value becomes a diagnostic, and parsing
/// continues. Returns the spec (defaults where a value was unusable), the
/// per-field line map, and whether every *present* field parsed.
pub(crate) fn parse_tolerant(text: &str, report: &mut Report) -> (ScenarioSpec, FieldLines, bool) {
    let mut spec = ScenarioSpec::default();
    let mut lines = FieldLines::default();
    let mut seen: Vec<(String, usize)> = Vec::new();
    let mut usable = true;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            report.push(
                Diagnostic::new(
                    CoolCode::ScenarioLineMalformed,
                    format!("expected `key = value`, got `{}`", raw.trim()),
                )
                .with_line(lineno)
                .with_help("write one `key = value` assignment per line; `#` starts a comment"),
            );
            usable = false;
            continue;
        };
        let key = key.trim();
        let value = value.trim();

        if !KNOWN_KEYS.contains(&key) {
            report.push(
                Diagnostic::new(CoolCode::UnknownScenarioKey, format!("unknown key `{key}`"))
                    .with_line(lineno)
                    .with_help(format!("known keys: {}", KNOWN_KEYS.join(", "))),
            );
            continue;
        }
        if let Some((_, first)) = seen.iter().find(|(k, _)| k == key) {
            report.push(
                Diagnostic::new(
                    CoolCode::DuplicateScenarioKey,
                    format!("`{key}` was already set on line {first}; the later value wins"),
                )
                .with_line(lineno),
            );
        }
        seen.push((key.to_string(), lineno));

        let parsed = apply_field(&mut spec, &mut lines, key, value, lineno, report);
        usable &= parsed;
    }
    (spec, lines, usable)
}

/// Parses one field value into `spec`; returns `false` (after reporting)
/// when the value does not parse at all.
#[allow(clippy::too_many_lines)] // one flat match arm per scenario key
fn apply_field(
    spec: &mut ScenarioSpec,
    lines: &mut FieldLines,
    key: &str,
    value: &str,
    lineno: usize,
    report: &mut Report,
) -> bool {
    fn bad(key: &str, value: &str, expected: &str, lineno: usize) -> Diagnostic {
        Diagnostic::new(
            CoolCode::ScenarioFieldInvalid,
            format!("bad value `{value}` for `{key}`"),
        )
        .with_line(lineno)
        .with_help(format!("expected {expected}"))
    }
    macro_rules! parse_into {
        ($field:ident, $ty:ty, $expected:expr) => {
            match value.parse::<$ty>() {
                Ok(v) => {
                    spec.$field = v;
                    true
                }
                Err(_) => {
                    report.push(bad(key, value, $expected, lineno));
                    false
                }
            }
        };
    }
    // Comma-separated per-sensor profile lists; an empty value clears the
    // list (range checks come later in `check_fields`).
    macro_rules! parse_list {
        ($field:ident, $expected:expr) => {
            if value.is_empty() {
                spec.$field = Vec::new();
                true
            } else {
                match value
                    .split(',')
                    .map(|item| item.trim().parse::<f64>())
                    .collect::<Result<Vec<f64>, _>>()
                {
                    Ok(v) => {
                        spec.$field = v;
                        true
                    }
                    Err(_) => {
                        report.push(bad(key, value, $expected, lineno));
                        false
                    }
                }
            }
        };
    }
    match key {
        "sensors" => {
            lines.sensors = Some(lineno);
            parse_into!(sensors, usize, "a positive integer")
        }
        "targets" => {
            lines.targets = Some(lineno);
            parse_into!(targets, usize, "a positive integer")
        }
        "detection_p" => {
            lines.detection_p = Some(lineno);
            parse_into!(detection_p, f64, "a probability in [0, 1]")
        }
        "discharge_minutes" => {
            lines.discharge_minutes = Some(lineno);
            parse_into!(discharge_minutes, f64, "minutes > 0")
        }
        "recharge_minutes" => {
            lines.recharge_minutes = Some(lineno);
            parse_into!(recharge_minutes, f64, "minutes > 0")
        }
        "hours" => {
            lines.hours = Some(lineno);
            parse_into!(hours, f64, "hours > 0")
        }
        "region" => {
            lines.region = Some(lineno);
            parse_into!(region, f64, "a side length > 0")
        }
        "radius" => {
            lines.radius = Some(lineno);
            parse_into!(radius, f64, "a radius > 0")
        }
        "comms_radius" => {
            lines.comms_radius = Some(lineno);
            parse_into!(
                comms_radius,
                f64,
                "a radius >= 0 (0 disables the connectivity lint)"
            )
        }
        "seed" => parse_into!(seed, u64, "an unsigned integer"),
        "scheduler" => {
            if SCHEDULERS.contains(&value) {
                true
            } else {
                report.push(bad(
                    key,
                    value,
                    "greedy | lazy | round-robin | random | static | rsc | set-once | hef",
                    lineno,
                ));
                false
            }
        }
        "battery" => {
            lines.battery = Some(lineno);
            parse_list!(battery, "a comma-separated list of watt-hours > 0")
        }
        "mu_d" => {
            lines.mu_d = Some(lineno);
            parse_list!(mu_d, "a comma-separated list of milliwatts > 0")
        }
        "mu_r" => {
            lines.mu_r = Some(lineno);
            parse_list!(mu_r, "a comma-separated list of milliwatts > 0")
        }
        "solar_eff" => {
            lines.solar_eff = Some(lineno);
            parse_list!(
                solar_eff,
                "a comma-separated list of efficiencies in (0, 1]"
            )
        }
        _ => unreachable!("caller filtered to KNOWN_KEYS"),
    }
}

/// Field-level (value-range and slot-algebra) invariants.
// One flat checklist, one check per field — splitting it would only
// scatter the field order.
#[allow(clippy::too_many_lines)]
fn check_fields(spec: &ScenarioSpec, lines: FieldLines, report: &mut Report) {
    if spec.sensors == 0 {
        report.push(
            Diagnostic::new(
                CoolCode::ScenarioFieldInvalid,
                "`sensors` must be at least 1",
            )
            .with_line(lines.sensors.unwrap_or(1)),
        );
    }
    if spec.targets == 0 {
        report.push(
            Diagnostic::new(
                CoolCode::ScenarioFieldInvalid,
                "`targets` must be at least 1",
            )
            .with_line(lines.targets.unwrap_or(1)),
        );
    }
    if !spec.detection_p.is_finite() || !(0.0..=1.0).contains(&spec.detection_p) {
        let mut d = Diagnostic::new(
            CoolCode::InvalidProbability,
            format!("detection_p = {} is not a probability", spec.detection_p),
        )
        .with_help("per-slot detection probability must lie in [0, 1]");
        if let Some(line) = lines.detection_p {
            d = d.with_line(line);
        }
        report.push(d);
    }

    // Slot algebra (§II-B): both durations positive and ρ (or 1/ρ) integral.
    let mut durations_ok = true;
    for (label, value, line) in [
        (
            "discharge_minutes",
            spec.discharge_minutes,
            lines.discharge_minutes,
        ),
        (
            "recharge_minutes",
            spec.recharge_minutes,
            lines.recharge_minutes,
        ),
        ("hours", spec.hours, lines.hours),
    ] {
        if !value.is_finite() || value <= 0.0 {
            durations_ok = false;
            let mut d = Diagnostic::new(
                CoolCode::NonPositiveDuration,
                format!("{label} = {value} must be positive and finite"),
            );
            if let Some(line) = line {
                d = d.with_line(line);
            }
            report.push(d);
        }
    }
    // Per-sensor profiles: range-check each list, then the per-sensor slot
    // algebra and the LCM grid (profiles override the duration keys).
    if spec.has_profiles() {
        let mut profiles_ok = spec.sensors > 0;
        for (label, values, line, max) in [
            ("battery", &spec.battery, lines.battery, f64::INFINITY),
            ("mu_d", &spec.mu_d, lines.mu_d, f64::INFINITY),
            ("mu_r", &spec.mu_r, lines.mu_r, f64::INFINITY),
            ("solar_eff", &spec.solar_eff, lines.solar_eff, 1.0),
        ] {
            for (i, &x) in values.iter().enumerate() {
                if !x.is_finite() || x <= 0.0 || x > max {
                    profiles_ok = false;
                    let bound = if max.is_finite() {
                        " and at most 1"
                    } else {
                        ""
                    };
                    let mut d = Diagnostic::new(
                        CoolCode::ScenarioFieldInvalid,
                        format!("{label}[{i}] = {x} must be positive and finite{bound}"),
                    );
                    if let Some(line) = line {
                        d = d.with_line(line);
                    }
                    report.push(d);
                }
            }
        }
        if profiles_ok && durations_ok {
            let profile_line = lines
                .battery
                .or(lines.mu_d)
                .or(lines.mu_r)
                .or(lines.solar_eff);
            match spec.fleet().and_then(|fleet| FleetGrid::build(&fleet)) {
                Ok(grid) => {
                    let hyper_minutes = grid.ticks_to_minutes(grid.hyperperiod());
                    if spec.hours * 60.0 < hyper_minutes {
                        let mut d = Diagnostic::new(
                            CoolCode::DegenerateHorizon,
                            format!(
                                "working time of {} h is shorter than one fleet hyperperiod \
                                 ({hyper_minutes} min)",
                                spec.hours
                            ),
                        )
                        .with_help("extend `hours` to cover at least one full hyperperiod");
                        if let Some(line) = lines.hours {
                            d = d.with_line(line);
                        }
                        report.push(d);
                    }
                }
                Err(FleetError::BadProfile {
                    sensor,
                    source: CycleError::NonIntegralRatio,
                }) => {
                    let mut d = Diagnostic::new(
                        CoolCode::NonIntegralRho,
                        format!(
                            "sensor {sensor}'s profile gives a non-slot-decomposable \
                             rho_v (neither rho_v nor 1/rho_v is an integer)"
                        ),
                    )
                    .with_help(
                        "pick mu_d, mu_r and solar_eff so mu_d/(mu_r*solar_eff) \
                                or its reciprocal is integral",
                    );
                    if let Some(line) = profile_line {
                        d = d.with_line(line);
                    }
                    report.push(d);
                }
                Err(err) => {
                    let mut d = Diagnostic::new(CoolCode::ScenarioFieldInvalid, err.to_string());
                    if let Some(line) = profile_line {
                        d = d.with_line(line);
                    }
                    report.push(d);
                }
            }
        }
    } else if durations_ok {
        match ChargeCycle::from_minutes(spec.discharge_minutes, spec.recharge_minutes) {
            Ok(cycle) => {
                if cycle.periods_in_hours(spec.hours) == 0 {
                    let mut d = Diagnostic::new(
                        CoolCode::DegenerateHorizon,
                        format!(
                            "working time of {} h is shorter than one charging period ({} min)",
                            spec.hours,
                            cycle.period_minutes()
                        ),
                    )
                    .with_help("extend `hours` to cover at least one full charge/discharge period");
                    if let Some(line) = lines.hours {
                        d = d.with_line(line);
                    }
                    report.push(d);
                }
            }
            Err(CycleError::NonIntegralRatio) => {
                let rho = spec.recharge_minutes / spec.discharge_minutes;
                let mut d = Diagnostic::new(
                    CoolCode::NonIntegralRho,
                    format!(
                        "rho = {}/{} = {rho} is not an integer (nor is 1/rho), so the period \
                         does not divide into equal slots",
                        spec.recharge_minutes, spec.discharge_minutes
                    ),
                )
                .with_help("choose recharge/discharge minutes with an integral ratio");
                if let Some(line) = lines.recharge_minutes.or(lines.discharge_minutes) {
                    d = d.with_line(line);
                }
                report.push(d);
            }
            // Positive, finite durations cannot raise NonPositiveDuration.
            Err(CycleError::NonPositiveDuration) => unreachable!("durations checked above"),
        }
    }

    // Geometry.
    if !spec.region.is_finite() || spec.region <= 0.0 {
        let mut d = Diagnostic::new(
            CoolCode::ScenarioFieldInvalid,
            format!(
                "region = {} must be a positive, finite side length",
                spec.region
            ),
        );
        if let Some(line) = lines.region {
            d = d.with_line(line);
        }
        report.push(d);
    }
    if !spec.comms_radius.is_finite() || spec.comms_radius < 0.0 {
        let mut d = Diagnostic::new(
            CoolCode::ScenarioFieldInvalid,
            format!(
                "comms_radius = {} must be a non-negative, finite radius",
                spec.comms_radius
            ),
        )
        .with_help("set comms_radius = 0 to disable the connectivity lint");
        if let Some(line) = lines.comms_radius {
            d = d.with_line(line);
        }
        report.push(d);
    }
    if !spec.radius.is_finite() || spec.radius <= 0.0 {
        let mut d = Diagnostic::new(
            CoolCode::DegenerateSensingDisk,
            format!(
                "radius = {} gives every sensor an empty sensing disk",
                spec.radius
            ),
        )
        .with_help("the sensing radius must be positive and finite");
        if let Some(line) = lines.radius {
            d = d.with_line(line);
        }
        report.push(d);
    } else if spec.region.is_finite() && spec.region > 0.0 {
        // A disk that reaches the far corner from anywhere covers the whole
        // region: coverage geometry degenerates to "everyone sees everything".
        let diagonal = spec.region * std::f64::consts::SQRT_2;
        if spec.radius >= diagonal {
            let mut d = Diagnostic::new(
                CoolCode::DiskCoversRegion,
                format!(
                    "radius {} covers the whole {}x{} region (diagonal {diagonal:.1}) from \
                     any position, so target geometry is irrelevant",
                    spec.radius, spec.region, spec.region
                ),
            );
            if let Some(line) = lines.radius {
                d = d.with_line(line);
            }
            report.push(d);
        }
    }
}

/// Instance-level checks: deterministically re-derive the geometric
/// instance the scenario would run (same seed path as `Scenario::run`) and
/// inspect each target's coverage and weight, the utility universe, and —
/// by sampling — the submodular-utility axioms the greedy's approximation
/// guarantee rests on.
fn check_instance(spec: &ScenarioSpec, report: &mut Report) {
    let seeds = SeedSequence::new(spec.seed);
    let mut rng = seeds.nth_rng(0);
    let (utility, positions, targets) = geometric_multi_target(
        Rect::square(spec.region),
        spec.sensors,
        spec.targets,
        spec.radius,
        spec.detection_p,
        &mut rng,
    );

    report.merge(lint_geometry(
        &positions,
        &targets,
        Rect::square(spec.region),
        spec.radius,
        spec.detection_p,
    ));

    // Defence in depth: any detection part whose probabilities are all zero
    // despite a positive detection_p (degenerate instance construction).
    for (k, part) in utility.parts().iter().enumerate() {
        if let AnyUtility::Detection(d) = part {
            if spec.detection_p > 0.0
                && !d.probs().is_empty()
                && d.probs().iter().all(|&p| p == 0.0)
            {
                report.push(Diagnostic::new(
                    CoolCode::ZeroWeightTarget,
                    format!("target {k}'s detection probabilities are all zero"),
                ));
            }
        }
    }

    report.merge(lint_universe(&utility, spec.sensors));
    report.merge(lint_utility(
        &utility,
        AXIOM_TRIALS,
        &mut seeds.nth_rng(u64::MAX),
    ));
}

/// Geometry-level checks on an explicit deployment: sensors outside the
/// region ([`CoolCode::SensorOutsideRegion`]), targets no sensor can reach
/// ([`CoolCode::UnreachableTarget`]), and targets whose coverage is moot
/// because `detection_p = 0` ([`CoolCode::ZeroWeightTarget`]).
///
/// Coverage is computed from the geometry, not a utility: with
/// `detection_p = 0` the utility-level coverage is empty everywhere and
/// could not distinguish "out of range" from "zero-weight".
pub fn lint_geometry(
    positions: &[Point],
    targets: &[Point],
    omega: Rect,
    radius: f64,
    detection_p: f64,
) -> Report {
    let mut report = Report::new();
    for (i, p) in positions.iter().enumerate() {
        if !omega.contains(*p) {
            report.push(Diagnostic::new(
                CoolCode::SensorOutsideRegion,
                format!(
                    "sensor {i} at ({}, {}) lies outside the deployment region",
                    p.x, p.y
                ),
            ));
        }
    }

    let disks = disks_at(positions, radius);
    for (k, target) in targets.iter().enumerate() {
        if sensors_covering(*target, &disks).is_empty() {
            report.push(
                Diagnostic::new(
                    CoolCode::UnreachableTarget,
                    format!(
                        "target {k} at ({:.1}, {:.1}) is outside every sensor's range",
                        target.x, target.y
                    ),
                )
                .with_help("increase `radius`, add sensors, or shrink the region"),
            );
        } else if detection_p == 0.0 {
            report.push(
                Diagnostic::new(
                    CoolCode::ZeroWeightTarget,
                    format!("target {k} contributes zero utility (detection_p = 0)"),
                )
                .with_help("a zero detection probability makes coverage of this target moot"),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(text: &str) -> Report {
        lint_scenario_text(text, "test.txt")
    }

    #[test]
    fn default_scenario_is_clean() {
        let r = lint("");
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.diagnostics().len(), 0, "{r}");
    }

    #[test]
    fn malformed_line_is_e008() {
        let r = lint("sensors = 10\nnot a key value\n");
        assert!(r.has_code(CoolCode::ScenarioLineMalformed));
        assert_eq!(r.diagnostics()[0].line, Some(2));
        assert!(!r.is_clean());
    }

    #[test]
    fn unknown_key_is_w001_and_stays_clean() {
        let r = lint("volume = 11\n");
        assert!(r.has_code(CoolCode::UnknownScenarioKey));
        assert!(r.is_clean(), "unknown keys warn, they do not error: {r}");
    }

    #[test]
    fn duplicate_key_is_w002() {
        let r = lint("sensors = 10\nsensors = 20\n");
        assert!(r.has_code(CoolCode::DuplicateScenarioKey));
        assert!(r.diagnostics()[0].message.contains("line 1"));
    }

    #[test]
    fn unparsable_value_is_e007() {
        let r = lint("sensors = lots\n");
        assert!(r.has_code(CoolCode::ScenarioFieldInvalid));
        assert!(!r.is_clean());
    }

    #[test]
    fn zero_sensors_is_e007() {
        let r = lint("sensors = 0\n");
        assert!(r.has_code(CoolCode::ScenarioFieldInvalid));
    }

    #[test]
    fn out_of_range_probability_is_e005() {
        let r = lint("detection_p = 1.5\n");
        assert!(r.has_code(CoolCode::InvalidProbability));
        assert_eq!(r.diagnostics()[0].line, Some(1));
    }

    #[test]
    fn nan_probability_is_e005() {
        let r = lint("detection_p = NaN\n");
        assert!(r.has_code(CoolCode::InvalidProbability));
    }

    #[test]
    fn non_positive_duration_is_e013() {
        let r = lint("discharge_minutes = -3\n");
        assert!(r.has_code(CoolCode::NonPositiveDuration));
    }

    #[test]
    fn non_integral_rho_is_e012() {
        let r = lint("discharge_minutes = 15\nrecharge_minutes = 40\n");
        assert!(r.has_code(CoolCode::NonIntegralRho));
        assert_eq!(r.diagnostics()[0].line, Some(2), "blames the recharge line");
    }

    #[test]
    fn reciprocal_rho_is_accepted() {
        // ρ = 1/3: the fast-recharge case must not be flagged.
        let r = lint("discharge_minutes = 45\nrecharge_minutes = 15\n");
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn short_horizon_is_e014() {
        // Period is 60 min; half an hour holds no whole period.
        let r = lint("hours = 0.5\n");
        assert!(r.has_code(CoolCode::DegenerateHorizon));
    }

    #[test]
    fn zero_radius_is_e006() {
        let r = lint("radius = 0\n");
        assert!(r.has_code(CoolCode::DegenerateSensingDisk));
    }

    #[test]
    fn negative_comms_radius_is_e007() {
        let r = lint("comms_radius = -5\n");
        assert!(r.has_code(CoolCode::ScenarioFieldInvalid), "{r}");
        assert!(lint("comms_radius = 200\n").is_clean());
        assert!(
            lint("comms_radius = 0\n").is_clean(),
            "0 disables the check"
        );
    }

    #[test]
    fn oversized_radius_is_w003() {
        let r = lint("region = 100\nradius = 200\n");
        assert!(r.has_code(CoolCode::DiskCoversRegion));
        assert!(
            r.is_clean(),
            "covering the region is legal, just degenerate: {r}"
        );
    }

    #[test]
    fn zero_detection_p_warns_zero_weight_targets() {
        let r = lint("detection_p = 0\nsensors = 10\ntargets = 2\nregion = 100\nradius = 50\n");
        assert!(r.has_code(CoolCode::ZeroWeightTarget), "{r}");
        assert!(r.is_clean());
    }

    #[test]
    fn bad_scheduler_is_e007() {
        let r = lint("scheduler = quantum\n");
        assert!(r.has_code(CoolCode::ScenarioFieldInvalid));
    }

    #[test]
    fn profile_lists_lint_clean() {
        let r = lint("battery = 30,60\nmu_d = 120\nmu_r = 40\nsolar_eff = 1,0.5\n");
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn grid_schedulers_are_known() {
        for s in ["rsc", "set-once", "hef"] {
            let r = lint(&format!("scheduler = {s}\n"));
            assert!(r.is_clean(), "{s}: {r}");
        }
    }

    #[test]
    fn out_of_range_profile_entry_is_e007() {
        let r = lint("solar_eff = 1.5\n");
        assert!(r.has_code(CoolCode::ScenarioFieldInvalid), "{r}");
        let r = lint("battery = 30,-2\n");
        assert!(r.has_code(CoolCode::ScenarioFieldInvalid), "{r}");
        let r = lint("mu_d = 120,abc\n");
        assert!(r.has_code(CoolCode::ScenarioFieldInvalid), "{r}");
    }

    #[test]
    fn non_decomposable_profile_is_e012() {
        // mu_d/mu_r = 120/50 = 2.4: neither integral nor reciprocal.
        let r = lint("mu_r = 50\n");
        assert!(r.has_code(CoolCode::NonIntegralRho), "{r}");
        assert!(!r.is_clean());
    }

    #[test]
    fn mixed_fleet_horizon_checks_the_hyperperiod() {
        // Batteries 30 and 60 Wh: hyperperiod 8 ticks of 15 min = 2 h.
        let r = lint("battery = 30,60\nhours = 1\n");
        assert!(r.has_code(CoolCode::DegenerateHorizon), "{r}");
        let r = lint("battery = 30,60\nhours = 2\n");
        assert!(!r.has_code(CoolCode::DegenerateHorizon), "{r}");
    }

    #[test]
    fn profiles_override_duration_keys() {
        // Non-integral legacy ratio must NOT be flagged when profiles
        // define the energy model.
        let r = lint("discharge_minutes = 15\nrecharge_minutes = 40\nbattery = 30\n");
        assert!(!r.has_code(CoolCode::NonIntegralRho), "{r}");
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn multiple_diagnostics_accumulate() {
        let r = lint("sensors = none\ndetection_p = 2\nmystery = 1\nbroken line\n");
        assert!(r.has_code(CoolCode::ScenarioFieldInvalid));
        assert!(r.has_code(CoolCode::InvalidProbability));
        assert!(r.has_code(CoolCode::UnknownScenarioKey));
        assert!(r.has_code(CoolCode::ScenarioLineMalformed));
        assert!(
            r.diagnostics().len() >= 4,
            "a tolerant parser reports everything: {r}"
        );
    }

    #[test]
    fn instance_checks_only_run_on_clean_fields() {
        // The malformed probability must not crash the instance derivation.
        let r = lint("detection_p = 7\nsensors = 4\n");
        assert!(!r.is_clean());
    }

    #[test]
    fn unreachable_target_is_w004() {
        // One sensor at the origin, a target far outside its 5-unit disk.
        let positions = vec![Point::new(0.0, 0.0)];
        let targets = vec![Point::new(50.0, 50.0)];
        let r = lint_geometry(&positions, &targets, Rect::square(100.0), 5.0, 0.4);
        assert!(r.has_code(CoolCode::UnreachableTarget), "{r}");
        assert!(r.is_clean(), "unreachable targets warn, they do not error");
    }

    #[test]
    fn covered_target_is_not_w004() {
        let positions = vec![Point::new(0.0, 0.0)];
        let targets = vec![Point::new(3.0, 0.0)];
        let r = lint_geometry(&positions, &targets, Rect::square(100.0), 5.0, 0.4);
        assert!(!r.has_code(CoolCode::UnreachableTarget), "{r}");
        assert!(r.diagnostics().is_empty());
    }

    #[test]
    fn sensor_outside_region_is_w006() {
        let positions = vec![Point::new(150.0, 10.0)];
        let targets = vec![];
        let r = lint_geometry(&positions, &targets, Rect::square(100.0), 5.0, 0.4);
        assert!(r.has_code(CoolCode::SensorOutsideRegion), "{r}");
    }

    #[test]
    fn zero_weight_target_is_w005() {
        let positions = vec![Point::new(0.0, 0.0)];
        let targets = vec![Point::new(1.0, 0.0)];
        let r = lint_geometry(&positions, &targets, Rect::square(100.0), 5.0, 0.0);
        assert!(r.has_code(CoolCode::ZeroWeightTarget), "{r}");
    }
}
