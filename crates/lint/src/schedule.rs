//! Schedule linting against the slot algebra and per-node energy model.
//!
//! [`lint_schedule`] statically validates a [`PeriodSchedule`] against its
//! governing [`ChargeCycle`]: the period structure (slot count and
//! active/passive mode must match ρ — [`CoolCode::InfeasiblePeriodStructure`]),
//! each sensor's activation budget
//! ([`CoolCode::ActivationBudgetExceeded`]), and a full
//! [`NodeEnergyMachine`] replay over two periods
//! ([`CoolCode::EnergyInfeasibleSchedule`]) — the same replay
//! `PeriodSchedule::is_feasible` performs, but reporting *which* sensor
//! fails *where* instead of a bare boolean.

use crate::diag::{Diagnostic, Report};
use cool_common::{CoolCode, SensorId};
use cool_core::horizon::HorizonSchedule;
use cool_core::schedule::{PeriodSchedule, ScheduleMode};
use cool_core::GridSchedule;
use cool_energy::{tick_transition, ChargeCycle, FleetGrid, NodeEnergyMachine};

/// Lints `schedule` against `cycle`. A clean report implies
/// `schedule.is_feasible(cycle)`.
pub fn lint_schedule(schedule: &PeriodSchedule, cycle: ChargeCycle) -> Report {
    lint_schedule_from(schedule, cycle, 1.0)
}

/// Lints `schedule` against `cycle` with every battery starting at
/// `initial_charge` (a fraction of capacity) instead of full — the
/// deployment contract [`lint_schedule`] hard-codes. The energy replay
/// shares the exact [`cool_energy::slot_transition`] semantics the abstract
/// interpreter in [`crate::abstract_energy`] steps over intervals.
///
/// # Panics
///
/// Panics if `initial_charge` is outside `[0, 1]` or not finite.
#[allow(clippy::too_many_lines)] // one structural check after another, linear and flat
pub fn lint_schedule_from(
    schedule: &PeriodSchedule,
    cycle: ChargeCycle,
    initial_charge: f64,
) -> Report {
    let mut report = Report::new();
    let slots = schedule.slots_per_period();

    if slots == 0 {
        report.push(
            Diagnostic::new(
                CoolCode::EmptySlotCount,
                "schedule has zero slots per period",
            )
            .with_help("a charging period always spans at least two slots"),
        );
        return report;
    }

    let expected_slots = cycle.slots_per_period();
    if slots != expected_slots {
        report.push(
            Diagnostic::new(
                CoolCode::InfeasiblePeriodStructure,
                format!(
                    "schedule divides the period into {slots} slots but the cycle (rho = {}) \
                     requires {expected_slots}",
                    cycle.rho()
                ),
            )
            .with_help("slots per period is rho + 1 for rho >= 1, else 1/rho + 1"),
        );
    }

    let rho = cycle.rho();
    let mode_ok = match schedule.mode() {
        ScheduleMode::ActiveSlot => rho >= 1.0,
        ScheduleMode::PassiveSlot => rho <= 1.0,
    };
    if !mode_ok {
        report.push(
            Diagnostic::new(
                CoolCode::InfeasiblePeriodStructure,
                format!(
                    "{:?} scheduling is incompatible with rho = {rho} (sensors {} per period)",
                    schedule.mode(),
                    if rho > 1.0 {
                        "get one active slot"
                    } else {
                        "get one passive slot"
                    }
                ),
            )
            .with_help(
                "use active-slot assignment when rho > 1 and passive-slot assignment when \
                 rho < 1",
            ),
        );
    }

    // Structure must line up before budgets or replays mean anything.
    if !report.is_clean() {
        return report;
    }

    // Per-sensor activation budget: with one assigned slot per sensor the
    // period structure caps activity at `active_slots_per_period`.
    let budget = cycle.active_slots_per_period();
    for i in 0..schedule.n_sensors() {
        let active = (0..slots)
            .filter(|&t| schedule.is_active(SensorId(i), t))
            .count();
        if active > budget {
            report.push(
                Diagnostic::new(
                    CoolCode::ActivationBudgetExceeded,
                    format!(
                        "sensor {i} is scheduled active in {active} of {slots} slots, but the \
                         cycle sustains at most {budget}"
                    ),
                )
                .with_help("the battery recharges too slowly for this activation pattern"),
            );
        }
    }
    if !report.is_clean() {
        return report;
    }

    // Energy replay over two periods (wrap-around deficits appear in the
    // second), sensor by sensor so the diagnostic can name the failure.
    for i in 0..schedule.n_sensors() {
        let mut node = NodeEnergyMachine::with_initial_fraction(cycle, initial_charge);
        'replay: for period in 0..2 {
            for t in 0..slots {
                let want = schedule.is_active(SensorId(i), t);
                let got = node.step(want);
                if want && !got {
                    let from = if initial_charge < 1.0 {
                        format!(" (replay from initial charge {initial_charge})")
                    } else {
                        String::new()
                    };
                    report.push(
                        Diagnostic::new(
                            CoolCode::EnergyInfeasibleSchedule,
                            format!(
                                "sensor {i} is scheduled active in slot {t} of period {period} \
                                 but its battery is depleted there{from}"
                            ),
                        )
                        .with_help("the activation pattern demands energy the cycle never banks"),
                    );
                    break 'replay;
                }
            }
        }
    }
    report
}

/// Lints a horizon-wide schedule against per-sensor cycles: activation
/// budgets per period window ([`CoolCode::ActivationBudgetExceeded`]) and a
/// per-sensor energy replay ([`CoolCode::EnergyInfeasibleSchedule`]).
///
/// Unlike [`PeriodSchedule`] — whose one-assigned-slot-per-sensor shape
/// caps activity structurally — a [`HorizonSchedule`] can over-commit a
/// sensor, so this is where budget violations actually surface.
pub fn lint_horizon(schedule: &HorizonSchedule, cycles: &[ChargeCycle]) -> Report {
    let mut report = Report::new();
    if cycles.len() != schedule.n_sensors() {
        report.push(
            Diagnostic::new(
                CoolCode::UniverseMismatch,
                format!(
                    "schedule covers {} sensors but {} charge cycles were supplied",
                    schedule.n_sensors(),
                    cycles.len()
                ),
            )
            .with_help("supply exactly one charge cycle per sensor"),
        );
        return report;
    }
    let horizon = schedule.horizon();
    if horizon == 0 {
        report.push(Diagnostic::new(
            CoolCode::EmptySlotCount,
            "horizon schedule spans zero slots",
        ));
        return report;
    }

    for (i, &cycle) in cycles.iter().enumerate() {
        let v = SensorId(i);
        let period = cycle.slots_per_period();
        let budget = cycle.active_slots_per_period();
        // Budget per aligned period window.
        let mut over_budget = false;
        let mut window_start = 0;
        while window_start < horizon {
            let window_end = (window_start + period).min(horizon);
            let active = (window_start..window_end)
                .filter(|&t| schedule.active_set(t).contains(v))
                .count();
            if active > budget {
                report.push(
                    Diagnostic::new(
                        CoolCode::ActivationBudgetExceeded,
                        format!(
                            "sensor {i} is active {active} times in slots \
                             {window_start}..{window_end}, but its cycle sustains at most \
                             {budget} activations per {period}-slot period"
                        ),
                    )
                    .with_help("drop activations or assign the sensor a faster-charging cycle"),
                );
                over_budget = true;
                break;
            }
            window_start = window_end;
        }
        if !over_budget && !schedule.is_sensor_feasible(v, cycle) {
            report.push(
                Diagnostic::new(
                    CoolCode::EnergyInfeasibleSchedule,
                    format!(
                        "sensor {i}'s activation pattern outruns its battery under its charge \
                         cycle"
                    ),
                )
                .with_help(
                    "the pattern fits each period's budget but draws energy faster than \
                            the battery refills across periods",
                ),
            );
        }
    }
    report
}

/// Lints a heterogeneous [`GridSchedule`] against its [`FleetGrid`]: the
/// universe and hyperperiod must line up
/// ([`CoolCode::UniverseMismatch`] / [`CoolCode::InfeasiblePeriodStructure`]),
/// each sensor's activation count per aligned `P_v`-tick period window must
/// fit its duty budget `d_v` ([`CoolCode::ActivationBudgetExceeded`]), and a
/// cyclic two-hyperperiod replay of every sensor's battery automaton with
/// its **own** per-tick rates must honour every activation
/// ([`CoolCode::EnergyInfeasibleSchedule`]). A clean report implies
/// `schedule.is_feasible(grid)`.
pub fn lint_grid_schedule(schedule: &GridSchedule, grid: &FleetGrid) -> Report {
    let mut report = Report::new();
    if schedule.n_sensors() != grid.n_sensors() {
        report.push(
            Diagnostic::new(
                CoolCode::UniverseMismatch,
                format!(
                    "schedule covers {} sensors but the fleet grid has {}",
                    schedule.n_sensors(),
                    grid.n_sensors()
                ),
            )
            .with_help("build the schedule against the same fleet it is audited with"),
        );
        return report;
    }
    let h = schedule.hyperperiod();
    if h != grid.hyperperiod() {
        report.push(
            Diagnostic::new(
                CoolCode::InfeasiblePeriodStructure,
                format!(
                    "schedule spans {h} ticks but the fleet's hyperperiod is {} ticks",
                    grid.hyperperiod()
                ),
            )
            .with_help("a fleet schedule covers exactly one LCM hyperperiod of all sensor periods"),
        );
        return report;
    }

    // Per-sensor duty budget over each aligned period window: H is an exact
    // multiple of every P_v, so the windows tile the hyperperiod.
    for v in 0..grid.n_sensors() {
        let p = grid.period_ticks(v);
        let budget = grid.discharge_ticks(v);
        for window in 0..h / p {
            let start = window * p;
            let active = (start..start + p)
                .filter(|&t| schedule.is_active(v, t))
                .count();
            if active > budget {
                report.push(
                    Diagnostic::new(
                        CoolCode::ActivationBudgetExceeded,
                        format!(
                            "sensor {v} is active {active} ticks in window {start}..{}, but its \
                             profile sustains at most {budget} per {p}-tick period",
                            start + p
                        ),
                    )
                    .with_help("its battery drains in d_v ticks and needs r_v ticks to refill"),
                );
                break;
            }
        }
    }
    if !report.is_clean() {
        return report;
    }

    // Cyclic two-hyperperiod energy replay, sensor by sensor, each with the
    // drain/refill rates of its own profile.
    for v in 0..grid.n_sensors() {
        let need = grid.need_per_tick(v);
        let refill = grid.refill_per_tick(v);
        let mut fraction = 1.0;
        for tick in 0..2 * h {
            let want = schedule.is_active(v, tick % h);
            let out = tick_transition(need, refill, fraction, want, 0.0, 0.0);
            if want && !out.active {
                report.push(
                    Diagnostic::new(
                        CoolCode::EnergyInfeasibleSchedule,
                        format!(
                            "sensor {v} is scheduled active at tick {} of hyperperiod {} but \
                             its battery is depleted there",
                            tick % h,
                            tick / h
                        ),
                    )
                    .with_help("the activation pattern demands energy the profile never banks"),
                );
                break;
            }
            fraction = out.fraction;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::SensorSet;
    use cool_core::greedy::greedy_active_naive;
    use cool_core::hetero::hetero_greedy_naive;
    use cool_core::horizon::greedy_horizon;
    use cool_energy::{Fleet, SensorProfile};
    use cool_utility::DetectionUtility;

    #[test]
    fn greedy_schedule_is_clean() {
        let cycle = ChargeCycle::paper_sunny();
        let u = DetectionUtility::uniform(8, 0.4);
        let schedule = greedy_active_naive(&u, cycle.slots_per_period()).unwrap();
        let r = lint_schedule(&schedule, cycle);
        assert!(r.is_clean(), "{r}");
        assert!(r.diagnostics().is_empty());
    }

    #[test]
    fn initial_charge_threading_changes_the_verdict() {
        // rho = 3: an early active slot is infeasible from an empty battery
        // (nothing banked yet) but fine from full; a slot-3 assignment gives
        // the node three passive slots to charge and passes from empty too.
        let cycle = ChargeCycle::paper_sunny();
        let early = PeriodSchedule::new(ScheduleMode::ActiveSlot, 4, vec![0]);
        assert!(lint_schedule(&early, cycle).is_clean());
        let r = lint_schedule_from(&early, cycle, 0.0);
        assert!(r.has_code(CoolCode::EnergyInfeasibleSchedule), "{r}");
        assert!(r.to_string().contains("initial charge 0"), "{r}");
        let late = PeriodSchedule::new(ScheduleMode::ActiveSlot, 4, vec![3]);
        assert!(lint_schedule_from(&late, cycle, 0.0).is_clean());
    }

    #[test]
    fn slot_count_mismatch_is_e001() {
        let cycle = ChargeCycle::paper_sunny(); // 4 slots
        let schedule = PeriodSchedule::new(ScheduleMode::ActiveSlot, 3, vec![0, 1, 2]);
        let r = lint_schedule(&schedule, cycle);
        assert!(r.has_code(CoolCode::InfeasiblePeriodStructure), "{r}");
        assert!(!schedule.is_feasible(cycle), "lint agrees with is_feasible");
    }

    #[test]
    fn mode_mismatch_is_e001() {
        let cycle = ChargeCycle::paper_sunny(); // rho = 3 > 1 => active-slot
        let schedule = PeriodSchedule::new(ScheduleMode::PassiveSlot, 4, vec![0, 1]);
        let r = lint_schedule(&schedule, cycle);
        assert!(r.has_code(CoolCode::InfeasiblePeriodStructure), "{r}");
    }

    #[test]
    fn rho_equal_one_accepts_both_modes() {
        let cycle = ChargeCycle::from_minutes(20.0, 20.0).unwrap();
        for mode in [ScheduleMode::ActiveSlot, ScheduleMode::PassiveSlot] {
            let schedule = PeriodSchedule::new(mode, 2, vec![0, 1]);
            let r = lint_schedule(&schedule, cycle);
            assert!(r.is_clean(), "{mode:?}: {r}");
        }
    }

    #[test]
    fn clean_report_implies_is_feasible() {
        // Passive-slot case, rho = 1/3: sensors active 3 of 4 slots.
        let cycle = ChargeCycle::from_minutes(45.0, 15.0).unwrap();
        let schedule = PeriodSchedule::new(ScheduleMode::PassiveSlot, 4, vec![0, 1, 2, 3, 0]);
        let r = lint_schedule(&schedule, cycle);
        assert!(r.is_clean(), "{r}");
        assert!(schedule.is_feasible(cycle));
    }

    #[test]
    fn greedy_horizon_schedule_is_clean() {
        let cycles = vec![ChargeCycle::paper_sunny(); 4];
        let u = DetectionUtility::uniform(4, 0.4);
        let schedule = greedy_horizon(&u, &cycles, 8);
        let r = lint_horizon(&schedule, &cycles);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn over_budget_horizon_is_e003() {
        // rho = 3 sustains one activation per 4-slot period; schedule two.
        let cycles = vec![ChargeCycle::paper_sunny(); 1];
        let mut schedule = HorizonSchedule::empty(1, 4);
        schedule.activate(SensorId(0), 0);
        schedule.activate(SensorId(0), 1);
        let r = lint_horizon(&schedule, &cycles);
        assert!(r.has_code(CoolCode::ActivationBudgetExceeded), "{r}");
        assert!(
            !schedule.is_feasible(&cycles),
            "lint agrees with is_feasible"
        );
    }

    #[test]
    fn cross_period_deficit_is_e003_or_e004() {
        // One activation per aligned window, but spaced closer than a period
        // apart (slot 3 then slot 4): the battery cannot refill in time.
        let cycles = vec![ChargeCycle::paper_sunny(); 1];
        let mut schedule = HorizonSchedule::empty(1, 8);
        schedule.activate(SensorId(0), 3);
        schedule.activate(SensorId(0), 4);
        let r = lint_horizon(&schedule, &cycles);
        assert!(!r.is_clean(), "{r}");
        assert!(
            !schedule.is_feasible(&cycles),
            "lint agrees with is_feasible"
        );
    }

    #[test]
    fn horizon_cycle_count_mismatch_is_e016() {
        let cycles = vec![ChargeCycle::paper_sunny(); 2];
        let schedule = HorizonSchedule::empty(3, 4);
        let r = lint_horizon(&schedule, &cycles);
        assert!(r.has_code(CoolCode::UniverseMismatch), "{r}");
    }

    /// 30 Wh and 60 Wh profiles: periods 4 and 8 ticks, hyperperiod 8.
    fn two_capacity_grid() -> FleetGrid {
        let profiles = vec![
            SensorProfile::default(),
            SensorProfile {
                battery: 60.0,
                ..SensorProfile::default()
            },
        ];
        FleetGrid::build(&Fleet::new(profiles).unwrap()).unwrap()
    }

    #[test]
    fn hetero_greedy_grid_schedule_is_clean() {
        let grid = two_capacity_grid();
        let u = DetectionUtility::uniform(2, 0.4);
        let schedule = hetero_greedy_naive(&u, &grid).unwrap().to_grid_schedule();
        let r = lint_grid_schedule(&schedule, &grid);
        assert!(r.is_clean(), "{r}");
        assert!(schedule.is_feasible(&grid), "clean report implies feasible");
    }

    #[test]
    fn grid_universe_mismatch_is_e016() {
        let grid = two_capacity_grid();
        let schedule = GridSchedule::new(vec![SensorSet::new(3); 8]);
        let r = lint_grid_schedule(&schedule, &grid);
        assert!(r.has_code(CoolCode::UniverseMismatch), "{r}");
    }

    #[test]
    fn grid_hyperperiod_mismatch_is_e001() {
        let grid = two_capacity_grid();
        let schedule = GridSchedule::new(vec![SensorSet::new(2); 5]);
        let r = lint_grid_schedule(&schedule, &grid);
        assert!(r.has_code(CoolCode::InfeasiblePeriodStructure), "{r}");
    }

    #[test]
    fn grid_over_budget_is_e003() {
        // Sensor 0 (d = 1, P = 4) always on: 4 active ticks in a window
        // that sustains 1.
        let grid = two_capacity_grid();
        let schedule = GridSchedule::new(vec![SensorSet::from_indices(2, [0]); 8]);
        let r = lint_grid_schedule(&schedule, &grid);
        assert!(r.has_code(CoolCode::ActivationBudgetExceeded), "{r}");
        assert!(!schedule.is_feasible(&grid), "lint agrees with is_feasible");
    }

    #[test]
    fn grid_cross_period_deficit_is_e004() {
        // One activation per aligned window for sensor 0, but at ticks 3
        // and 4 — only one refill tick apart, when it needs three.
        let grid = two_capacity_grid();
        let active = (0..8)
            .map(|t| {
                if t == 3 || t == 4 {
                    SensorSet::from_indices(2, [0])
                } else {
                    SensorSet::new(2)
                }
            })
            .collect();
        let schedule = GridSchedule::new(active);
        let r = lint_grid_schedule(&schedule, &grid);
        assert!(r.has_code(CoolCode::EnergyInfeasibleSchedule), "{r}");
        assert!(r.to_string().contains("sensor 0"), "{r}");
        assert!(!schedule.is_feasible(&grid), "lint agrees with is_feasible");
    }
}
