//! Utility-model conformance checks.
//!
//! The greedy scheduler's ½-approximation (Lemma 4.1) holds only for
//! normalised, monotone, submodular utilities. [`lint_utility`] turns the
//! sampling-based axiom checker of `cool-utility` into COOL-coded
//! diagnostics, and adds finiteness probes ([`CoolCode::NonFiniteUtility`])
//! and a universe/deployment size check ([`lint_universe`]).

use crate::diag::{Diagnostic, Report};
use cool_common::{CoolCode, SensorId, SensorSet};
use cool_utility::{check_utility, UtilityFunction, UtilityViolation};
use rand::Rng;

/// Checks that a utility's universe matches the deployment size `expected`
/// ([`CoolCode::UniverseMismatch`]).
pub fn lint_universe<U: UtilityFunction>(utility: &U, expected: usize) -> Report {
    let mut report = Report::new();
    let universe = utility.universe();
    if universe != expected {
        report.push(
            Diagnostic::new(
                CoolCode::UniverseMismatch,
                format!(
                    "utility is defined over {universe} sensors but the deployment has {expected}"
                ),
            )
            .with_help("construct the utility from the same sensor set the scheduler plans for"),
        );
    }
    report
}

/// Stress-tests `utility` against the submodular-utility axioms on `trials`
/// random set pairs, plus finiteness probes on the empty set, singletons,
/// and the full set.
///
/// Violations map to stable codes:
/// normalisation → [`CoolCode::NonNormalizedUtility`],
/// monotonicity → [`CoolCode::NonMonotoneUtility`],
/// submodularity → [`CoolCode::NonSubmodularUtility`],
/// non-finite values → [`CoolCode::NonFiniteUtility`].
pub fn lint_utility<U: UtilityFunction, R: Rng + ?Sized>(
    utility: &U,
    trials: usize,
    rng: &mut R,
) -> Report {
    let mut report = Report::new();
    let n = utility.universe();

    // Finiteness first: the axiom checker's arithmetic is meaningless on
    // NaN, and the greedy would reject the gains anyway (COOL-E015 is the
    // static twin of `ScheduleBuildError::NonFiniteGain`).
    let empty = utility.eval(&SensorSet::new(n));
    if !empty.is_finite() {
        report.push(Diagnostic::new(
            CoolCode::NonFiniteUtility,
            format!("U(empty set) = {empty} is not finite"),
        ));
    }
    let full = utility.eval(&SensorSet::full(n));
    if !full.is_finite() {
        report.push(Diagnostic::new(
            CoolCode::NonFiniteUtility,
            format!("U(full set) = {full} is not finite"),
        ));
    }
    for v in 0..n {
        let mut s = SensorSet::new(n);
        s.insert(SensorId(v));
        let value = utility.eval(&s);
        if !value.is_finite() {
            report.push(
                Diagnostic::new(
                    CoolCode::NonFiniteUtility,
                    format!("U({{{v}}}) = {value} is not finite"),
                )
                .with_help("utilities must be finite on every sensor set"),
            );
            // One sensor-level finding is enough; the cause is systemic.
            break;
        }
    }
    if !report.is_clean() {
        return report;
    }

    match check_utility(utility, trials, rng) {
        Ok(()) => {}
        Err(UtilityViolation::NotNormalized { value }) => {
            report.push(
                Diagnostic::new(
                    CoolCode::NonNormalizedUtility,
                    format!("U(empty set) = {value}, expected 0"),
                )
                .with_help("subtract U(empty set) so the utility is normalised"),
            );
        }
        Err(UtilityViolation::NotMonotone {
            subset,
            superset,
            excess,
        }) => {
            report.push(
                Diagnostic::new(
                    CoolCode::NonMonotoneUtility,
                    format!(
                        "utility decreases by {excess:.3e} when growing a {}-sensor set to \
                         {} sensors",
                        subset.len(),
                        superset.len()
                    ),
                )
                .with_help(
                    "the greedy's approximation guarantee requires U(S1) <= U(S2) for S1 \
                     inside S2",
                ),
            );
        }
        Err(UtilityViolation::NotSubmodular {
            subset,
            superset,
            element,
            excess,
        }) => {
            report.push(
                Diagnostic::new(
                    CoolCode::NonSubmodularUtility,
                    format!(
                        "marginal gain of {element} grows by {excess:.3e} from a {}-sensor \
                         context to a {}-sensor context (diminishing returns violated)",
                        subset.len(),
                        superset.len()
                    ),
                )
                .with_help(
                    "the greedy's approximation guarantee requires gains to shrink as the \
                     active set grows",
                ),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::SeedSequence;
    use cool_utility::{DetectionUtility, LinearEvaluator, LinearUtility};

    fn rng() -> rand::rngs::StdRng {
        SeedSequence::new(77).nth_rng(0)
    }

    /// Wraps a linear utility with an arbitrary value transform, to seed
    /// axiom violations.
    struct Warped<F: Fn(&SensorSet) -> f64>(usize, F);

    impl<F: Fn(&SensorSet) -> f64> UtilityFunction for Warped<F> {
        type Evaluator = LinearEvaluator;
        fn universe(&self) -> usize {
            self.0
        }
        fn eval(&self, set: &SensorSet) -> f64 {
            (self.1)(set)
        }
        fn evaluator(&self) -> Self::Evaluator {
            LinearUtility::new(vec![0.0; self.0]).evaluator()
        }
    }

    #[test]
    fn conforming_utility_is_clean() {
        let u = DetectionUtility::uniform(8, 0.4);
        let r = lint_utility(&u, 300, &mut rng());
        assert!(r.is_clean(), "{r}");
        assert!(r.diagnostics().is_empty());
    }

    #[test]
    fn shifted_utility_is_e011() {
        let u = Warped(4, |s: &SensorSet| s.len() as f64 + 1.0);
        let r = lint_utility(&u, 50, &mut rng());
        assert!(r.has_code(CoolCode::NonNormalizedUtility), "{r}");
    }

    #[test]
    fn oscillating_utility_is_e009_or_e010() {
        let u = Warped(8, |s: &SensorSet| (s.len() % 2) as f64);
        let r = lint_utility(&u, 500, &mut rng());
        assert!(
            r.has_code(CoolCode::NonMonotoneUtility) || r.has_code(CoolCode::NonSubmodularUtility),
            "{r}"
        );
        assert!(!r.is_clean());
    }

    #[test]
    fn supermodular_utility_is_e010() {
        let u = Warped(8, |s: &SensorSet| (s.len() * s.len()) as f64);
        let r = lint_utility(&u, 500, &mut rng());
        assert!(r.has_code(CoolCode::NonSubmodularUtility), "{r}");
    }

    #[test]
    fn nan_utility_is_e015() {
        let u = Warped(4, |s: &SensorSet| {
            if s.len() == 1 {
                f64::NAN
            } else {
                s.len() as f64
            }
        });
        let r = lint_utility(&u, 50, &mut rng());
        assert!(r.has_code(CoolCode::NonFiniteUtility), "{r}");
    }

    #[test]
    fn infinite_full_set_is_e015() {
        let u = Warped(
            4,
            |s: &SensorSet| if s.len() == 4 { f64::INFINITY } else { 0.0 },
        );
        let r = lint_utility(&u, 50, &mut rng());
        assert!(r.has_code(CoolCode::NonFiniteUtility), "{r}");
    }

    #[test]
    fn universe_mismatch_is_e016() {
        let u = DetectionUtility::uniform(8, 0.4);
        assert!(lint_universe(&u, 8).is_clean());
        let r = lint_universe(&u, 10);
        assert!(r.has_code(CoolCode::UniverseMismatch), "{r}");
    }
}
