//! Golden-file test: the JSON rendering of a known-bad scenario is part of
//! the crate's contract — tooling parses it, so its shape and the code
//! assignments must not drift silently. Regenerate the golden file by
//! running the test with `UPDATE_GOLDEN=1` and reviewing the diff.

use cool_lint::{lint_scenario_text, to_sarif, CoolCode};

#[test]
fn bad_scenario_json_matches_golden() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
    let scenario = std::fs::read_to_string(format!("{dir}/bad_scenario.txt"))
        .expect("golden scenario readable");
    // The file name is attributed as a stable relative path so the golden
    // output does not depend on where the checkout lives.
    let json = lint_scenario_text(&scenario, "tests/golden/bad_scenario.txt").to_json();

    let golden_path = format!("{dir}/bad_scenario.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, format!("{json}\n")).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).expect("golden JSON readable");
    assert_eq!(
        json,
        golden.trim_end(),
        "JSON diagnostics drifted from the golden file; \
         rerun with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn bad_scenario_sarif_matches_golden() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
    let scenario = std::fs::read_to_string(format!("{dir}/bad_scenario.txt"))
        .expect("golden scenario readable");
    let report = lint_scenario_text(&scenario, "tests/golden/bad_scenario.txt");
    let sarif = to_sarif(&report);

    let golden_path = format!("{dir}/bad_scenario.sarif");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, format!("{sarif}\n")).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).expect("golden SARIF readable");
    assert_eq!(
        sarif,
        golden.trim_end(),
        "SARIF output drifted from the golden file; \
         rerun with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn golden_scenario_exercises_the_codes_it_claims() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
    let scenario = std::fs::read_to_string(format!("{dir}/bad_scenario.txt")).unwrap();
    let report = lint_scenario_text(&scenario, "tests/golden/bad_scenario.txt");
    for code in [
        CoolCode::DuplicateScenarioKey,
        CoolCode::InvalidProbability,
        CoolCode::NonIntegralRho,
        CoolCode::UnknownScenarioKey,
        CoolCode::ScenarioLineMalformed,
    ] {
        assert!(report.has_code(code), "expected {code} in: {report}");
    }
    assert!(!report.is_clean());
}
