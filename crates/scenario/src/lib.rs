//! Scenario files: declarative scheduling runs for the `cool` CLI and the
//! `cool-serve` daemon.
//!
//! A scenario is a tiny `key = value` text format (comments with `#`)
//! describing a deployment, a utility, a charging pattern and a scheduler;
//! [`Scenario::parse`] reads it, [`Scenario::build`] materialises the
//! [`Problem`] instance for any scheduler to consume, and
//! [`Scenario::run`] executes the scenario's own scheduler and returns a
//! [`ScenarioOutcome`] the CLI renders. [`Scenario::canonical`] renders a
//! normal form used as the content-addressed cache key by the serving
//! layer. Example:
//!
//! ```text
//! # 100 sensors watching 5 targets through a sunny day
//! sensors            = 100
//! targets            = 5
//! detection_p        = 0.4
//! discharge_minutes  = 15
//! recharge_minutes   = 45
//! hours              = 12
//! region             = 500
//! radius             = 100
//! seed               = 7
//! scheduler          = greedy
//! ```

use cool_common::{SeedSequence, Table};
use cool_core::baselines::{
    hef_schedule, random_schedule, round_robin_schedule, rsc_schedule, set_once_schedule,
    static_schedule,
};
use cool_core::bounds::{grid_duty_upper_bound, single_target_upper_bound_with_budget};
use cool_core::greedy::{greedy_schedule, greedy_schedule_lazy};
use cool_core::hetero::{hetero_greedy_lazy, hetero_greedy_naive, GridSchedule};
use cool_core::instances::geometric_multi_target;
use cool_core::problem::Problem;
use cool_core::schedule::PeriodSchedule;
use cool_energy::{ChargeCycle, Fleet, FleetGrid, SensorProfile};
use cool_geometry::Rect;
use cool_utility::{AnyUtility, SumUtility};
use std::fmt;
use std::str::FromStr;

/// Which scheduling algorithm a scenario runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Greedy hill-climbing (Algorithm 1), naive implementation.
    #[default]
    Greedy,
    /// Lazy (CELF) greedy — identical output, faster.
    Lazy,
    /// Round-robin baseline.
    RoundRobin,
    /// Uniform random baseline.
    Random,
    /// Everyone-in-slot-0 baseline.
    Static,
    /// Restricted Strip Covering baseline (grid path).
    Rsc,
    /// Set-Once Strip Cover baseline (grid path).
    SetOnce,
    /// High-Energy-First baseline (grid path).
    Hef,
}

impl SchedulerKind {
    /// `true` for the schedulers that run on the heterogeneous LCM tick
    /// grid ([`Scenario::run_fleet`]) rather than the homogeneous
    /// period-schedule path.
    pub fn is_grid_scheduler(self) -> bool {
        matches!(
            self,
            SchedulerKind::Rsc | SchedulerKind::SetOnce | SchedulerKind::Hef
        )
    }
}

impl FromStr for SchedulerKind {
    type Err = ScenarioError;

    fn from_str(s: &str) -> Result<Self, ScenarioError> {
        match s {
            "greedy" => Ok(SchedulerKind::Greedy),
            "lazy" => Ok(SchedulerKind::Lazy),
            "round-robin" | "round_robin" => Ok(SchedulerKind::RoundRobin),
            "random" => Ok(SchedulerKind::Random),
            "static" => Ok(SchedulerKind::Static),
            "rsc" => Ok(SchedulerKind::Rsc),
            "set-once" | "set_once" => Ok(SchedulerKind::SetOnce),
            "hef" => Ok(SchedulerKind::Hef),
            other => Err(ScenarioError::BadValue {
                key: "scheduler".into(),
                value: other.into(),
                expected: "greedy | lazy | round-robin | random | static | rsc | set-once | hef"
                    .into(),
            }),
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SchedulerKind::Greedy => "greedy",
            SchedulerKind::Lazy => "lazy",
            SchedulerKind::RoundRobin => "round-robin",
            SchedulerKind::Random => "random",
            SchedulerKind::Static => "static",
            SchedulerKind::Rsc => "rsc",
            SchedulerKind::SetOnce => "set-once",
            SchedulerKind::Hef => "hef",
        };
        f.write_str(s)
    }
}

/// Error parsing a scenario file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioError {
    /// A line was not `key = value` or a comment.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// An unknown key.
    UnknownKey {
        /// The key.
        key: String,
    },
    /// A value failed to parse or was out of range.
    BadValue {
        /// The key.
        key: String,
        /// The raw value.
        value: String,
        /// What would have been accepted.
        expected: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::BadLine { line, text } => {
                write!(f, "line {line}: expected `key = value`, got `{text}`")
            }
            ScenarioError::UnknownKey { key } => write!(f, "unknown key `{key}`"),
            ScenarioError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "bad value `{value}` for `{key}` (expected {expected})")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Parses a comma-separated list of positive finite numbers (each `≤ max`).
/// An empty value clears the list back to "unset".
fn list(key: &str, value: &str, expected: &str, max: f64) -> Result<Vec<f64>, ScenarioError> {
    if value.trim().is_empty() {
        return Ok(Vec::new());
    }
    let bad = || ScenarioError::BadValue {
        key: key.into(),
        value: value.into(),
        expected: format!("a comma-separated list of {expected}"),
    };
    value
        .split(',')
        .map(|item| {
            let x: f64 = item.trim().parse().map_err(|_| bad())?;
            if !x.is_finite() || x <= 0.0 || x > max {
                return Err(bad());
            }
            Ok(x)
        })
        .collect()
}

/// Renders a profile list for [`Scenario::canonical`]: comma-joined, empty
/// when unset.
fn render_list(values: &[f64]) -> String {
    values
        .iter()
        .map(f64::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// A declarative scheduling run.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Number of sensors `n`.
    pub sensors: usize,
    /// Number of targets `m`.
    pub targets: usize,
    /// Per-sensor detection probability `p`.
    pub detection_p: f64,
    /// Discharge time `T_d` in minutes.
    pub discharge_minutes: f64,
    /// Recharge time `T_r` in minutes.
    pub recharge_minutes: f64,
    /// Working time in hours.
    pub hours: f64,
    /// Square region side length.
    pub region: f64,
    /// Sensing radius.
    pub radius: f64,
    /// Communication radius for the `cool audit` connectivity lint; `0`
    /// (the default) disables the check.
    pub comms_radius: f64,
    /// Root random seed.
    pub seed: u64,
    /// Scheduler to run.
    pub scheduler: SchedulerKind,
    /// Per-sensor battery capacities in watt-hours (comma list, assigned
    /// cyclically: sensor `v` gets `battery[v mod len]`). Empty = the
    /// default capacity. When ANY of the four profile lists is non-empty,
    /// the profiles define the energy model and `discharge_minutes` /
    /// `recharge_minutes` are ignored.
    pub battery: Vec<f64>,
    /// Per-sensor active power draws in milliwatts (comma list, cyclic).
    pub mu_d: Vec<f64>,
    /// Per-sensor recharge powers in milliwatts (comma list, cyclic).
    pub mu_r: Vec<f64>,
    /// Per-sensor solar efficiencies in `(0, 1]` (comma list, cyclic).
    pub solar_eff: Vec<f64>,
}

impl Default for Scenario {
    /// The paper's testbed setting: 100 sensors, 5 targets, `p = 0.4`,
    /// sunny cycle, 12-hour day.
    fn default() -> Self {
        Scenario {
            sensors: 100,
            targets: 5,
            detection_p: 0.4,
            discharge_minutes: 15.0,
            recharge_minutes: 45.0,
            hours: 12.0,
            region: 500.0,
            radius: 100.0,
            comms_radius: 0.0,
            seed: 2011,
            scheduler: SchedulerKind::Greedy,
            battery: Vec::new(),
            mu_d: Vec::new(),
            mu_r: Vec::new(),
            solar_eff: Vec::new(),
        }
    }
}

/// A scenario materialised into a schedulable instance: the problem, its
/// charging cycle, and the horizon in whole periods.
#[derive(Clone, Debug)]
pub struct BuiltScenario {
    /// The instance any scheduler in `cool-core` accepts.
    pub problem: Problem<SumUtility>,
    /// The derived charging cycle.
    pub cycle: ChargeCycle,
    /// Whole charging periods in the working time (at least 1).
    pub periods: usize,
}

/// A scenario materialised onto the heterogeneous LCM tick grid.
#[derive(Clone, Debug)]
pub struct BuiltFleetScenario {
    /// The geometric utility instance.
    pub utility: SumUtility,
    /// The per-sensor energy profiles and cycles.
    pub fleet: Fleet,
    /// The LCM tick grid.
    pub grid: FleetGrid,
    /// Whole hyperperiods in the working time (at least 1).
    pub hyperperiods: usize,
}

/// The result of running a [`Scenario`] on the fleet grid
/// ([`Scenario::run_fleet`]).
#[derive(Clone, Debug)]
pub struct FleetScenarioOutcome {
    /// The scenario that produced this outcome.
    pub scenario: Scenario,
    /// The LCM tick grid the schedule lives on.
    pub grid: FleetGrid,
    /// The produced (feasible) per-tick schedule.
    pub schedule: GridSchedule,
    /// Average utility per target per tick.
    pub average: f64,
    /// The duty-cycle upper bound, averaged the same way.
    pub bound: f64,
}

impl fmt::Display for FleetScenarioOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scenario: {} sensors, {} targets, p = {}, {} scheduler (fleet grid)",
            self.scenario.sensors,
            self.scenario.targets,
            self.scenario.detection_p,
            self.scenario.scheduler
        )?;
        writeln!(f, "grid:     {}", self.grid)?;
        writeln!(f)?;
        let mut table = Table::new(["metric", "value"]);
        table.row([
            "avg utility / target / tick",
            &format!("{:.6}", self.average),
        ]);
        table.row(["duty-cycle upper bound", &format!("{:.6}", self.bound)]);
        table.row([
            "fraction of bound",
            &format!("{:.2}%", self.average / self.bound * 100.0),
        ]);
        write!(f, "{table}")?;
        writeln!(f)?;
        writeln!(f, "per-tick active counts (one hyperperiod):")?;
        for t in 0..self.grid.hyperperiod() {
            writeln!(
                f,
                "  t{t}: {:>4} sensors",
                self.schedule.active_set(t).len()
            )?;
        }
        Ok(())
    }
}

impl Scenario {
    /// Parses a scenario file; unspecified keys keep their defaults.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] for malformed lines, unknown keys, or
    /// out-of-range values.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let mut scenario = Scenario::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ScenarioError::BadLine {
                    line: idx + 1,
                    text: raw.trim().into(),
                });
            };
            scenario.set(key.trim(), value.trim())?;
        }
        Ok(scenario)
    }

    /// Applies one `key = value` override (also used for CLI `--set`).
    ///
    /// # Errors
    ///
    /// As [`Scenario::parse`].
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), ScenarioError> {
        fn num<T: FromStr>(key: &str, value: &str, expected: &str) -> Result<T, ScenarioError> {
            value.parse().map_err(|_| ScenarioError::BadValue {
                key: key.into(),
                value: value.into(),
                expected: expected.into(),
            })
        }
        match key {
            "sensors" => {
                self.sensors = num(key, value, "a positive integer")?;
                if self.sensors == 0 {
                    return Err(ScenarioError::BadValue {
                        key: key.into(),
                        value: value.into(),
                        expected: "a positive integer".into(),
                    });
                }
            }
            "targets" => {
                self.targets = num(key, value, "a positive integer")?;
                if self.targets == 0 {
                    return Err(ScenarioError::BadValue {
                        key: key.into(),
                        value: value.into(),
                        expected: "a positive integer".into(),
                    });
                }
            }
            "detection_p" => {
                self.detection_p = num(key, value, "a probability in [0, 1]")?;
                if !(0.0..=1.0).contains(&self.detection_p) {
                    return Err(ScenarioError::BadValue {
                        key: key.into(),
                        value: value.into(),
                        expected: "a probability in [0, 1]".into(),
                    });
                }
            }
            "discharge_minutes" => self.discharge_minutes = num(key, value, "minutes > 0")?,
            "recharge_minutes" => self.recharge_minutes = num(key, value, "minutes > 0")?,
            "hours" => self.hours = num(key, value, "hours > 0")?,
            "region" => self.region = num(key, value, "a side length > 0")?,
            "radius" => self.radius = num(key, value, "a radius > 0")?,
            "comms_radius" => {
                self.comms_radius = num(key, value, "a radius >= 0")?;
                if !self.comms_radius.is_finite() || self.comms_radius < 0.0 {
                    return Err(ScenarioError::BadValue {
                        key: key.into(),
                        value: value.into(),
                        expected: "a radius >= 0".into(),
                    });
                }
            }
            "seed" => self.seed = num(key, value, "an unsigned integer")?,
            "scheduler" => self.scheduler = value.parse()?,
            "battery" => self.battery = list(key, value, "watt-hours > 0", f64::INFINITY)?,
            "mu_d" => self.mu_d = list(key, value, "milliwatts > 0", f64::INFINITY)?,
            "mu_r" => self.mu_r = list(key, value, "milliwatts > 0", f64::INFINITY)?,
            "solar_eff" => self.solar_eff = list(key, value, "efficiencies in (0, 1]", 1.0)?,
            other => return Err(ScenarioError::UnknownKey { key: other.into() }),
        }
        Ok(())
    }

    /// `true` when any per-sensor profile list is set — the scenario then
    /// describes a (possibly heterogeneous) fleet and the profile fields,
    /// not `discharge_minutes`/`recharge_minutes`, define the energy model.
    pub fn has_profiles(&self) -> bool {
        !self.battery.is_empty()
            || !self.mu_d.is_empty()
            || !self.mu_r.is_empty()
            || !self.solar_eff.is_empty()
    }

    /// A template scenario file with the defaults spelled out.
    pub fn template() -> String {
        let d = Scenario::default();
        format!(
            "# cool scheduling scenario\n\
             sensors            = {}\n\
             targets            = {}\n\
             detection_p        = {}\n\
             discharge_minutes  = {}\n\
             recharge_minutes   = {}\n\
             hours              = {}\n\
             region             = {}\n\
             radius             = {}\n\
             comms_radius       = {}   # 0 disables the connectivity lint\n\
             seed               = {}\n\
             scheduler          = {}   # greedy | lazy | round-robin | random | static | rsc | set-once | hef\n\
             # Heterogeneous fleets: uncomment any of the four per-sensor\n\
             # profile lists (comma-separated, assigned cyclically). When\n\
             # any is set, the profiles define the energy model and the\n\
             # discharge/recharge keys above are ignored.\n\
             # battery          = 30,60       # watt-hours\n\
             # mu_d             = 120         # active draw, mW\n\
             # mu_r             = 40          # recharge power, mW\n\
             # solar_eff        = 1,0.5       # panel derating in (0, 1]\n",
            d.sensors,
            d.targets,
            d.detection_p,
            d.discharge_minutes,
            d.recharge_minutes,
            d.hours,
            d.region,
            d.radius,
            d.comms_radius,
            d.seed,
            d.scheduler
        )
    }

    /// The canonical normal form of this scenario: one `key=value` per
    /// line, fixed key order, no comments or whitespace variation. Two
    /// scenario texts that parse to the same [`Scenario`] always
    /// canonicalise identically, so this string (not the raw input) is the
    /// right content-addressed cache key.
    pub fn canonical(&self) -> String {
        format!(
            "sensors={}\ntargets={}\ndetection_p={}\ndischarge_minutes={}\n\
             recharge_minutes={}\nhours={}\nregion={}\nradius={}\ncomms_radius={}\nseed={}\n\
             scheduler={}\nbattery={}\nmu_d={}\nmu_r={}\nsolar_eff={}\n",
            self.sensors,
            self.targets,
            self.detection_p,
            self.discharge_minutes,
            self.recharge_minutes,
            self.hours,
            self.region,
            self.radius,
            self.comms_radius,
            self.seed,
            self.scheduler,
            render_list(&self.battery),
            render_list(&self.mu_d),
            render_list(&self.mu_r),
            render_list(&self.solar_eff),
        )
    }

    /// Materialises the scenario into a [`Problem`] without running any
    /// scheduler — the entry point for callers (like `cool-serve`) that
    /// choose the algorithm themselves.
    ///
    /// # Errors
    ///
    /// Returns a rendered error string for invalid cycle parameters (e.g. a
    /// non-integral ρ) or degenerate horizons.
    pub fn build(&self) -> Result<BuiltScenario, String> {
        let cycle = if self.has_profiles() {
            let fleet = self.fleet()?;
            fleet.uniform_cycle().ok_or_else(|| {
                "scenario defines a mixed fleet; homogeneous consumers cannot run it — \
                 use build_fleet()/run_fleet() (CLI: cool run with scheduler = greedy | \
                 lazy | rsc | set-once | hef)"
                    .to_string()
            })?
        } else {
            ChargeCycle::from_minutes(self.discharge_minutes, self.recharge_minutes)
                .map_err(|e| e.to_string())?
        };
        let periods = cycle.periods_in_hours(self.hours).max(1);

        let problem = Problem::new(self.utility(), cycle, periods).map_err(|e| e.to_string())?;
        Ok(BuiltScenario {
            problem,
            cycle,
            periods,
        })
    }

    /// The scenario's geometric utility instance (deterministic in `seed`).
    fn utility(&self) -> SumUtility {
        let seeds = SeedSequence::new(self.seed);
        let mut rng = seeds.nth_rng(0);
        let (utility, _positions, _targets) = geometric_multi_target(
            Rect::square(self.region),
            self.sensors,
            self.targets,
            self.radius,
            self.detection_p,
            &mut rng,
        );
        utility
    }

    /// The scenario's fleet: per-sensor profiles when any profile list is
    /// set (values assigned cyclically, unset fields at their defaults),
    /// otherwise `sensors` copies of the homogeneous cycle stored verbatim.
    ///
    /// # Errors
    ///
    /// Returns a rendered error string for degenerate profiles or cycles.
    pub fn fleet(&self) -> Result<Fleet, String> {
        if self.has_profiles() {
            let defaults = SensorProfile::default();
            let pick = |values: &[f64], v: usize, default: f64| {
                if values.is_empty() {
                    default
                } else {
                    values[v % values.len()]
                }
            };
            let profiles = (0..self.sensors)
                .map(|v| SensorProfile {
                    battery: pick(&self.battery, v, defaults.battery),
                    mu_d: pick(&self.mu_d, v, defaults.mu_d),
                    mu_r: pick(&self.mu_r, v, defaults.mu_r),
                    solar_eff: pick(&self.solar_eff, v, defaults.solar_eff),
                })
                .collect();
            Fleet::new(profiles).map_err(|e| e.to_string())
        } else {
            let cycle = ChargeCycle::from_minutes(self.discharge_minutes, self.recharge_minutes)
                .map_err(|e| e.to_string())?;
            Fleet::uniform_from_cycle(self.sensors, cycle).map_err(|e| e.to_string())
        }
    }

    /// Materialises the scenario onto the heterogeneous LCM tick grid —
    /// the entry point for mixed fleets and the grid schedulers
    /// (`rsc`/`set-once`/`hef`), which work on homogeneous scenarios too.
    ///
    /// # Errors
    ///
    /// As [`Scenario::fleet`], plus grid-construction failures
    /// (non-commensurable durations, hyperperiod over the cap).
    pub fn build_fleet(&self) -> Result<BuiltFleetScenario, String> {
        let fleet = self.fleet()?;
        let grid = FleetGrid::build(&fleet).map_err(|e| e.to_string())?;
        let hyperperiod_minutes = grid.ticks_to_minutes(grid.hyperperiod());
        let hyperperiods = ((self.hours * 60.0 / hyperperiod_minutes).floor() as usize).max(1);
        Ok(BuiltFleetScenario {
            utility: self.utility(),
            fleet,
            grid,
            hyperperiods,
        })
    }

    /// Executes the scenario on the LCM tick grid with its own scheduler
    /// selection — the heterogeneous counterpart of [`Scenario::run`].
    ///
    /// # Errors
    ///
    /// As [`Scenario::build_fleet`]; also rejects the homogeneous-only
    /// baselines (`round-robin`/`random`/`static`) and infeasible output.
    pub fn run_fleet(&self) -> Result<FleetScenarioOutcome, String> {
        let built = self.build_fleet()?;
        let BuiltFleetScenario {
            utility,
            fleet,
            grid,
            ..
        } = &built;
        let schedule: GridSchedule = match self.scheduler {
            SchedulerKind::Greedy => hetero_greedy_naive(utility, grid)
                .map_err(|e| e.to_string())?
                .to_grid_schedule(),
            SchedulerKind::Lazy => hetero_greedy_lazy(utility, grid)
                .map_err(|e| e.to_string())?
                .to_grid_schedule(),
            SchedulerKind::Rsc => rsc_schedule(utility, grid).map_err(|e| e.to_string())?,
            SchedulerKind::SetOnce => set_once_schedule(grid),
            SchedulerKind::Hef => hef_schedule(utility, fleet, grid)
                .map_err(|e| e.to_string())?
                .to_grid_schedule(),
            other => {
                return Err(format!(
                    "scheduler `{other}` does not support fleet scheduling; \
                     use greedy | lazy | rsc | set-once | hef"
                ))
            }
        };
        if !schedule.is_feasible(grid) {
            return Err("scheduler produced an energy-infeasible fleet schedule".into());
        }
        let h = grid.hyperperiod() as f64;
        let m = utility.n_targets() as f64;
        let average = schedule.hyperperiod_utility(utility) / (h * m);
        let bound = grid_duty_upper_bound(utility, grid) / (h * m);
        Ok(FleetScenarioOutcome {
            scenario: self.clone(),
            grid: grid.clone(),
            schedule,
            average,
            bound,
        })
    }

    /// Executes the scenario with its own `scheduler` selection.
    ///
    /// # Errors
    ///
    /// As [`Scenario::build`], plus an infeasible-schedule report if a
    /// scheduler misbehaves.
    pub fn run(&self) -> Result<ScenarioOutcome, String> {
        let built = self.build()?;
        let BuiltScenario { problem, cycle, .. } = &built;
        let seeds = SeedSequence::new(self.seed);

        let schedule = match self.scheduler {
            SchedulerKind::Greedy => greedy_schedule(problem),
            SchedulerKind::Lazy => greedy_schedule_lazy(problem),
            SchedulerKind::RoundRobin => round_robin_schedule(problem),
            SchedulerKind::Random => random_schedule(problem, &mut seeds.nth_rng(1)),
            SchedulerKind::Static => static_schedule(problem),
            grid @ (SchedulerKind::Rsc | SchedulerKind::SetOnce | SchedulerKind::Hef) => {
                return Err(format!(
                    "scheduler `{grid}` runs on the fleet grid; use run_fleet() \
                     (CLI: cool run dispatches it automatically)"
                ))
            }
        };
        if !schedule.is_feasible(*cycle) {
            return Err("scheduler produced an infeasible schedule".into());
        }

        let average = problem.average_utility_per_target_slot(&schedule);
        let bound = self.average_bound(problem, *cycle);
        Ok(ScenarioOutcome {
            scenario: self.clone(),
            cycle: *cycle,
            schedule,
            average,
            bound,
        })
    }

    /// The per-target-averaged optimum upper bound for this scenario's
    /// instance (§VI-B closed form per detection part, 1.0 otherwise).
    pub fn average_bound(&self, problem: &Problem<SumUtility>, cycle: ChargeCycle) -> f64 {
        let t = cycle.slots_per_period();
        let budget = cycle.active_slots_per_period();
        let bounds: Vec<f64> = problem
            .utility()
            .parts()
            .iter()
            .map(|part| match part {
                AnyUtility::Detection(d) => single_target_upper_bound_with_budget(
                    d.coverage().len().max(1),
                    t,
                    budget,
                    self.detection_p,
                ),
                _ => 1.0,
            })
            .collect();
        bounds.iter().sum::<f64>() / bounds.len() as f64
    }
}

/// The result of running a [`Scenario`].
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The scenario that produced this outcome.
    pub scenario: Scenario,
    /// The derived charging cycle.
    pub cycle: ChargeCycle,
    /// The produced (feasible) schedule.
    pub schedule: PeriodSchedule,
    /// Average utility per target per slot.
    pub average: f64,
    /// Per-target-averaged optimum upper bound.
    pub bound: f64,
}

impl fmt::Display for ScenarioOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scenario: {} sensors, {} targets, p = {}, {} scheduler",
            self.scenario.sensors,
            self.scenario.targets,
            self.scenario.detection_p,
            self.scenario.scheduler
        )?;
        writeln!(f, "cycle:    {}", self.cycle)?;
        writeln!(
            f,
            "horizon:  {} h = {} periods",
            self.scenario.hours,
            self.cycle.periods_in_hours(self.scenario.hours).max(1)
        )?;
        writeln!(f)?;
        let mut table = Table::new(["metric", "value"]);
        table.row([
            "avg utility / target / slot",
            &format!("{:.6}", self.average),
        ]);
        table.row(["optimum upper bound", &format!("{:.6}", self.bound)]);
        table.row([
            "fraction of bound",
            &format!("{:.2}%", self.average / self.bound * 100.0),
        ]);
        write!(f, "{table}")?;
        writeln!(f)?;
        writeln!(f, "per-slot active counts (one period):")?;
        for t in 0..self.schedule.slots_per_period() {
            writeln!(
                f,
                "  t{t}: {:>4} sensors",
                self.schedule.active_set(t).len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_round_trips() {
        let template = Scenario::template();
        let parsed = Scenario::parse(&template).unwrap();
        assert_eq!(parsed, Scenario::default());
    }

    #[test]
    fn parse_with_comments_and_overrides() {
        let s =
            Scenario::parse("# comment\n\nsensors = 10  # trailing comment\nscheduler = lazy\n")
                .unwrap();
        assert_eq!(s.sensors, 10);
        assert_eq!(s.scheduler, SchedulerKind::Lazy);
        assert_eq!(s.targets, Scenario::default().targets);
    }

    #[test]
    fn parse_errors_are_specific() {
        assert!(matches!(
            Scenario::parse("nonsense line"),
            Err(ScenarioError::BadLine { line: 1, .. })
        ));
        assert!(matches!(
            Scenario::parse("volume = 11"),
            Err(ScenarioError::UnknownKey { .. })
        ));
        assert!(matches!(
            Scenario::parse("detection_p = 1.5"),
            Err(ScenarioError::BadValue { .. })
        ));
        assert!(matches!(
            Scenario::parse("sensors = 0"),
            Err(ScenarioError::BadValue { .. })
        ));
        assert!(matches!(
            Scenario::parse("scheduler = quantum"),
            Err(ScenarioError::BadValue { .. })
        ));
        let err = Scenario::parse("scheduler = quantum").unwrap_err();
        assert!(err.to_string().contains("greedy"));
    }

    #[test]
    fn run_small_scenario() {
        let mut s = Scenario::default();
        s.set("sensors", "20").unwrap();
        s.set("targets", "3").unwrap();
        s.set("region", "100").unwrap();
        s.set("radius", "40").unwrap();
        let outcome = s.run().unwrap();
        assert!(outcome.average > 0.0 && outcome.average <= 1.0);
        assert!(outcome.average <= outcome.bound + 1e-9);
        assert!(outcome.schedule.is_feasible(outcome.cycle));
        let text = outcome.to_string();
        assert!(text.contains("avg utility"));
    }

    #[test]
    fn fast_recharge_bound_dominates() {
        // ρ ≤ 1 regression: the bound must account for multi-slot activity.
        let mut s = Scenario::default();
        s.set("sensors", "30").unwrap();
        s.set("targets", "4").unwrap();
        s.set("detection_p", "0.3").unwrap();
        s.set("discharge_minutes", "45").unwrap();
        s.set("recharge_minutes", "15").unwrap();
        s.set("region", "200").unwrap();
        s.set("radius", "60").unwrap();
        let outcome = s.run().unwrap();
        assert!(
            outcome.average <= outcome.bound + 1e-9,
            "utility {} exceeded bound {}",
            outcome.average,
            outcome.bound
        );
    }

    #[test]
    fn all_schedulers_run() {
        for kind in ["greedy", "lazy", "round-robin", "random", "static"] {
            let mut s = Scenario::default();
            s.set("sensors", "12").unwrap();
            s.set("targets", "2").unwrap();
            s.set("scheduler", kind).unwrap();
            let outcome = s.run().unwrap();
            assert!(outcome.schedule.is_feasible(outcome.cycle), "{kind}");
        }
    }

    #[test]
    fn rejects_non_integral_rho() {
        let mut s = Scenario::default();
        s.set("recharge_minutes", "40").unwrap(); // 40/15 not integral
        let err = s.run().unwrap_err();
        assert!(err.contains("integer"));
    }

    #[test]
    fn canonical_ignores_surface_syntax() {
        let a = Scenario::parse("sensors = 10   # c\n\nseed=7\n").unwrap();
        let b = Scenario::parse("seed = 7\nsensors = 10\n").unwrap();
        assert_eq!(a.canonical(), b.canonical());
        let c = Scenario::parse("sensors = 11\nseed = 7\n").unwrap();
        assert_ne!(a.canonical(), c.canonical());
        // Every field participates in the normal form.
        for key in [
            "sensors",
            "targets",
            "detection_p",
            "discharge_minutes",
            "recharge_minutes",
            "hours",
            "region",
            "radius",
            "comms_radius",
            "seed",
            "scheduler",
            "battery",
            "mu_d",
            "mu_r",
            "solar_eff",
        ] {
            assert!(a.canonical().contains(&format!("{key}=")), "{key} missing");
        }
    }

    #[test]
    fn comms_radius_parses_and_rejects_negatives() {
        let s = Scenario::parse("comms_radius = 150\n").unwrap();
        assert_eq!(s.comms_radius, 150.0);
        assert!(Scenario::parse("comms_radius = -1\n").is_err());
    }

    #[test]
    fn profile_lists_parse_and_canonicalise() {
        let s = Scenario::parse("battery = 30, 60\nsolar_eff = 0.5\n").unwrap();
        assert_eq!(s.battery, vec![30.0, 60.0]);
        assert_eq!(s.solar_eff, vec![0.5]);
        assert!(s.has_profiles());
        assert!(s.canonical().contains("battery=30,60\n"));
        assert!(s.canonical().contains("solar_eff=0.5\n"));
        // Empty value clears a list back to unset.
        let mut s = s;
        s.set("battery", "").unwrap();
        s.set("solar_eff", "").unwrap();
        assert!(!s.has_profiles());
        assert!(s.canonical().contains("battery=\n"));
        // Bad entries are rejected.
        assert!(Scenario::parse("battery = 30,zero\n").is_err());
        assert!(Scenario::parse("mu_d = -5\n").is_err());
        assert!(Scenario::parse("solar_eff = 1.5\n").is_err());
    }

    #[test]
    fn uniform_profiles_take_the_homogeneous_path() {
        // battery=60 at default currents: T_d = 30, T_r = 90 — same ρ = 3,
        // longer period. build() must accept it and derive the cycle from
        // the profiles, ignoring discharge/recharge_minutes.
        let mut s = Scenario::default();
        s.set("sensors", "12").unwrap();
        s.set("targets", "2").unwrap();
        s.set("battery", "60").unwrap();
        s.set("discharge_minutes", "999").unwrap(); // must be ignored
        let built = s.build().unwrap();
        assert_eq!(built.cycle.discharge_minutes(), 30.0);
        assert_eq!(built.cycle.recharge_minutes(), 90.0);
        let outcome = s.run().unwrap();
        assert!(outcome.schedule.is_feasible(outcome.cycle));
    }

    #[test]
    fn mixed_fleet_is_rejected_on_the_homogeneous_path() {
        let mut s = Scenario::default();
        s.set("sensors", "8").unwrap();
        s.set("battery", "30,60").unwrap();
        let err = s.build().unwrap_err();
        assert!(err.contains("mixed fleet"), "{err}");
        // ...and therefore by everything that goes through build():
        let err = s.run().unwrap_err();
        assert!(err.contains("mixed fleet"), "{err}");
    }

    #[test]
    fn run_fleet_handles_mixed_fleets_and_grid_schedulers() {
        for kind in ["greedy", "lazy", "rsc", "set-once", "hef"] {
            let mut s = Scenario::default();
            s.set("sensors", "10").unwrap();
            s.set("targets", "2").unwrap();
            s.set("region", "100").unwrap();
            s.set("radius", "60").unwrap();
            s.set("battery", "30,60").unwrap();
            s.set("solar_eff", "1,1,0.5").unwrap();
            s.set("scheduler", kind).unwrap();
            let outcome = s.run_fleet().unwrap();
            assert!(outcome.schedule.is_feasible(&outcome.grid), "{kind}");
            assert!(
                outcome.average <= outcome.bound + 1e-9,
                "{kind}: {} > {}",
                outcome.average,
                outcome.bound
            );
            let text = outcome.to_string();
            assert!(text.contains("fleet grid"), "{kind}");
        }
        // The homogeneous-only baselines refuse the fleet path.
        let mut s = Scenario::default();
        s.set("battery", "30,60").unwrap();
        s.set("scheduler", "static").unwrap();
        assert!(s.run_fleet().unwrap_err().contains("fleet"));
    }

    #[test]
    fn grid_schedulers_work_on_homogeneous_scenarios_too() {
        let mut s = Scenario::default();
        s.set("sensors", "9").unwrap();
        s.set("targets", "2").unwrap();
        s.set("scheduler", "rsc").unwrap();
        assert!(s.scheduler.is_grid_scheduler());
        // run() refuses and points at the grid path...
        assert!(s.run().unwrap_err().contains("fleet grid"));
        // ...which synthesises a uniform fleet from the legacy cycle keys.
        let outcome = s.run_fleet().unwrap();
        assert_eq!(outcome.grid.hyperperiod(), 4);
        assert!(outcome.schedule.is_feasible(&outcome.grid));
    }

    #[test]
    fn build_matches_run() {
        let s = Scenario::parse("sensors = 15\ntargets = 2\nregion = 150\nradius = 50\n").unwrap();
        let built = s.build().unwrap();
        assert_eq!(built.cycle.slots_per_period(), 4);
        assert_eq!(built.periods, built.problem.periods());
        let schedule = greedy_schedule(&built.problem);
        let outcome = s.run().unwrap();
        assert_eq!(
            built.problem.average_utility_per_target_slot(&schedule),
            outcome.average,
            "build() + greedy must reproduce run() exactly"
        );
    }
}
