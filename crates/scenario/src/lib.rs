//! Scenario files: declarative scheduling runs for the `cool` CLI and the
//! `cool-serve` daemon.
//!
//! A scenario is a tiny `key = value` text format (comments with `#`)
//! describing a deployment, a utility, a charging pattern and a scheduler;
//! [`Scenario::parse`] reads it, [`Scenario::build`] materialises the
//! [`Problem`] instance for any scheduler to consume, and
//! [`Scenario::run`] executes the scenario's own scheduler and returns a
//! [`ScenarioOutcome`] the CLI renders. [`Scenario::canonical`] renders a
//! normal form used as the content-addressed cache key by the serving
//! layer. Example:
//!
//! ```text
//! # 100 sensors watching 5 targets through a sunny day
//! sensors            = 100
//! targets            = 5
//! detection_p        = 0.4
//! discharge_minutes  = 15
//! recharge_minutes   = 45
//! hours              = 12
//! region             = 500
//! radius             = 100
//! seed               = 7
//! scheduler          = greedy
//! ```

use cool_common::{SeedSequence, Table};
use cool_core::baselines::{random_schedule, round_robin_schedule, static_schedule};
use cool_core::bounds::single_target_upper_bound_with_budget;
use cool_core::greedy::{greedy_schedule, greedy_schedule_lazy};
use cool_core::instances::geometric_multi_target;
use cool_core::problem::Problem;
use cool_core::schedule::PeriodSchedule;
use cool_energy::ChargeCycle;
use cool_geometry::Rect;
use cool_utility::{AnyUtility, SumUtility};
use std::fmt;
use std::str::FromStr;

/// Which scheduling algorithm a scenario runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Greedy hill-climbing (Algorithm 1), naive implementation.
    #[default]
    Greedy,
    /// Lazy (CELF) greedy — identical output, faster.
    Lazy,
    /// Round-robin baseline.
    RoundRobin,
    /// Uniform random baseline.
    Random,
    /// Everyone-in-slot-0 baseline.
    Static,
}

impl FromStr for SchedulerKind {
    type Err = ScenarioError;

    fn from_str(s: &str) -> Result<Self, ScenarioError> {
        match s {
            "greedy" => Ok(SchedulerKind::Greedy),
            "lazy" => Ok(SchedulerKind::Lazy),
            "round-robin" | "round_robin" => Ok(SchedulerKind::RoundRobin),
            "random" => Ok(SchedulerKind::Random),
            "static" => Ok(SchedulerKind::Static),
            other => Err(ScenarioError::BadValue {
                key: "scheduler".into(),
                value: other.into(),
                expected: "greedy | lazy | round-robin | random | static".into(),
            }),
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SchedulerKind::Greedy => "greedy",
            SchedulerKind::Lazy => "lazy",
            SchedulerKind::RoundRobin => "round-robin",
            SchedulerKind::Random => "random",
            SchedulerKind::Static => "static",
        };
        f.write_str(s)
    }
}

/// Error parsing a scenario file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioError {
    /// A line was not `key = value` or a comment.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// An unknown key.
    UnknownKey {
        /// The key.
        key: String,
    },
    /// A value failed to parse or was out of range.
    BadValue {
        /// The key.
        key: String,
        /// The raw value.
        value: String,
        /// What would have been accepted.
        expected: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::BadLine { line, text } => {
                write!(f, "line {line}: expected `key = value`, got `{text}`")
            }
            ScenarioError::UnknownKey { key } => write!(f, "unknown key `{key}`"),
            ScenarioError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "bad value `{value}` for `{key}` (expected {expected})")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A declarative scheduling run.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Number of sensors `n`.
    pub sensors: usize,
    /// Number of targets `m`.
    pub targets: usize,
    /// Per-sensor detection probability `p`.
    pub detection_p: f64,
    /// Discharge time `T_d` in minutes.
    pub discharge_minutes: f64,
    /// Recharge time `T_r` in minutes.
    pub recharge_minutes: f64,
    /// Working time in hours.
    pub hours: f64,
    /// Square region side length.
    pub region: f64,
    /// Sensing radius.
    pub radius: f64,
    /// Communication radius for the `cool audit` connectivity lint; `0`
    /// (the default) disables the check.
    pub comms_radius: f64,
    /// Root random seed.
    pub seed: u64,
    /// Scheduler to run.
    pub scheduler: SchedulerKind,
}

impl Default for Scenario {
    /// The paper's testbed setting: 100 sensors, 5 targets, `p = 0.4`,
    /// sunny cycle, 12-hour day.
    fn default() -> Self {
        Scenario {
            sensors: 100,
            targets: 5,
            detection_p: 0.4,
            discharge_minutes: 15.0,
            recharge_minutes: 45.0,
            hours: 12.0,
            region: 500.0,
            radius: 100.0,
            comms_radius: 0.0,
            seed: 2011,
            scheduler: SchedulerKind::Greedy,
        }
    }
}

/// A scenario materialised into a schedulable instance: the problem, its
/// charging cycle, and the horizon in whole periods.
#[derive(Clone, Debug)]
pub struct BuiltScenario {
    /// The instance any scheduler in `cool-core` accepts.
    pub problem: Problem<SumUtility>,
    /// The derived charging cycle.
    pub cycle: ChargeCycle,
    /// Whole charging periods in the working time (at least 1).
    pub periods: usize,
}

impl Scenario {
    /// Parses a scenario file; unspecified keys keep their defaults.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] for malformed lines, unknown keys, or
    /// out-of-range values.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let mut scenario = Scenario::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ScenarioError::BadLine {
                    line: idx + 1,
                    text: raw.trim().into(),
                });
            };
            scenario.set(key.trim(), value.trim())?;
        }
        Ok(scenario)
    }

    /// Applies one `key = value` override (also used for CLI `--set`).
    ///
    /// # Errors
    ///
    /// As [`Scenario::parse`].
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), ScenarioError> {
        fn num<T: FromStr>(key: &str, value: &str, expected: &str) -> Result<T, ScenarioError> {
            value.parse().map_err(|_| ScenarioError::BadValue {
                key: key.into(),
                value: value.into(),
                expected: expected.into(),
            })
        }
        match key {
            "sensors" => {
                self.sensors = num(key, value, "a positive integer")?;
                if self.sensors == 0 {
                    return Err(ScenarioError::BadValue {
                        key: key.into(),
                        value: value.into(),
                        expected: "a positive integer".into(),
                    });
                }
            }
            "targets" => {
                self.targets = num(key, value, "a positive integer")?;
                if self.targets == 0 {
                    return Err(ScenarioError::BadValue {
                        key: key.into(),
                        value: value.into(),
                        expected: "a positive integer".into(),
                    });
                }
            }
            "detection_p" => {
                self.detection_p = num(key, value, "a probability in [0, 1]")?;
                if !(0.0..=1.0).contains(&self.detection_p) {
                    return Err(ScenarioError::BadValue {
                        key: key.into(),
                        value: value.into(),
                        expected: "a probability in [0, 1]".into(),
                    });
                }
            }
            "discharge_minutes" => self.discharge_minutes = num(key, value, "minutes > 0")?,
            "recharge_minutes" => self.recharge_minutes = num(key, value, "minutes > 0")?,
            "hours" => self.hours = num(key, value, "hours > 0")?,
            "region" => self.region = num(key, value, "a side length > 0")?,
            "radius" => self.radius = num(key, value, "a radius > 0")?,
            "comms_radius" => {
                self.comms_radius = num(key, value, "a radius >= 0")?;
                if !self.comms_radius.is_finite() || self.comms_radius < 0.0 {
                    return Err(ScenarioError::BadValue {
                        key: key.into(),
                        value: value.into(),
                        expected: "a radius >= 0".into(),
                    });
                }
            }
            "seed" => self.seed = num(key, value, "an unsigned integer")?,
            "scheduler" => self.scheduler = value.parse()?,
            other => return Err(ScenarioError::UnknownKey { key: other.into() }),
        }
        Ok(())
    }

    /// A template scenario file with the defaults spelled out.
    pub fn template() -> String {
        let d = Scenario::default();
        format!(
            "# cool scheduling scenario\n\
             sensors            = {}\n\
             targets            = {}\n\
             detection_p        = {}\n\
             discharge_minutes  = {}\n\
             recharge_minutes   = {}\n\
             hours              = {}\n\
             region             = {}\n\
             radius             = {}\n\
             comms_radius       = {}   # 0 disables the connectivity lint\n\
             seed               = {}\n\
             scheduler          = {}   # greedy | lazy | round-robin | random | static\n",
            d.sensors,
            d.targets,
            d.detection_p,
            d.discharge_minutes,
            d.recharge_minutes,
            d.hours,
            d.region,
            d.radius,
            d.comms_radius,
            d.seed,
            d.scheduler
        )
    }

    /// The canonical normal form of this scenario: one `key=value` per
    /// line, fixed key order, no comments or whitespace variation. Two
    /// scenario texts that parse to the same [`Scenario`] always
    /// canonicalise identically, so this string (not the raw input) is the
    /// right content-addressed cache key.
    pub fn canonical(&self) -> String {
        format!(
            "sensors={}\ntargets={}\ndetection_p={}\ndischarge_minutes={}\n\
             recharge_minutes={}\nhours={}\nregion={}\nradius={}\ncomms_radius={}\nseed={}\n\
             scheduler={}\n",
            self.sensors,
            self.targets,
            self.detection_p,
            self.discharge_minutes,
            self.recharge_minutes,
            self.hours,
            self.region,
            self.radius,
            self.comms_radius,
            self.seed,
            self.scheduler
        )
    }

    /// Materialises the scenario into a [`Problem`] without running any
    /// scheduler — the entry point for callers (like `cool-serve`) that
    /// choose the algorithm themselves.
    ///
    /// # Errors
    ///
    /// Returns a rendered error string for invalid cycle parameters (e.g. a
    /// non-integral ρ) or degenerate horizons.
    pub fn build(&self) -> Result<BuiltScenario, String> {
        let cycle = ChargeCycle::from_minutes(self.discharge_minutes, self.recharge_minutes)
            .map_err(|e| e.to_string())?;
        let periods = cycle.periods_in_hours(self.hours).max(1);

        let seeds = SeedSequence::new(self.seed);
        let mut rng = seeds.nth_rng(0);
        let (utility, _positions, _targets) = geometric_multi_target(
            Rect::square(self.region),
            self.sensors,
            self.targets,
            self.radius,
            self.detection_p,
            &mut rng,
        );
        let problem = Problem::new(utility, cycle, periods).map_err(|e| e.to_string())?;
        Ok(BuiltScenario {
            problem,
            cycle,
            periods,
        })
    }

    /// Executes the scenario with its own `scheduler` selection.
    ///
    /// # Errors
    ///
    /// As [`Scenario::build`], plus an infeasible-schedule report if a
    /// scheduler misbehaves.
    pub fn run(&self) -> Result<ScenarioOutcome, String> {
        let built = self.build()?;
        let BuiltScenario { problem, cycle, .. } = &built;
        let seeds = SeedSequence::new(self.seed);

        let schedule = match self.scheduler {
            SchedulerKind::Greedy => greedy_schedule(problem),
            SchedulerKind::Lazy => greedy_schedule_lazy(problem),
            SchedulerKind::RoundRobin => round_robin_schedule(problem),
            SchedulerKind::Random => random_schedule(problem, &mut seeds.nth_rng(1)),
            SchedulerKind::Static => static_schedule(problem),
        };
        if !schedule.is_feasible(*cycle) {
            return Err("scheduler produced an infeasible schedule".into());
        }

        let average = problem.average_utility_per_target_slot(&schedule);
        let bound = self.average_bound(problem, *cycle);
        Ok(ScenarioOutcome {
            scenario: self.clone(),
            cycle: *cycle,
            schedule,
            average,
            bound,
        })
    }

    /// The per-target-averaged optimum upper bound for this scenario's
    /// instance (§VI-B closed form per detection part, 1.0 otherwise).
    pub fn average_bound(&self, problem: &Problem<SumUtility>, cycle: ChargeCycle) -> f64 {
        let t = cycle.slots_per_period();
        let budget = cycle.active_slots_per_period();
        let bounds: Vec<f64> = problem
            .utility()
            .parts()
            .iter()
            .map(|part| match part {
                AnyUtility::Detection(d) => single_target_upper_bound_with_budget(
                    d.coverage().len().max(1),
                    t,
                    budget,
                    self.detection_p,
                ),
                _ => 1.0,
            })
            .collect();
        bounds.iter().sum::<f64>() / bounds.len() as f64
    }
}

/// The result of running a [`Scenario`].
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The scenario that produced this outcome.
    pub scenario: Scenario,
    /// The derived charging cycle.
    pub cycle: ChargeCycle,
    /// The produced (feasible) schedule.
    pub schedule: PeriodSchedule,
    /// Average utility per target per slot.
    pub average: f64,
    /// Per-target-averaged optimum upper bound.
    pub bound: f64,
}

impl fmt::Display for ScenarioOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scenario: {} sensors, {} targets, p = {}, {} scheduler",
            self.scenario.sensors,
            self.scenario.targets,
            self.scenario.detection_p,
            self.scenario.scheduler
        )?;
        writeln!(f, "cycle:    {}", self.cycle)?;
        writeln!(
            f,
            "horizon:  {} h = {} periods",
            self.scenario.hours,
            self.cycle.periods_in_hours(self.scenario.hours).max(1)
        )?;
        writeln!(f)?;
        let mut table = Table::new(["metric", "value"]);
        table.row([
            "avg utility / target / slot",
            &format!("{:.6}", self.average),
        ]);
        table.row(["optimum upper bound", &format!("{:.6}", self.bound)]);
        table.row([
            "fraction of bound",
            &format!("{:.2}%", self.average / self.bound * 100.0),
        ]);
        write!(f, "{table}")?;
        writeln!(f)?;
        writeln!(f, "per-slot active counts (one period):")?;
        for t in 0..self.schedule.slots_per_period() {
            writeln!(
                f,
                "  t{t}: {:>4} sensors",
                self.schedule.active_set(t).len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_round_trips() {
        let template = Scenario::template();
        let parsed = Scenario::parse(&template).unwrap();
        assert_eq!(parsed, Scenario::default());
    }

    #[test]
    fn parse_with_comments_and_overrides() {
        let s =
            Scenario::parse("# comment\n\nsensors = 10  # trailing comment\nscheduler = lazy\n")
                .unwrap();
        assert_eq!(s.sensors, 10);
        assert_eq!(s.scheduler, SchedulerKind::Lazy);
        assert_eq!(s.targets, Scenario::default().targets);
    }

    #[test]
    fn parse_errors_are_specific() {
        assert!(matches!(
            Scenario::parse("nonsense line"),
            Err(ScenarioError::BadLine { line: 1, .. })
        ));
        assert!(matches!(
            Scenario::parse("volume = 11"),
            Err(ScenarioError::UnknownKey { .. })
        ));
        assert!(matches!(
            Scenario::parse("detection_p = 1.5"),
            Err(ScenarioError::BadValue { .. })
        ));
        assert!(matches!(
            Scenario::parse("sensors = 0"),
            Err(ScenarioError::BadValue { .. })
        ));
        assert!(matches!(
            Scenario::parse("scheduler = quantum"),
            Err(ScenarioError::BadValue { .. })
        ));
        let err = Scenario::parse("scheduler = quantum").unwrap_err();
        assert!(err.to_string().contains("greedy"));
    }

    #[test]
    fn run_small_scenario() {
        let mut s = Scenario::default();
        s.set("sensors", "20").unwrap();
        s.set("targets", "3").unwrap();
        s.set("region", "100").unwrap();
        s.set("radius", "40").unwrap();
        let outcome = s.run().unwrap();
        assert!(outcome.average > 0.0 && outcome.average <= 1.0);
        assert!(outcome.average <= outcome.bound + 1e-9);
        assert!(outcome.schedule.is_feasible(outcome.cycle));
        let text = outcome.to_string();
        assert!(text.contains("avg utility"));
    }

    #[test]
    fn fast_recharge_bound_dominates() {
        // ρ ≤ 1 regression: the bound must account for multi-slot activity.
        let mut s = Scenario::default();
        s.set("sensors", "30").unwrap();
        s.set("targets", "4").unwrap();
        s.set("detection_p", "0.3").unwrap();
        s.set("discharge_minutes", "45").unwrap();
        s.set("recharge_minutes", "15").unwrap();
        s.set("region", "200").unwrap();
        s.set("radius", "60").unwrap();
        let outcome = s.run().unwrap();
        assert!(
            outcome.average <= outcome.bound + 1e-9,
            "utility {} exceeded bound {}",
            outcome.average,
            outcome.bound
        );
    }

    #[test]
    fn all_schedulers_run() {
        for kind in ["greedy", "lazy", "round-robin", "random", "static"] {
            let mut s = Scenario::default();
            s.set("sensors", "12").unwrap();
            s.set("targets", "2").unwrap();
            s.set("scheduler", kind).unwrap();
            let outcome = s.run().unwrap();
            assert!(outcome.schedule.is_feasible(outcome.cycle), "{kind}");
        }
    }

    #[test]
    fn rejects_non_integral_rho() {
        let mut s = Scenario::default();
        s.set("recharge_minutes", "40").unwrap(); // 40/15 not integral
        let err = s.run().unwrap_err();
        assert!(err.contains("integer"));
    }

    #[test]
    fn canonical_ignores_surface_syntax() {
        let a = Scenario::parse("sensors = 10   # c\n\nseed=7\n").unwrap();
        let b = Scenario::parse("seed = 7\nsensors = 10\n").unwrap();
        assert_eq!(a.canonical(), b.canonical());
        let c = Scenario::parse("sensors = 11\nseed = 7\n").unwrap();
        assert_ne!(a.canonical(), c.canonical());
        // Every field participates in the normal form.
        for key in [
            "sensors",
            "targets",
            "detection_p",
            "discharge_minutes",
            "recharge_minutes",
            "hours",
            "region",
            "radius",
            "comms_radius",
            "seed",
            "scheduler",
        ] {
            assert!(a.canonical().contains(&format!("{key}=")), "{key} missing");
        }
    }

    #[test]
    fn comms_radius_parses_and_rejects_negatives() {
        let s = Scenario::parse("comms_radius = 150\n").unwrap();
        assert_eq!(s.comms_radius, 150.0);
        assert!(Scenario::parse("comms_radius = -1\n").is_err());
    }

    #[test]
    fn build_matches_run() {
        let s = Scenario::parse("sensors = 15\ntargets = 2\nregion = 150\nradius = 50\n").unwrap();
        let built = s.build().unwrap();
        assert_eq!(built.cycle.slots_per_period(), 4);
        assert_eq!(built.periods, built.problem.periods());
        let schedule = greedy_schedule(&built.problem);
        let outcome = s.run().unwrap();
        assert_eq!(
            built.problem.average_utility_per_target_slot(&schedule),
            outcome.average,
            "build() + greedy must reproduce run() exactly"
        );
    }
}
