//! The JSON request/response protocol: body parsing, the mandatory
//! `cool-lint` pre-flight, algorithm dispatch into `cool-core`, and
//! deterministic response rendering.
//!
//! Response bodies for successful schedule computations are **pure
//! functions of (scenario, algorithm)** — no timestamps, request ids, or
//! other per-call variation — which is what makes caching them at the body
//! level sound: a cache hit is byte-identical to a cold compute.

use crate::cache::CacheKey;
use cool_common::json::{self, escape, Value};
use cool_common::{CoolCode, SeedSequence};
use cool_core::greedy::greedy_schedule_lazy;
use cool_core::horizon::greedy_horizon;
use cool_core::lp::LpScheduler;
use cool_lint::{audit_scenario_text, lint_scenario_text, AuditOptions};
use cool_scenario::{Scenario, ScenarioError};
use cool_utility::{Evaluator, UtilityFunction};
use std::fmt::Write as _;

/// Default rounding passes for `lp-rounding` when the request omits
/// `rounding_trials` (matches the experiment harness default).
const DEFAULT_ROUNDING_TRIALS: usize = 16;
/// Upper bound on client-requested rounding passes.
const MAX_ROUNDING_TRIALS: usize = 256;

/// The algorithm selector of a schedule request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Lazy (CELF) greedy — the paper's Algorithm 1, ½-approximate.
    Greedy,
    /// Explicit alias for the lazy greedy. Same computation as
    /// [`Algorithm::Greedy`] (identical schedules), but a distinct
    /// selector — and therefore a distinct cache entry — so clients can
    /// pin the lazy path by name and the two stay separately observable.
    GreedyLazy,
    /// LP relaxation + randomised rounding (§IV-A.1).
    LpRounding {
        /// Independent rounding passes; the best schedule wins.
        trials: usize,
    },
    /// Whole-horizon greedy (per-slot activation over `L` slots).
    Horizon,
}

impl Algorithm {
    /// Parses the request's `algorithm` string plus optional
    /// `rounding_trials`.
    ///
    /// # Errors
    ///
    /// `COOL-E019` for unknown names or out-of-range trial counts.
    pub fn from_request(name: &str, trials: Option<f64>) -> Result<Self, ApiError> {
        let trials = match trials {
            None => DEFAULT_ROUNDING_TRIALS,
            Some(t) if t.fract() == 0.0 && (1.0..=MAX_ROUNDING_TRIALS as f64).contains(&t) => {
                t as usize
            }
            Some(t) => {
                return Err(ApiError::malformed(format!(
                    "rounding_trials must be an integer in 1..={MAX_ROUNDING_TRIALS}, got {t}"
                )))
            }
        };
        match name {
            "greedy" => Ok(Algorithm::Greedy),
            "greedy-lazy" | "greedy_lazy" | "lazy" => Ok(Algorithm::GreedyLazy),
            "lp-rounding" | "lp_rounding" | "lp" => Ok(Algorithm::LpRounding { trials }),
            "horizon" => Ok(Algorithm::Horizon),
            other => Err(ApiError::malformed(format!(
                "unknown algorithm `{other}` (expected greedy | greedy-lazy | lp-rounding | horizon)"
            ))),
        }
    }

    /// The cache-key selector, parameters included.
    #[must_use]
    pub fn selector(&self) -> String {
        match self {
            Algorithm::Greedy => "greedy".into(),
            Algorithm::GreedyLazy => "greedy-lazy".into(),
            Algorithm::LpRounding { trials } => format!("lp-rounding:{trials}"),
            Algorithm::Horizon => "horizon".into(),
        }
    }

    /// The plain name used in response bodies.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Greedy => "greedy",
            Algorithm::GreedyLazy => "greedy-lazy",
            Algorithm::LpRounding { .. } => "lp-rounding",
            Algorithm::Horizon => "horizon",
        }
    }
}

/// A COOL-coded service failure, carrying the HTTP status to respond with.
#[derive(Clone, Debug)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// The stable diagnostic code.
    pub code: CoolCode,
    /// Human-readable description.
    pub message: String,
    /// The lint report JSON, when the failure came from the pre-flight.
    pub lint_json: Option<String>,
}

impl ApiError {
    /// `COOL-E019` / HTTP 400 — unparsable or incomplete request.
    pub fn malformed(message: impl Into<String>) -> Self {
        ApiError {
            status: 400,
            code: CoolCode::MalformedRequest,
            message: message.into(),
            lint_json: None,
        }
    }

    /// `COOL-E017` / HTTP 408 — wall-clock budget exhausted.
    #[must_use]
    pub fn timeout(budget_ms: u128) -> Self {
        ApiError {
            status: 408,
            code: CoolCode::RequestTimeout,
            message: format!("request exceeded its {budget_ms} ms wall-clock budget"),
            lint_json: None,
        }
    }

    /// `COOL-E018` / HTTP 429 — bounded queue full, request shed.
    #[must_use]
    pub fn overloaded() -> Self {
        ApiError {
            status: 429,
            code: CoolCode::ServiceOverloaded,
            message: "work queue is full; retry with backoff".into(),
            lint_json: None,
        }
    }

    /// The JSON error envelope.
    #[must_use]
    pub fn body(&self) -> String {
        let mut out = format!(
            "{{\"status\":\"error\",\"code\":{},\"name\":{},\"message\":{}",
            escape(self.code.as_str()),
            escape(self.code.name()),
            escape(&self.message)
        );
        if let Some(lint) = &self.lint_json {
            let _ = write!(out, ",\"lint\":{lint}");
        }
        out.push('}');
        out
    }
}

impl From<ScenarioError> for ApiError {
    fn from(e: ScenarioError) -> Self {
        let code = match &e {
            ScenarioError::BadLine { .. } => CoolCode::ScenarioLineMalformed,
            ScenarioError::UnknownKey { .. } | ScenarioError::BadValue { .. } => {
                CoolCode::ScenarioFieldInvalid
            }
        };
        ApiError {
            status: 422,
            code,
            message: e.to_string(),
            lint_json: None,
        }
    }
}

/// One unit of schedule work: scenario text, `--set`-style overrides, and
/// the algorithm selector.
#[derive(Clone, Debug)]
pub struct ScheduleItem {
    /// The raw scenario text as sent by the client.
    pub scenario_text: String,
    /// `key = value` overrides applied after parsing, in order.
    pub overrides: Vec<(String, String)>,
    /// Selected algorithm.
    pub algorithm: Algorithm,
    /// When `true`, the pre-flight runs the full `cool audit` bundle
    /// (abstract energy proof, dominance/dead-slot/connectivity passes)
    /// over the resolved scenario instead of the scenario lint alone.
    pub audit: bool,
}

/// A parsed `/v1/schedule` body: one item, or a batch.
#[derive(Clone, Debug)]
pub enum ScheduleBody {
    /// A single request object.
    Single(Box<ScheduleItem>),
    /// `{"batch": [...]}` — computed concurrently, answered together.
    Batch(Vec<ScheduleItem>),
}

fn item_from_value(v: &Value) -> Result<ScheduleItem, ApiError> {
    let scenario_text = v
        .get("scenario")
        .and_then(Value::as_str)
        .ok_or_else(|| ApiError::malformed("missing required string field `scenario`"))?
        .to_string();
    let algorithm_name = match v.get("algorithm") {
        None => "greedy",
        Some(a) => a
            .as_str()
            .ok_or_else(|| ApiError::malformed("`algorithm` must be a string"))?,
    };
    let trials = match v.get("rounding_trials") {
        None => None,
        Some(t) => Some(
            t.as_f64()
                .ok_or_else(|| ApiError::malformed("`rounding_trials` must be a number"))?,
        ),
    };
    let algorithm = Algorithm::from_request(algorithm_name, trials)?;
    let audit = match v.get("audit") {
        None => false,
        Some(a) => a
            .as_bool()
            .ok_or_else(|| ApiError::malformed("`audit` must be a boolean"))?,
    };
    let mut overrides = Vec::new();
    if let Some(set) = v.get("set") {
        let members = set
            .as_object()
            .ok_or_else(|| ApiError::malformed("`set` must be an object of key/value pairs"))?;
        for (key, value) in members {
            let rendered = match value {
                Value::String(s) => s.clone(),
                Value::Number(n) => format!("{n}"),
                Value::Bool(b) => format!("{b}"),
                _ => {
                    return Err(ApiError::malformed(format!(
                        "`set.{key}` must be a string, number, or boolean"
                    )))
                }
            };
            overrides.push((key.clone(), rendered));
        }
    }
    Ok(ScheduleItem {
        scenario_text,
        overrides,
        algorithm,
        audit,
    })
}

/// Parses a `/v1/schedule` request body.
///
/// # Errors
///
/// `COOL-E019` for invalid JSON, missing fields, bad field types, or an
/// empty/oversized batch.
pub fn parse_schedule_body(body: &[u8]) -> Result<ScheduleBody, ApiError> {
    let text =
        std::str::from_utf8(body).map_err(|_| ApiError::malformed("request body is not UTF-8"))?;
    let doc =
        json::parse(text).map_err(|e| ApiError::malformed(format!("invalid JSON body: {e}")))?;
    if let Some(batch) = doc.get("batch") {
        let items = batch
            .as_array()
            .ok_or_else(|| ApiError::malformed("`batch` must be an array"))?;
        if items.is_empty() {
            return Err(ApiError::malformed("`batch` must not be empty"));
        }
        if items.len() > 256 {
            return Err(ApiError::malformed("`batch` is limited to 256 items"));
        }
        let parsed: Result<Vec<ScheduleItem>, ApiError> =
            items.iter().map(item_from_value).collect();
        Ok(ScheduleBody::Batch(parsed?))
    } else {
        Ok(ScheduleBody::Single(Box::new(item_from_value(&doc)?)))
    }
}

/// Parses a `/v1/lint` body (`{"scenario": "..."}`).
///
/// # Errors
///
/// `COOL-E019` when the body is not JSON or lacks the field.
pub fn parse_lint_body(body: &[u8]) -> Result<String, ApiError> {
    let text =
        std::str::from_utf8(body).map_err(|_| ApiError::malformed("request body is not UTF-8"))?;
    let doc =
        json::parse(text).map_err(|e| ApiError::malformed(format!("invalid JSON body: {e}")))?;
    doc.get("scenario")
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| ApiError::malformed("missing required string field `scenario`"))
}

/// Resolves an item into a final [`Scenario`] (parse, then overrides) and
/// runs the mandatory lint pre-flight on both the raw text and — when
/// overrides changed anything — the canonical final form.
///
/// Returns the scenario plus the pre-flight's warnings (errors reject).
///
/// # Errors
///
/// Scenario parse errors map to `COOL-E007`/`COOL-E008` (HTTP 422); lint
/// errors return 422 with the full report attached.
pub fn resolve_and_lint(item: &ScheduleItem) -> Result<(Scenario, String), ApiError> {
    let mut scenario = Scenario::parse(&item.scenario_text)?;
    for (key, value) in &item.overrides {
        scenario.set(key.trim(), value.trim())?;
    }

    let raw_report = lint_scenario_text(&item.scenario_text, "request");
    let mut report = if raw_report.is_clean() && !item.overrides.is_empty() {
        // Overrides may re-introduce semantic problems (e.g. a non-integral
        // ρ) that the raw text did not have; lint the final normal form.
        lint_scenario_text(&scenario.canonical(), "request+overrides")
    } else {
        raw_report
    };
    if item.audit && report.is_clean() {
        // Opt-in deep pre-flight: the whole `cool audit` bundle over the
        // resolved normal form, under the deployment contract (nodes ship
        // fully charged). Deterministic, so cache soundness is unaffected.
        report = audit_scenario_text(
            &scenario.canonical(),
            "request+audit",
            &AuditOptions::default(),
        )
        .report;
    }
    if !report.is_clean() {
        let code = report
            .diagnostics()
            .iter()
            .find(|d| d.code.is_error())
            .map_or(CoolCode::ScenarioFieldInvalid, |d| d.code);
        return Err(ApiError {
            status: 422,
            code,
            message: "scenario rejected by the cool-lint pre-flight".into(),
            lint_json: Some(report.to_json()),
        });
    }

    let mut warnings = String::from("[");
    for (i, d) in report.diagnostics().iter().enumerate() {
        if i > 0 {
            warnings.push(',');
        }
        let _ = write!(
            warnings,
            "{{\"code\":{},\"name\":{},\"message\":{}}}",
            escape(d.code.as_str()),
            escape(d.code.name()),
            escape(&d.message)
        );
    }
    warnings.push(']');
    Ok((scenario, warnings))
}

/// The cache key for (scenario, algorithm).
#[must_use]
pub fn cache_key(scenario: &Scenario, algorithm: &Algorithm) -> CacheKey {
    CacheKey::new(scenario.canonical(), algorithm.selector())
}

fn render_f64_array(values: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

fn render_usize_array(values: impl Iterator<Item = usize>) -> String {
    let mut out = String::from("[");
    for (i, v) in values.enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

/// Computes the response body for one (scenario, algorithm) pair.
///
/// The result is deterministic: randomised algorithms derive their RNG
/// from the scenario seed, so identical requests always produce identical
/// bytes (the cache-soundness contract).
///
/// # Errors
///
/// Instance-construction failures surface as 422 with the core error
/// message (the lint pre-flight makes these rare).
pub fn compute_response(
    scenario: &Scenario,
    algorithm: &Algorithm,
    lint_warnings: &str,
) -> Result<String, ApiError> {
    let built = scenario.build().map_err(|message| ApiError {
        status: 422,
        code: CoolCode::ScenarioFieldInvalid,
        message,
        lint_json: None,
    })?;
    let problem = &built.problem;
    let cycle = built.cycle;
    let targets = problem.utility().n_targets().max(1);
    let bound = scenario.average_bound(problem, cycle);
    let key = cache_key(scenario, algorithm);

    let mut out = format!(
        "{{\"status\":\"ok\",\"algorithm\":{},\"scenario_hash\":\"{:016x}\",",
        escape(algorithm.name()),
        key.hash
    );
    let _ = write!(
        out,
        "\"cycle\":{{\"slots_per_period\":{},\"rho\":{},\"periods\":{}}},",
        cycle.slots_per_period(),
        cycle.rho(),
        built.periods
    );

    let average = match algorithm {
        Algorithm::Greedy | Algorithm::GreedyLazy | Algorithm::LpRounding { .. } => {
            let (schedule, lp_extra) = match algorithm {
                Algorithm::Greedy | Algorithm::GreedyLazy => (greedy_schedule_lazy(problem), None),
                Algorithm::LpRounding { trials } => {
                    // RNG stream 2: streams 0/1 are taken by instance
                    // generation and the random baseline, so rounding stays
                    // independent of both.
                    let mut rng = SeedSequence::new(scenario.seed).nth_rng(2);
                    let outcome = LpScheduler::new(*trials)
                        .schedule(problem, &mut rng)
                        .map_err(|e| ApiError {
                            status: 422,
                            code: CoolCode::ScenarioFieldInvalid,
                            message: format!("LP relaxation failed: {e}"),
                            lint_json: None,
                        })?;
                    (
                        outcome.schedule,
                        Some((outcome.lp_value, outcome.rounded_value, *trials)),
                    )
                }
                Algorithm::Horizon => unreachable!("outer match arm"),
            };
            let average = problem.average_utility_per_target_slot(&schedule);
            let t_slots = schedule.slots_per_period();
            // One evaluator reused across slots (reset() clears the arena in
            // place): bitwise the same as per-slot `eval`, which builds its
            // evaluator from the identical empty state, without re-allocating
            // scratch state per slot on the batch path.
            let mut slot_eval = problem.utility().evaluator();
            let per_slot_utility: Vec<f64> = (0..t_slots)
                .map(|t| {
                    slot_eval.reset();
                    for v in &schedule.active_set(t) {
                        slot_eval.insert(v);
                    }
                    slot_eval.value() / targets as f64
                })
                .collect();
            let _ = write!(
                out,
                "\"schedule\":{{\"mode\":\"period\",\"per_slot_active\":{},\"per_slot_utility\":{},\"assignment\":{}}},",
                render_usize_array((0..t_slots).map(|t| schedule.active_set(t).len())),
                render_f64_array(&per_slot_utility),
                render_usize_array(schedule.assignment().iter().copied())
            );
            if let Some((lp_value, rounded_value, trials)) = lp_extra {
                let _ = write!(
                    out,
                    "\"lp\":{{\"lp_value\":{lp_value},\"rounded_value\":{rounded_value},\"trials\":{trials}}},"
                );
            }
            average
        }
        Algorithm::Horizon => {
            let utility = problem.utility();
            let cycles = vec![cycle; problem.n_sensors()];
            let slots = problem.horizon_slots().max(1);
            let schedule = greedy_horizon(utility, &cycles, slots);
            let per_slot_active =
                render_usize_array((0..slots).map(|t| schedule.active_set(t).len()));
            let average = schedule.average_utility(utility) / targets as f64;
            let _ = write!(
                out,
                "\"schedule\":{{\"mode\":\"horizon\",\"horizon_slots\":{slots},\"per_slot_active\":{per_slot_active}}},"
            );
            average
        }
    };

    let fraction = if bound > 0.0 { average / bound } else { 1.0 };
    let _ = write!(
        out,
        "\"utility\":{{\"average_per_target_slot\":{average},\"upper_bound\":{bound},\"fraction_of_bound\":{fraction}}},"
    );
    let _ = write!(out, "\"lint\":{{\"warnings\":{lint_warnings}}}}}");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(body: &str) -> ScheduleItem {
        match parse_schedule_body(body.as_bytes()).unwrap() {
            ScheduleBody::Single(item) => *item,
            ScheduleBody::Batch(_) => panic!("expected single"),
        }
    }

    #[test]
    fn parses_single_request_with_defaults() {
        let it = item(r#"{"scenario":"sensors = 10\n"}"#);
        assert_eq!(it.algorithm, Algorithm::Greedy);
        assert!(it.overrides.is_empty());
        assert_eq!(it.scenario_text, "sensors = 10\n");
    }

    #[test]
    fn parses_algorithm_and_set_overrides() {
        let it = item(
            r#"{"scenario":"","algorithm":"lp-rounding","rounding_trials":8,"set":{"sensors":24,"scheduler":"lazy"}}"#,
        );
        assert_eq!(it.algorithm, Algorithm::LpRounding { trials: 8 });
        assert!(it
            .overrides
            .contains(&("sensors".to_string(), "24".to_string())));
    }

    #[test]
    fn parses_batches() {
        let body = r#"{"batch":[{"scenario":"a = 1"},{"scenario":"b = 2","algorithm":"horizon"}]}"#;
        match parse_schedule_body(body.as_bytes()).unwrap() {
            ScheduleBody::Batch(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[1].algorithm, Algorithm::Horizon);
            }
            ScheduleBody::Single(_) => panic!("expected batch"),
        }
    }

    #[test]
    fn rejects_bad_bodies_with_e019() {
        for body in [
            "not json",
            "{}",
            r#"{"scenario":5}"#,
            r#"{"scenario":"","algorithm":"quantum"}"#,
            r#"{"scenario":"","rounding_trials":0}"#,
            r#"{"scenario":"","set":{"k":[1]}}"#,
            r#"{"batch":[]}"#,
        ] {
            let err = parse_schedule_body(body.as_bytes()).unwrap_err();
            assert_eq!(err.code, CoolCode::MalformedRequest, "{body}");
            assert_eq!(err.status, 400, "{body}");
            assert!(err.body().contains("COOL-E019"), "{body}");
        }
    }

    #[test]
    fn lint_preflight_rejects_bad_scenarios() {
        let it = item(r#"{"scenario":"detection_p = 0.4\n"}"#);
        assert!(resolve_and_lint(&it).is_ok());
        let bad = item(r#"{"scenario":"recharge_minutes = 40\n"}"#);
        let err = resolve_and_lint(&bad).unwrap_err();
        assert_eq!(err.status, 422);
        assert_eq!(err.code, CoolCode::NonIntegralRho);
        assert!(err.body().contains("\"lint\":{"));
    }

    #[test]
    fn audit_flag_parses_and_defaults_off() {
        assert!(!item(r#"{"scenario":""}"#).audit);
        assert!(item(r#"{"scenario":"","audit":true}"#).audit);
        let err = parse_schedule_body(br#"{"scenario":"","audit":"yes"}"#).unwrap_err();
        assert_eq!(err.code, CoolCode::MalformedRequest);
    }

    #[test]
    fn audit_preflight_accepts_clean_scenarios_deterministically() {
        // Under the deployment contract (default audit options) a clean
        // scenario audits clean; the deep pre-flight must not reject it,
        // and its warning rendering must be stable across calls.
        let it = item(r#"{"scenario":"sensors = 12\n","audit":true}"#);
        let (_, warnings_a) = resolve_and_lint(&it).unwrap();
        let (_, warnings_b) = resolve_and_lint(&it).unwrap();
        assert_eq!(warnings_a, warnings_b);
    }

    #[test]
    fn audit_preflight_still_rejects_lint_errors() {
        let it = item(r#"{"scenario":"recharge_minutes = 40\n","audit":true}"#);
        let err = resolve_and_lint(&it).unwrap_err();
        assert_eq!(err.status, 422);
        assert_eq!(err.code, CoolCode::NonIntegralRho);
    }

    #[test]
    fn lint_preflight_sees_through_overrides() {
        // Raw text is clean; the override breaks ρ-integrality.
        let it = item(r#"{"scenario":"sensors = 10\n","set":{"recharge_minutes":"40"}}"#);
        let err = resolve_and_lint(&it).unwrap_err();
        assert_eq!(err.code, CoolCode::NonIntegralRho);
    }

    #[test]
    fn compute_matches_scenario_run_for_greedy() {
        let text = "sensors = 20\ntargets = 3\nregion = 120\nradius = 45\n";
        let it = item(&format!("{{\"scenario\":{}}}", escape(text)));
        let (scenario, warnings) = resolve_and_lint(&it).unwrap();
        let body = compute_response(&scenario, &it.algorithm, &warnings).unwrap();
        let expected = scenario.run().unwrap().average;
        let parsed = json::parse(&body).unwrap();
        let got = parsed
            .get("utility")
            .and_then(|u| u.get("average_per_target_slot"))
            .and_then(Value::as_f64)
            .unwrap();
        assert!(
            (got - expected).abs() < 1e-12,
            "service {got} vs CLI {expected}"
        );
        assert_eq!(
            parsed.get("status").and_then(Value::as_str),
            Some("ok"),
            "{body}"
        );
    }

    #[test]
    fn compute_is_deterministic_per_algorithm() {
        let text = "sensors = 12\ntargets = 2\nregion = 100\nradius = 40\n";
        for algorithm in [
            Algorithm::Greedy,
            Algorithm::GreedyLazy,
            Algorithm::LpRounding { trials: 4 },
            Algorithm::Horizon,
        ] {
            let it = item(&format!("{{\"scenario\":{}}}", escape(text)));
            let (scenario, warnings) = resolve_and_lint(&it).unwrap();
            let a = compute_response(&scenario, &algorithm, &warnings).unwrap();
            let b = compute_response(&scenario, &algorithm, &warnings).unwrap();
            assert_eq!(a, b, "{} is not deterministic", algorithm.name());
            assert!(json::parse(&a).is_ok(), "invalid JSON from {algorithm:?}");
        }
    }

    #[test]
    fn algorithms_have_distinct_cache_selectors() {
        let s = Scenario::default();
        let keys: Vec<CacheKey> = [
            Algorithm::Greedy,
            Algorithm::GreedyLazy,
            Algorithm::LpRounding { trials: 16 },
            Algorithm::LpRounding { trials: 8 },
            Algorithm::Horizon,
        ]
        .iter()
        .map(|a| cache_key(&s, a))
        .collect();
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j]);
            }
        }
    }

    #[test]
    fn greedy_lazy_parses_and_matches_greedy_schedule() {
        for name in ["greedy-lazy", "greedy_lazy", "lazy"] {
            let it = item(&format!("{{\"scenario\":\"\",\"algorithm\":\"{name}\"}}"));
            assert_eq!(it.algorithm, Algorithm::GreedyLazy, "{name}");
        }
        // Same scenario, distinct selectors, identical assignment.
        let text = "sensors = 16\ntargets = 2\nregion = 100\nradius = 40\n";
        let it = item(&format!("{{\"scenario\":{}}}", escape(text)));
        let (scenario, warnings) = resolve_and_lint(&it).unwrap();
        let greedy = compute_response(&scenario, &Algorithm::Greedy, &warnings).unwrap();
        let lazy = compute_response(&scenario, &Algorithm::GreedyLazy, &warnings).unwrap();
        assert_ne!(
            cache_key(&scenario, &Algorithm::Greedy),
            cache_key(&scenario, &Algorithm::GreedyLazy)
        );
        let extract = |body: &str| {
            json::parse(body)
                .unwrap()
                .get("schedule")
                .and_then(|s| s.get("assignment"))
                .map(|a| format!("{a:?}"))
                .unwrap()
        };
        assert_eq!(extract(&greedy), extract(&lazy));
        assert!(greedy.contains("\"algorithm\":\"greedy\""));
        assert!(lazy.contains("\"algorithm\":\"greedy-lazy\""));
    }

    #[test]
    fn tie_break_order_survives_response_rendering() {
        // Every sensor covers the single target identically (radius ≥
        // region diagonal), so all greedy gains tie and the response's
        // assignment is exactly the documented tie-break order: sensor v
        // takes slot v mod T. A regression guard for the serve replay of
        // the cool-core tie-break contract.
        let text = "sensors = 6\ntargets = 1\nregion = 10\nradius = 1000\n";
        let it = item(&format!("{{\"scenario\":{}}}", escape(text)));
        let (scenario, warnings) = resolve_and_lint(&it).unwrap();
        let t_slots = scenario.build().unwrap().cycle.slots_per_period();
        let expected: Vec<usize> = (0..6).map(|v| v % t_slots).collect();
        for algorithm in [Algorithm::Greedy, Algorithm::GreedyLazy] {
            let body = compute_response(&scenario, &algorithm, &warnings).unwrap();
            let assignment = json::parse(&body)
                .unwrap()
                .get("schedule")
                .and_then(|s| s.get("assignment"))
                .map(|a| format!("{a:?}"))
                .unwrap();
            assert_eq!(
                assignment,
                format!(
                    "{:?}",
                    Value::Array(expected.iter().map(|&t| Value::Number(t as f64)).collect())
                ),
                "{} tie-break drifted",
                algorithm.name()
            );
        }
    }

    #[test]
    fn error_envelope_shape() {
        let err = ApiError::timeout(500);
        let body = err.body();
        assert!(body.contains("\"code\":\"COOL-E017\""));
        assert!(body.contains("request-timeout"));
        let err = ApiError::overloaded();
        assert!(err.body().contains("COOL-E018"));
        assert_eq!(err.status, 429);
    }
}
