//! A content-addressed LRU cache for computed schedule responses.
//!
//! The paper's online setting re-solves the same deployments every working
//! period; the daemon therefore memoises the **full response body** keyed
//! by the canonical scenario text plus the algorithm selector. Keys compare
//! by full content — the stable FNV-1a digest ([`CacheKey::hash`]) is only
//! a fast-reject prefix, so hash collisions can never alias two different
//! requests to one cached response.

use cool_common::hash::StableHasher;

/// A collision-free cache key: digest for fast rejection, full canonical
/// content for equality.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheKey {
    /// Stable FNV-1a digest of (canonical scenario, algorithm).
    pub hash: u64,
    /// Canonical scenario normal form ([`cool_scenario::Scenario::canonical`]).
    pub canonical: String,
    /// Algorithm selector including its parameters, e.g. `lp-rounding:16`.
    pub algorithm: String,
}

impl CacheKey {
    /// Builds the key and its digest from the canonical scenario form and
    /// the parameterised algorithm selector.
    #[must_use]
    pub fn new(canonical: String, algorithm: String) -> Self {
        let mut hasher = StableHasher::new();
        hasher.write(canonical.as_bytes());
        hasher.write_sep();
        hasher.write(algorithm.as_bytes());
        CacheKey {
            hash: hasher.finish(),
            canonical,
            algorithm,
        }
    }
}

/// A fixed-capacity least-recently-used map.
///
/// Entries are held most-recent-first; `get` refreshes recency, `insert`
/// evicts the least recently used entry once `capacity` is exceeded. The
/// linear scan is deliberate: service caches hold at most a few hundred
/// entries, where a `Vec` beats pointer-chasing structures.
#[derive(Debug)]
pub struct LruCache<K: Eq, V> {
    capacity: usize,
    /// Most recently used first.
    entries: Vec<(K, V)>,
}

impl<K: Eq, V: Clone> LruCache<K, V> {
    /// A cache retaining at most `capacity` entries (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity: capacity.max(1),
            entries: Vec::new(),
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entry is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(idx);
        let value = entry.1.clone();
        self.entries.insert(0, entry);
        Some(value)
    }

    /// Inserts (or replaces) `key`, returning the entry evicted to make
    /// room, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(idx) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(idx);
        }
        self.entries.insert(0, (key, value));
        if self.entries.len() > self.capacity {
            self.entries.pop()
        } else {
            None
        }
    }

    /// Keys from most to least recently used (for tests/introspection).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_one_keeps_only_the_latest() {
        let mut cache = LruCache::new(1);
        assert!(cache.insert("a", 1).is_none());
        let evicted = cache.insert("b", 2);
        assert_eq!(evicted, Some(("a", 1)));
        assert_eq!(cache.get(&"a"), None);
        assert_eq!(cache.get(&"b"), Some(2));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn get_refreshes_recency() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        // Touch `a`; inserting `c` must now evict `b`.
        assert_eq!(cache.get(&"a"), Some(1));
        let evicted = cache.insert("c", 3);
        assert_eq!(evicted, Some(("b", 2)));
        assert_eq!(cache.get(&"a"), Some(1));
        assert_eq!(cache.get(&"c"), Some(3));
    }

    #[test]
    fn reinsert_replaces_without_growth() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("a", 10);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&"a"), Some(10));
    }

    #[test]
    fn replace_at_capacity_does_not_evict() {
        // Re-inserting an existing key while the cache is full must
        // replace in place: no eviction, and the other resident survives.
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert_eq!(cache.len(), cache.capacity());
        let evicted = cache.insert("a", 10);
        assert_eq!(evicted, None, "replacement must not evict");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&"a"), Some(10));
        assert_eq!(cache.get(&"b"), Some(2), "bystander entry survives");
    }

    #[test]
    fn greedy_and_greedy_lazy_selectors_are_distinct_keys() {
        // Same canonical scenario, different algorithm selector → two
        // cache entries that never alias.
        let canonical = "sensors = 10\n".to_string();
        let greedy = CacheKey::new(canonical.clone(), "greedy".into());
        let lazy = CacheKey::new(canonical, "greedy-lazy".into());
        assert_ne!(greedy, lazy);
        assert_ne!(greedy.hash, lazy.hash);
        let mut cache = LruCache::new(4);
        cache.insert(greedy.clone(), "body-greedy");
        cache.insert(lazy.clone(), "body-lazy");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&greedy), Some("body-greedy"));
        assert_eq!(cache.get(&lazy), Some("body-lazy"));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut cache = LruCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert("a", 1);
        assert_eq!(cache.get(&"a"), Some(1));
    }

    #[test]
    fn keys_report_recency_order() {
        let mut cache = LruCache::new(3);
        cache.insert(1, ());
        cache.insert(2, ());
        cache.insert(3, ());
        cache.get(&1);
        let order: Vec<i32> = cache.keys().copied().collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn cache_key_equality_is_content_not_hash() {
        let a = CacheKey::new("sensors=1\n".into(), "greedy".into());
        let b = CacheKey::new("sensors=1\n".into(), "greedy".into());
        let c = CacheKey::new("sensors=1\n".into(), "lp-rounding:16".into());
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Same concatenated bytes, different field split → different keys.
        let d = CacheKey::new("sensors=1\ngr".into(), "eedy".into());
        assert_ne!(a, d);
        assert_ne!(a.hash, d.hash, "separator keeps digests apart too");
    }
}
