//! A minimal HTTP/1.1 client over `std::net::TcpStream`, used by the smoke
//! harness, the e2e suite, `cool loadgen`, and anyone scripting the daemon
//! without curl.
//!
//! Two disciplines: [`request`] does one `Connection: close` request per
//! connection (write, read to EOF, parse), while [`ClientConn`] holds a
//! keep-alive connection and frames responses by `Content-Length`, so many
//! requests ride one TCP connection.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code, e.g. `200`.
    pub status: u16,
    /// Header name/value pairs (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// The response body as text.
    pub body: String,
}

impl Response {
    /// Case-insensitive header lookup.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let needle = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find_map(|(k, v)| (*k == needle).then_some(v.as_str()))
    }
}

fn bad_data(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Connection, transport, and response-parse failures.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> io::Result<Response> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_mins(1)))?;
    stream.set_write_timeout(Some(Duration::from_mins(1)))?;

    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Parses the raw wire bytes of one response.
///
/// # Errors
///
/// `InvalidData` for anything that is not a well-formed HTTP/1.x response.
pub fn parse_response(raw: &[u8]) -> io::Result<Response> {
    let text = std::str::from_utf8(raw).map_err(|_| bad_data("non-UTF-8 response"))?;
    // Tolerate bare-LF separators the same way the server does.
    let (head, body) = match text.split_once("\r\n\r\n") {
        Some(split) => split,
        None => text
            .split_once("\n\n")
            .ok_or_else(|| bad_data("missing header/body separator"))?,
    };
    let mut lines = head.lines().map(str::trim_end);
    let status_line = lines.next().ok_or_else(|| bad_data("empty response"))?;
    let mut parts = status_line.split_whitespace();
    let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
        return Err(bad_data("malformed status line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad_data("unsupported HTTP version"));
    }
    let status: u16 = code.parse().map_err(|_| bad_data("non-numeric status"))?;
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad_data("malformed response header"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Response {
        status,
        headers,
        body: body.to_string(),
    })
}

/// Finds the header/body separator (`\r\n\r\n`, tolerating bare `\n\n`),
/// returning `(head_end, separator_len)`.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n");
    let lf = buf.windows(2).position(|w| w == b"\n\n");
    match (crlf, lf) {
        (Some(c), Some(l)) if l + 1 < c => Some((l, 2)),
        (Some(c), _) => Some((c, 4)),
        (None, Some(l)) => Some((l, 2)),
        (None, None) => None,
    }
}

/// The `content-length` advertised in a response head (0 when absent).
fn head_content_length(head: &str) -> io::Result<usize> {
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                return value
                    .trim()
                    .parse()
                    .map_err(|_| bad_data("invalid response Content-Length"));
            }
        }
    }
    Ok(0)
}

/// A keep-alive HTTP/1.1 connection.
///
/// Responses are framed by `Content-Length` rather than EOF, so the
/// connection survives across requests; bytes past one response (from the
/// server answering pipelined requests) are buffered for the next
/// [`ClientConn::read_response`].
#[derive(Debug)]
pub struct ClientConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl ClientConn {
    /// Connects with the same timeouts as [`request`].
    ///
    /// # Errors
    ///
    /// Propagates connect/configuration failures.
    pub fn connect(addr: SocketAddr) -> io::Result<ClientConn> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
        stream.set_read_timeout(Some(Duration::from_mins(1)))?;
        stream.set_write_timeout(Some(Duration::from_mins(1)))?;
        let _ = stream.set_nodelay(true);
        Ok(ClientConn {
            stream,
            buf: Vec::new(),
        })
    }

    /// Writes one request without waiting for the response (callers may
    /// pipeline several before reading).
    ///
    /// # Errors
    ///
    /// Propagates transport write failures.
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: &str,
    ) -> io::Result<()> {
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: keep-alive\r\n",
            body.len()
        );
        for (name, value) in extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()
    }

    /// Reads one `Content-Length`-framed response.
    ///
    /// # Errors
    ///
    /// Transport failures, an unexpectedly closed connection, or a
    /// malformed response.
    pub fn read_response(&mut self) -> io::Result<Response> {
        let mut chunk = [0u8; 8 * 1024];
        let (head_end, sep) = loop {
            if let Some(found) = find_head_end(&self.buf) {
                break found;
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| bad_data("non-UTF-8 response head"))?;
        let content_length = head_content_length(head)?;
        let total = head_end + sep + content_length;
        while self.buf.len() < total {
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let response = parse_response(&self.buf[..total])?;
        self.buf.drain(..total);
        Ok(response)
    }

    /// One request/response round trip on the live connection.
    ///
    /// # Errors
    ///
    /// See [`ClientConn::send`] and [`ClientConn::read_response`].
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: &str,
    ) -> io::Result<Response> {
        self.send(method, path, extra_headers, body)?;
        self.read_response()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_response() {
        let raw = b"HTTP/1.1 422 Unprocessable Entity\r\ncontent-type: application/json\r\nx-cool-cache: miss\r\n\r\n{\"a\":1}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 422);
        assert_eq!(resp.header("X-Cool-Cache"), Some("miss"));
        assert_eq!(resp.body, "{\"a\":1}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"").is_err());
        assert!(parse_response(b"\r\n\r\n").is_err());
        assert!(parse_response(b"ICMP boo\r\n\r\n").is_err());
        assert!(parse_response(b"HTTP/1.1 ok\r\n\r\n").is_err());
    }

    #[test]
    fn client_conn_frames_pipelined_keep_alive_responses() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut sink = [0u8; 1024];
            let _ = s.read(&mut sink);
            // Two framed responses in one burst — the client must split
            // them by content-length, not EOF.
            s.write_all(
                b"HTTP/1.1 200 OK\r\ncontent-length: 3\r\nconnection: keep-alive\r\n\r\none\
                  HTTP/1.1 404 Not Found\r\ncontent-length: 3\r\nconnection: keep-alive\r\n\r\ntwo",
            )
            .unwrap();
        });
        let mut conn = ClientConn::connect(addr).unwrap();
        conn.send("GET", "/a", &[], "").unwrap();
        let first = conn.read_response().unwrap();
        assert_eq!(first.status, 200);
        assert_eq!(first.body, "one");
        let second = conn.read_response().unwrap();
        assert_eq!(second.status, 404);
        assert_eq!(second.body, "two");
        server.join().unwrap();
    }

    #[test]
    fn accepts_bare_lf_responses() {
        let resp = parse_response(b"HTTP/1.1 200 OK\nfoo: bar\n\nhello").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("foo"), Some("bar"));
        assert_eq!(resp.body, "hello");
    }
}
