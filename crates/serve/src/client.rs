//! A minimal HTTP/1.1 client over `std::net::TcpStream`, used by the smoke
//! harness, the e2e suite, and anyone scripting the daemon without curl.
//!
//! One request per connection, mirroring the server's `Connection: close`
//! discipline: write the request, read until EOF, parse the response.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code, e.g. `200`.
    pub status: u16,
    /// Header name/value pairs (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// The response body as text.
    pub body: String,
}

impl Response {
    /// Case-insensitive header lookup.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let needle = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find_map(|(k, v)| (*k == needle).then_some(v.as_str()))
    }
}

fn bad_data(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Connection, transport, and response-parse failures.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> io::Result<Response> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_mins(1)))?;
    stream.set_write_timeout(Some(Duration::from_mins(1)))?;

    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Parses the raw wire bytes of one response.
///
/// # Errors
///
/// `InvalidData` for anything that is not a well-formed HTTP/1.x response.
pub fn parse_response(raw: &[u8]) -> io::Result<Response> {
    let text = std::str::from_utf8(raw).map_err(|_| bad_data("non-UTF-8 response"))?;
    // Tolerate bare-LF separators the same way the server does.
    let (head, body) = match text.split_once("\r\n\r\n") {
        Some(split) => split,
        None => text
            .split_once("\n\n")
            .ok_or_else(|| bad_data("missing header/body separator"))?,
    };
    let mut lines = head.lines().map(str::trim_end);
    let status_line = lines.next().ok_or_else(|| bad_data("empty response"))?;
    let mut parts = status_line.split_whitespace();
    let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
        return Err(bad_data("malformed status line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad_data("unsupported HTTP version"));
    }
    let status: u16 = code.parse().map_err(|_| bad_data("non-numeric status"))?;
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad_data("malformed response header"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Response {
        status,
        headers,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_response() {
        let raw = b"HTTP/1.1 422 Unprocessable Entity\r\ncontent-type: application/json\r\nx-cool-cache: miss\r\n\r\n{\"a\":1}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 422);
        assert_eq!(resp.header("X-Cool-Cache"), Some("miss"));
        assert_eq!(resp.body, "{\"a\":1}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"").is_err());
        assert!(parse_response(b"\r\n\r\n").is_err());
        assert!(parse_response(b"ICMP boo\r\n\r\n").is_err());
        assert!(parse_response(b"HTTP/1.1 ok\r\n\r\n").is_err());
    }

    #[test]
    fn accepts_bare_lf_responses() {
        let resp = parse_response(b"HTTP/1.1 200 OK\nfoo: bar\n\nhello").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("foo"), Some("bar"));
        assert_eq!(resp.body, "hello");
    }
}
