//! The non-blocking `poll(2)` event loop behind [`ServeMode::Event`]
//! (DESIGN.md §13).
//!
//! One acceptor/IO thread multiplexes every connection through
//! [`crate::poll::PollSet`]; parsed requests are handed to sharded
//! [`WorkerPool`]s (bounded queues — the 429 backpressure and drain
//! contracts are identical to the threaded transport) and completed
//! responses come back over a loopback wake socket, so the loop never
//! blocks on anything but `poll(2)` itself.
//!
//! Per-connection state machine:
//!
//! ```text
//!           ┌────────────── keep-alive ──────────────┐
//!           ▼                                        │
//! accept → Reading ──parse──▶ Queued ──worker──▶ Writing ──close──▶ drop
//!           │                                        ▲
//!           └── parse error / overload / timeout ────┘
//! ```
//!
//! `POLLIN` is only armed while a connection is `Reading`, so a client
//! that pipelines aggressively is throttled by the kernel socket buffer
//! rather than ballooning server memory.

use crate::http::{parse_request, render_response, Parse, ParseError, Request};
use crate::poll::PollSet;
use crate::server::{content_type_for, endpoint_label, route, AppState};
use cool_common::hash::StableHasher;
use cool_common::parallel::WorkerPool;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Poll-set token for the listener.
const TOKEN_LISTENER: usize = usize::MAX;
/// Poll-set token for the wake socket.
const TOKEN_WAKE: usize = usize::MAX - 1;
/// Upper bound on one `poll` wait, so the shutdown flag and deadline
/// sweeps run at least this often.
const MAX_POLL_MS: i32 = 500;
/// Bytes read from one connection per readiness event before yielding to
/// the others.
const READ_QUANTUM: usize = 256 * 1024;

/// A parsed request travelling to a worker shard.
struct Job {
    conn_id: usize,
    request: Request,
    accepted_at: Instant,
    keep_alive: bool,
}

/// A rendered response travelling back from a worker.
struct Completion {
    conn_id: usize,
    bytes: Vec<u8>,
    keep_alive: bool,
}

/// Where a connection is in its request/response cycle.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Waiting for (more of) a request.
    Reading,
    /// A request is queued or executing on a worker shard.
    Queued,
    /// A response is being flushed.
    Writing,
}

/// One client connection.
struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes (and pipelined followers).
    buf: Vec<u8>,
    /// Response bytes being flushed.
    out: Vec<u8>,
    out_pos: usize,
    state: ConnState,
    /// Set when `buf` holds a partial request; drives the 408 budget.
    request_started: Option<Instant>,
    /// Last byte received or response finished; drives the idle timeout.
    last_activity: Instant,
    /// Requests dispatched on this connection (keep-alive cap).
    requests: usize,
    /// The peer half-closed its write side.
    read_closed: bool,
    close_after_write: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            state: ConnState::Reading,
            request_started: None,
            last_activity: Instant::now(),
            requests: 0,
            read_closed: false,
            close_after_write: false,
        }
    }
}

/// Builds the loopback socket pair workers use to wake the poll loop
/// (std offers no pipes; a localhost TCP pair is the portable stand-in).
fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    let _ = tx.set_nodelay(true);
    Ok((rx, tx))
}

/// Nudges the poll loop; failures are ignored because a full wake-socket
/// buffer already guarantees the loop has a pending readable event.
fn wake(tx: &TcpStream) {
    let _ = (&mut &*tx).write(&[1u8]);
}

/// The worker shard a request routes to: FNV-1a of (target, body), so
/// identical content — the cache-hit case — always lands on the same
/// shard and its cache shard stays warm.
fn shard_of(request: &Request, shards: usize) -> usize {
    let mut h = StableHasher::new();
    h.write(request.target.as_bytes());
    h.write_sep();
    h.write(&request.body);
    usize::try_from(h.finish() % shards as u64).unwrap_or(0)
}

/// What to do with a connection after an event is handled.
enum After {
    Keep,
    Drop,
}

/// Runs the event loop until shutdown is requested and every accepted
/// request has drained.
///
/// Takes the listener and state by value: this function IS the I/O
/// thread and owns both for the daemon's lifetime.
#[allow(clippy::too_many_lines, clippy::needless_pass_by_value)]
pub(crate) fn run(listener: TcpListener, state: Arc<AppState>) -> io::Result<()> {
    let (wake_rx, wake_tx) = wake_pair()?;
    let wake_tx = Arc::new(wake_tx);
    let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));

    let worker_shards = state.config.worker_shards();
    let threads = state.config.threads.max(1);
    let per_shard_cap = (state.config.queue_cap / worker_shards).max(1);
    let base_threads = threads / worker_shards;
    let extra_threads = threads % worker_shards;
    let pools: Vec<WorkerPool<Job>> = (0..worker_shards)
        .map(|shard| {
            let state = Arc::clone(&state);
            let completions = Arc::clone(&completions);
            let wake_tx = Arc::clone(&wake_tx);
            let shard_threads = base_threads + usize::from(shard < extra_threads);
            WorkerPool::new(shard_threads, per_shard_cap, move |job: Job| {
                state.metrics.queue_depth.dec();
                state.metrics.shard_queue_depth[shard].dec();
                state.metrics.in_flight.inc();
                let endpoint = endpoint_label(&job.request.target);
                let (status, extra, body) = route(&state, &job.request, job.accepted_at);
                let extra_refs: Vec<(&str, &str)> = extra
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                let bytes = render_response(
                    status,
                    content_type_for(endpoint, status),
                    &extra_refs,
                    body.as_bytes(),
                    job.keep_alive,
                );
                state.metrics.observe_request(
                    endpoint,
                    status,
                    job.accepted_at.elapsed().as_secs_f64(),
                );
                state.metrics.in_flight.dec();
                completions
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(Completion {
                        conn_id: job.conn_id,
                        bytes,
                        keep_alive: job.keep_alive,
                    });
                wake(&wake_tx);
            })
        })
        .collect();

    let budget = Duration::from_millis(state.config.timeout_ms.max(1));
    let idle_limit = Duration::from_millis(state.config.idle_timeout_ms.max(1));
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_id: usize = 0;
    let mut poll_set = PollSet::new();
    let mut draining = false;

    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            draining = true;
        }
        if draining {
            // Idle keep-alive connections have nothing owed to them.
            conns.retain(|_, conn| !(conn.state == ConnState::Reading && conn.buf.is_empty()));
            if conns.is_empty() {
                break;
            }
        }

        poll_set.clear();
        if !draining {
            poll_set.register(listener.as_raw_fd(), TOKEN_LISTENER, true, false);
        }
        poll_set.register(wake_rx.as_raw_fd(), TOKEN_WAKE, true, false);
        for (&id, conn) in &conns {
            let read = conn.state == ConnState::Reading && !conn.read_closed;
            let write = conn.state == ConnState::Writing;
            if read || write {
                poll_set.register(conn.stream.as_raw_fd(), id, read, write);
            }
        }

        let timeout = next_deadline_ms(&conns, budget, idle_limit);
        poll_set.wait(timeout)?;

        let ready: Vec<(usize, bool, bool)> = poll_set.ready().collect();
        for &(token, readable, writable) in &ready {
            match token {
                TOKEN_LISTENER => accept_all(&listener, &state, &mut conns, &mut next_id),
                TOKEN_WAKE => drain_wake(&wake_rx),
                id => {
                    let Some(conn) = conns.get_mut(&id) else {
                        continue;
                    };
                    let after = if readable && conn.state == ConnState::Reading {
                        on_readable(&state, &pools, id, conn)
                    } else if writable && conn.state == ConnState::Writing {
                        on_writable(conn)
                    } else {
                        After::Keep
                    };
                    if matches!(after, After::Drop) {
                        conns.remove(&id);
                    }
                }
            }
        }

        apply_completions(&state, &pools, &completions, &mut conns);
        sweep_deadlines(&state, &mut conns, budget, idle_limit, draining);
    }

    for pool in pools {
        pool.shutdown();
    }
    Ok(())
}

/// Milliseconds until the nearest budget/idle deadline, clamped to
/// `[0, MAX_POLL_MS]`.
fn next_deadline_ms(conns: &HashMap<usize, Conn>, budget: Duration, idle_limit: Duration) -> i32 {
    let now = Instant::now();
    let mut nearest: Option<Duration> = None;
    for conn in conns.values() {
        if conn.state != ConnState::Reading {
            continue;
        }
        let deadline = match conn.request_started {
            Some(started) => started + budget,
            None => conn.last_activity + idle_limit,
        };
        let left = deadline.saturating_duration_since(now);
        nearest = Some(nearest.map_or(left, |n| n.min(left)));
    }
    match nearest {
        Some(left) => i32::try_from(
            left.as_millis()
                .min(u128::try_from(MAX_POLL_MS).unwrap_or(0)),
        )
        .unwrap_or(MAX_POLL_MS),
        None => MAX_POLL_MS,
    }
}

/// Accepts every pending connection (the listener is level-triggered, but
/// draining the backlog here saves a poll round-trip per connection).
fn accept_all(
    listener: &TcpListener,
    state: &AppState,
    conns: &mut HashMap<usize, Conn>,
    next_id: &mut usize,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                state.metrics.connections.inc();
                let id = *next_id;
                // Skip the reserved control tokens on wraparound.
                *next_id = next_id.wrapping_add(1);
                if *next_id >= TOKEN_WAKE {
                    *next_id = 0;
                }
                conns.insert(id, Conn::new(stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}

/// Discards pending wake bytes.
fn drain_wake(wake_rx: &TcpStream) {
    let mut sink = [0u8; 64];
    loop {
        match (&mut &*wake_rx).read(&mut sink) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Reads what the socket has, then tries to dispatch a complete request.
fn on_readable(state: &AppState, pools: &[WorkerPool<Job>], id: usize, conn: &mut Conn) -> After {
    let mut chunk = [0u8; 16 * 1024];
    let mut taken = 0usize;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                conn.last_activity = Instant::now();
                taken += n;
                if taken >= READ_QUANTUM {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return After::Drop,
        }
    }
    try_dispatch(state, pools, id, conn)
}

/// Parses the front of `conn.buf`; dispatches a complete request to its
/// worker shard or answers protocol errors inline.
fn try_dispatch(state: &AppState, pools: &[WorkerPool<Job>], id: usize, conn: &mut Conn) -> After {
    loop {
        if conn.state != ConnState::Reading {
            return After::Keep;
        }
        match parse_request(&conn.buf) {
            Ok(Parse::Complete(outcome)) => {
                conn.buf.drain(..outcome.consumed);
                conn.request_started = None;
                conn.requests += 1;
                if conn.requests > 1 {
                    state.metrics.keepalive_reuses.inc();
                }
                let keep_alive =
                    outcome.keep_alive && conn.requests < state.config.keep_alive_max.max(1);

                // Memoised schedule responses are answered right here on
                // the IO thread — no queue, no worker wake, no completion
                // round trip. Everything else takes the queued path.
                if let Some(body) = crate::server::schedule_cache_hit(state, &outcome.request) {
                    let started = Instant::now();
                    conn.out = render_response(
                        200,
                        content_type_for("schedule", 200),
                        &[("x-cool-cache", "hit")],
                        body.as_bytes(),
                        keep_alive,
                    );
                    conn.out_pos = 0;
                    conn.close_after_write = !keep_alive;
                    conn.state = ConnState::Writing;
                    state
                        .metrics
                        .observe_request("schedule", 200, started.elapsed().as_secs_f64());
                    match flush(conn) {
                        After::Drop => return After::Drop,
                        // Fully flushed and back to Reading: serve the next
                        // pipelined request without another poll round.
                        After::Keep if conn.state == ConnState::Reading && !conn.buf.is_empty() => {
                            continue;
                        }
                        After::Keep => return After::Keep,
                    }
                }

                let shard = shard_of(&outcome.request, pools.len());
                let job = Job {
                    conn_id: id,
                    request: outcome.request,
                    accepted_at: Instant::now(),
                    keep_alive,
                };
                state.metrics.queue_depth.inc();
                state.metrics.shard_queue_depth[shard].inc();
                return match pools[shard].try_submit(job) {
                    Ok(()) => {
                        conn.state = ConnState::Queued;
                        After::Keep
                    }
                    Err(rejected) => {
                        state.metrics.queue_depth.dec();
                        state.metrics.shard_queue_depth[shard].dec();
                        state.metrics.queue_rejections.inc();
                        let job = rejected.into_job();
                        let err = crate::api::ApiError::overloaded();
                        inline_response(
                            state,
                            conn,
                            endpoint_label(&job.request.target),
                            err.status,
                            &err.body(),
                            job.accepted_at,
                        )
                    }
                };
            }
            Ok(Parse::Partial(stage)) => {
                if conn.buf.is_empty() {
                    conn.request_started = None;
                } else if conn.request_started.is_none() {
                    conn.request_started = Some(Instant::now());
                }
                if conn.read_closed {
                    if conn.buf.is_empty() {
                        return After::Drop; // clean EOF between requests
                    }
                    let err = crate::api::ApiError::malformed(stage.truncation_message());
                    let started = conn.request_started.unwrap_or_else(Instant::now);
                    return inline_response(state, conn, "other", err.status, &err.body(), started);
                }
                return After::Keep;
            }
            Err(ParseError::BadRequest(message)) => {
                let err = crate::api::ApiError::malformed(message);
                let started = conn.request_started.unwrap_or_else(Instant::now);
                return inline_response(state, conn, "other", err.status, &err.body(), started);
            }
            Err(ParseError::TooLarge) => {
                let mut err = crate::api::ApiError::malformed("request exceeds size limits");
                err.status = 413;
                let started = conn.request_started.unwrap_or_else(Instant::now);
                return inline_response(state, conn, "other", err.status, &err.body(), started);
            }
        }
    }
}

/// Starts flushing an error/shed response generated on the IO thread;
/// these responses always close the connection.
fn inline_response(
    state: &AppState,
    conn: &mut Conn,
    endpoint: &str,
    status: u16,
    body: &str,
    started: Instant,
) -> After {
    conn.out = render_response(status, "application/json", &[], body.as_bytes(), false);
    conn.out_pos = 0;
    conn.close_after_write = true;
    conn.state = ConnState::Writing;
    conn.request_started = None;
    state
        .metrics
        .observe_request(endpoint, status, started.elapsed().as_secs_f64());
    flush(conn)
}

/// Continues flushing `conn.out`.
fn on_writable(conn: &mut Conn) -> After {
    flush(conn)
}

/// Writes as much of the pending response as the socket accepts, then
/// transitions the state machine.
fn flush(conn: &mut Conn) -> After {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return After::Drop,
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return After::Keep,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return After::Drop,
        }
    }
    if conn.close_after_write {
        return After::Drop;
    }
    conn.out = Vec::new();
    conn.out_pos = 0;
    conn.state = ConnState::Reading;
    conn.last_activity = Instant::now();
    After::Keep
}

/// Moves finished worker responses onto their connections and starts
/// writing; keep-alive connections immediately try the next pipelined
/// request already sitting in their buffer.
fn apply_completions(
    state: &AppState,
    pools: &[WorkerPool<Job>],
    completions: &Mutex<Vec<Completion>>,
    conns: &mut HashMap<usize, Conn>,
) {
    let done: Vec<Completion> =
        std::mem::take(&mut *completions.lock().unwrap_or_else(PoisonError::into_inner));
    for completion in done {
        let Some(conn) = conns.get_mut(&completion.conn_id) else {
            continue;
        };
        conn.out = completion.bytes;
        conn.out_pos = 0;
        conn.close_after_write = !completion.keep_alive;
        conn.state = ConnState::Writing;
        let mut after = flush(conn);
        if matches!(after, After::Keep) && conn.state == ConnState::Reading && !conn.buf.is_empty()
        {
            after = try_dispatch(state, pools, completion.conn_id, conn);
        }
        if matches!(after, After::Drop) {
            conns.remove(&completion.conn_id);
        }
    }
}

/// Enforces the per-request budget (typed 408 on stalled partial
/// requests — the slow-loris defence) and the keep-alive idle timeout
/// (silent close; the peer owes us nothing).
fn sweep_deadlines(
    state: &AppState,
    conns: &mut HashMap<usize, Conn>,
    budget: Duration,
    idle_limit: Duration,
    draining: bool,
) {
    let mut expired: Vec<usize> = Vec::new();
    let mut idle: Vec<usize> = Vec::new();
    for (&id, conn) in conns.iter() {
        if conn.state != ConnState::Reading {
            continue;
        }
        match conn.request_started {
            Some(started) if started.elapsed() > budget => expired.push(id),
            None if conn.buf.is_empty()
                && (draining || conn.last_activity.elapsed() > idle_limit) =>
            {
                idle.push(id);
            }
            _ => {}
        }
    }
    for id in idle {
        conns.remove(&id);
    }
    for id in expired {
        let Some(conn) = conns.get_mut(&id) else {
            continue;
        };
        state.metrics.timeouts.inc();
        let err = crate::api::ApiError::timeout(u128::from(state.config.timeout_ms));
        let started = conn.request_started.unwrap_or_else(Instant::now);
        if matches!(
            inline_response(state, conn, "other", err.status, &err.body(), started),
            After::Drop
        ) {
            conns.remove(&id);
        }
    }
}
