//! A deliberately small HTTP/1.1 implementation — exactly the subset the
//! scheduling service needs, over `std` only.
//!
//! `Content-Length` bodies only (no chunked transfer; a `Transfer-Encoding`
//! header is rejected outright as smuggling hygiene), bounded header and
//! body sizes so a hostile peer cannot balloon memory. Anything outside
//! that subset is a clean 4xx, never a panic.
//!
//! Since PR 8 the parser is **incremental**: [`parse_request`] consumes a
//! byte buffer and either yields a complete request (plus how many bytes it
//! spanned, enabling keep-alive pipelining) or reports which stage is still
//! [`Partial`](Parse::Partial). The blocking [`read_request`] used by the
//! legacy thread-per-connection path is a thin loop over it.

use std::io::{self, BufRead, Write};

/// Maximum bytes in the request line or any single header line.
const MAX_LINE: usize = 8 * 1024;
/// Maximum number of headers.
const MAX_HEADERS: usize = 64;
/// Maximum request body size (scenario files are a few hundred bytes; 4 MiB
/// leaves ample room for large batches).
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-cased method, e.g. `POST`.
    pub method: String,
    /// The request target, e.g. `/v1/schedule` (query strings are kept
    /// verbatim; the service's routes do not use them).
    pub target: String,
    /// Header name/value pairs in arrival order (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// The body, already read to `Content-Length`.
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (names are stored lower-cased).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let needle = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find_map(|(k, v)| (*k == needle).then_some(v.as_str()))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Transport failure (includes read timeouts).
    Io(io::Error),
    /// The peer closed the connection before sending a request line.
    Closed,
    /// The request is malformed; the message is safe to echo to the peer.
    BadRequest(&'static str),
    /// The request exceeds the line/header/body bounds.
    TooLarge,
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// A pure-parse failure (no transport involved).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The bytes are malformed; the message is safe to echo to the peer.
    BadRequest(&'static str),
    /// The request exceeds the line/header/body bounds.
    TooLarge,
}

impl From<ParseError> for ReadError {
    fn from(e: ParseError) -> Self {
        match e {
            ParseError::BadRequest(message) => ReadError::BadRequest(message),
            ParseError::TooLarge => ReadError::TooLarge,
        }
    }
}

/// Which part of a request the buffer ends inside.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Still inside the request line.
    Line,
    /// Request line done, headers incomplete.
    Head,
    /// Headers done, body shorter than `Content-Length` so far.
    Body,
}

impl Stage {
    /// The 400 message for a connection that ends (EOF) at this stage —
    /// pinned by the fault battery and the parser's own tests.
    #[must_use]
    pub fn truncation_message(self) -> &'static str {
        match self {
            Stage::Line => "truncated line",
            Stage::Head => "truncated headers",
            Stage::Body => "truncated request body",
        }
    }
}

/// A complete request plus the framing facts the event loop needs.
#[derive(Debug)]
pub struct ParseOutcome {
    /// The parsed request.
    pub request: Request,
    /// Bytes of the buffer this request spanned; the caller drains them
    /// and may find the next pipelined request right behind.
    pub consumed: usize,
    /// Whether the client asked to keep the connection open: HTTP/1.1
    /// defaults to keep-alive, HTTP/1.0 to close, and any `close` token in
    /// a `Connection` header wins over everything else.
    pub keep_alive: bool,
}

/// The result of an incremental parse over a (possibly incomplete) buffer.
#[derive(Debug)]
pub enum Parse {
    /// One full request was framed.
    Complete(ParseOutcome),
    /// More bytes are needed; `Stage` says how far the buffer got.
    Partial(Stage),
}

/// Extracts one `\n`-terminated line starting at `start`, stripping the
/// trailing `\r\n` / `\n`. `Ok(None)` means the line is still incomplete.
fn take_line(buf: &[u8], start: usize) -> Result<Option<(String, usize)>, ParseError> {
    let Some(rel) = buf[start..].iter().position(|&b| b == b'\n') else {
        if buf.len() - start > MAX_LINE {
            return Err(ParseError::TooLarge);
        }
        return Ok(None);
    };
    let mut line = &buf[start..start + rel];
    if line.last() == Some(&b'\r') {
        line = &line[..line.len() - 1];
    }
    if line.len() > MAX_LINE {
        return Err(ParseError::TooLarge);
    }
    let text = std::str::from_utf8(line)
        .map_err(|_| ParseError::BadRequest("non-UTF-8 header"))?
        .to_string();
    Ok(Some((text, start + rel + 1)))
}

/// Resolves the `Content-Length` headers to one body size.
///
/// Duplicate headers that *agree* are tolerated (they are one length);
/// duplicates that conflict are the classic request-smuggling vector and
/// are rejected outright.
fn content_length_of(headers: &[(String, String)]) -> Result<usize, ParseError> {
    let mut length: Option<usize> = None;
    for (name, value) in headers {
        if name != "content-length" {
            continue;
        }
        let parsed: usize = value
            .trim()
            .parse()
            .map_err(|_| ParseError::BadRequest("invalid Content-Length"))?;
        match length {
            None => length = Some(parsed),
            Some(prev) if prev == parsed => {}
            Some(_) => {
                return Err(ParseError::BadRequest(
                    "conflicting duplicate Content-Length headers",
                ))
            }
        }
    }
    Ok(length.unwrap_or(0))
}

/// Whether the client asked for the connection to stay open.
fn wants_keep_alive(version: &str, headers: &[(String, String)]) -> bool {
    let mut saw_close = false;
    let mut saw_keep_alive = false;
    for (name, value) in headers {
        if name != "connection" {
            continue;
        }
        for token in value.split(',') {
            if token.trim().eq_ignore_ascii_case("close") {
                saw_close = true;
            } else if token.trim().eq_ignore_ascii_case("keep-alive") {
                saw_keep_alive = true;
            }
        }
    }
    if saw_close {
        return false;
    }
    if saw_keep_alive {
        return true;
    }
    version != "HTTP/1.0"
}

/// Incrementally parses one HTTP/1.1 request from the front of `buf`.
///
/// Returns [`Parse::Partial`] when the buffer holds a well-formed prefix
/// that simply needs more bytes; the caller re-invokes after reading more.
///
/// # Errors
///
/// [`ParseError::BadRequest`] for protocol violations (including the
/// request-smuggling vectors: conflicting duplicate `Content-Length`,
/// any `Transfer-Encoding`), [`ParseError::TooLarge`] past the bounds.
pub fn parse_request(buf: &[u8]) -> Result<Parse, ParseError> {
    let Some((request_line, mut pos)) = take_line(buf, 0)? else {
        return Ok(Parse::Partial(Stage::Line));
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::BadRequest("malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::BadRequest("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    loop {
        let Some((line, next)) = take_line(buf, pos)? else {
            return Ok(Parse::Partial(Stage::Head));
        };
        pos = next;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::TooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::BadRequest("malformed header"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(ParseError::BadRequest(
            "Transfer-Encoding is not supported; use Content-Length",
        ));
    }
    let content_length = content_length_of(&headers)?;
    if content_length > MAX_BODY {
        return Err(ParseError::TooLarge);
    }
    if buf.len() < pos + content_length {
        return Ok(Parse::Partial(Stage::Body));
    }
    let keep_alive = wants_keep_alive(version, &headers);
    let request = Request {
        method: method.to_ascii_uppercase(),
        target: target.to_string(),
        headers,
        body: buf[pos..pos + content_length].to_vec(),
    };
    Ok(Parse::Complete(ParseOutcome {
        request,
        consumed: pos + content_length,
        keep_alive,
    }))
}

/// Reads and parses one HTTP/1.1 request from `reader` (blocking), used by
/// the legacy thread-per-connection path and the overload shed path.
///
/// # Errors
///
/// [`ReadError::Closed`] when the peer sent nothing, [`ReadError::Io`] on
/// transport problems (including read timeouts), and
/// `BadRequest`/`TooLarge` for protocol abuse.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, ReadError> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match parse_request(&buf)? {
            Parse::Complete(outcome) => return Ok(outcome.request),
            Parse::Partial(stage) => {
                let n = reader.read(&mut chunk)?;
                if n == 0 {
                    if buf.is_empty() {
                        return Err(ReadError::Closed);
                    }
                    // A peer that promises more bytes and half-closes early
                    // is malformed, not a transport failure — with TCP
                    // half-close it can still read the typed 400 back.
                    return Err(ReadError::BadRequest(stage.truncation_message()));
                }
                buf.extend_from_slice(&chunk[..n]);
            }
        }
    }
}

/// The reason phrase for the status codes the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Renders one response to wire bytes, advertising the connection
/// disposition the server will actually honour.
#[must_use]
pub fn render_response(
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    out
}

/// Writes one `Connection: close` response with the given body.
///
/// # Errors
///
/// Propagates transport write failures.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    writer.write_all(&render_response(
        status,
        content_type,
        extra_headers,
        body,
        false,
    ))?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse("POST /v1/schedule HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/schedule");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse("GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn bare_lf_lines_are_accepted() {
        let req = parse("GET /healthz HTTP/1.1\nhost: y\n\n").unwrap();
        assert_eq!(req.target, "/healthz");
        assert_eq!(req.header("host"), Some("y"));
    }

    #[test]
    fn rejects_protocol_garbage() {
        assert!(matches!(parse(""), Err(ReadError::Closed)));
        assert!(matches!(
            parse("GARBAGE\r\n\r\n"),
            Err(ReadError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / SMTP/1.0\r\n\r\n"),
            Err(ReadError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(ReadError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ReadError::BadRequest(_))
        ));
    }

    #[test]
    fn truncated_body_is_bad_request_not_io() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort"),
            Err(ReadError::BadRequest("truncated request body"))
        ));
    }

    #[test]
    fn truncated_line_and_headers_keep_their_messages() {
        assert!(matches!(
            parse("POST /v1/sched"),
            Err(ReadError::BadRequest("truncated line"))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nhost: x\r\n"),
            Err(ReadError::BadRequest("truncated headers"))
        ));
    }

    #[test]
    fn rejects_oversized_input() {
        let long = "GET /".to_string() + &"a".repeat(MAX_LINE + 1) + " HTTP/1.1\r\n\r\n";
        assert!(matches!(parse(&long), Err(ReadError::TooLarge)));
        let big_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(parse(&big_body), Err(ReadError::TooLarge)));
    }

    #[test]
    fn conflicting_duplicate_content_length_is_rejected() {
        // The smuggling vector: two different lengths for one body.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 7\r\n\r\nhello!!"),
            Err(ReadError::BadRequest(
                "conflicting duplicate Content-Length headers"
            ))
        ));
        // Agreeing duplicates are one length, not an attack.
        let req =
            parse("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn transfer_encoding_is_rejected() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ReadError::BadRequest(_))
        ));
    }

    #[test]
    fn incremental_parse_reports_stages_then_completes() {
        let wire = b"POST /v1/schedule HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        assert!(matches!(
            parse_request(&wire[..10]),
            Ok(Parse::Partial(Stage::Line))
        ));
        assert!(matches!(
            parse_request(&wire[..30]),
            Ok(Parse::Partial(Stage::Head))
        ));
        assert!(matches!(
            parse_request(&wire[..wire.len() - 2]),
            Ok(Parse::Partial(Stage::Body))
        ));
        match parse_request(wire).unwrap() {
            Parse::Complete(outcome) => {
                assert_eq!(outcome.consumed, wire.len());
                assert!(outcome.keep_alive, "HTTP/1.1 defaults to keep-alive");
                assert_eq!(outcome.request.body, b"abcd");
            }
            Parse::Partial(stage) => panic!("incomplete at {stage:?}"),
        }
    }

    #[test]
    fn pipelined_requests_frame_one_at_a_time() {
        let wire =
            b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n";
        let first = match parse_request(wire).unwrap() {
            Parse::Complete(outcome) => outcome,
            Parse::Partial(stage) => panic!("incomplete at {stage:?}"),
        };
        assert_eq!(first.request.target, "/healthz");
        assert!(first.keep_alive);
        let second = match parse_request(&wire[first.consumed..]).unwrap() {
            Parse::Complete(outcome) => outcome,
            Parse::Partial(stage) => panic!("incomplete at {stage:?}"),
        };
        assert_eq!(second.request.target, "/metrics");
        assert!(!second.keep_alive, "explicit close token wins");
    }

    #[test]
    fn connection_tokens_steer_keep_alive() {
        let keep = |raw: &str| match parse_request(raw.as_bytes()).unwrap() {
            Parse::Complete(outcome) => outcome.keep_alive,
            Parse::Partial(stage) => panic!("incomplete at {stage:?}"),
        };
        assert!(keep("GET / HTTP/1.1\r\n\r\n"));
        assert!(!keep("GET / HTTP/1.0\r\n\r\n"));
        assert!(keep("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"));
        assert!(!keep("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(!keep(
            "GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n"
        ));
        assert!(keep("GET / HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n"));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            200,
            "application/json",
            &[("x-cool-cache", "hit")],
            b"{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("x-cool-cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn keep_alive_responses_advertise_it() {
        let bytes = render_response(200, "application/json", &[], b"{}", true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("connection: keep-alive\r\n"));
    }

    #[test]
    fn all_emitted_statuses_have_reasons() {
        for status in [200, 400, 404, 405, 408, 413, 422, 429, 500] {
            assert_ne!(reason(status), "Unknown", "{status}");
        }
    }
}
