//! A deliberately small HTTP/1.1 implementation — exactly the subset the
//! scheduling service needs, over `std` only.
//!
//! One request per connection (`Connection: close`), `Content-Length`
//! bodies only (no chunked transfer), bounded header and body sizes so a
//! hostile peer cannot balloon memory. Anything outside that subset is a
//! clean 4xx, never a panic.

use std::io::{self, BufRead, Write};

/// Maximum bytes in the request line or any single header line.
const MAX_LINE: usize = 8 * 1024;
/// Maximum number of headers.
const MAX_HEADERS: usize = 64;
/// Maximum request body size (scenario files are a few hundred bytes; 4 MiB
/// leaves ample room for large batches).
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-cased method, e.g. `POST`.
    pub method: String,
    /// The request target, e.g. `/v1/schedule` (query strings are kept
    /// verbatim; the service's routes do not use them).
    pub target: String,
    /// Header name/value pairs in arrival order (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// The body, already read to `Content-Length`.
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (names are stored lower-cased).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let needle = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find_map(|(k, v)| (*k == needle).then_some(v.as_str()))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Transport failure (includes read timeouts).
    Io(io::Error),
    /// The peer closed the connection before sending a request line.
    Closed,
    /// The request is malformed; the message is safe to echo to the peer.
    BadRequest(&'static str),
    /// The request exceeds the line/header/body bounds.
    TooLarge,
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads one line terminated by `\n`, rejecting lines longer than
/// [`MAX_LINE`]; strips the trailing `\r\n` / `\n`.
fn read_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, ReadError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        if reader.read(&mut byte)? == 0 {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(ReadError::BadRequest("truncated line"));
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            let text =
                String::from_utf8(line).map_err(|_| ReadError::BadRequest("non-UTF-8 header"))?;
            return Ok(Some(text));
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE {
            return Err(ReadError::TooLarge);
        }
    }
}

/// Reads and parses one HTTP/1.1 request from `reader`.
///
/// # Errors
///
/// [`ReadError::Closed`] when the peer sent nothing, [`ReadError::Io`] on
/// transport problems, and `BadRequest`/`TooLarge` for protocol abuse.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, ReadError> {
    let Some(request_line) = read_line(reader)? else {
        return Err(ReadError::Closed);
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ReadError::BadRequest("malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::BadRequest("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(reader)? else {
            return Err(ReadError::BadRequest("truncated headers"));
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ReadError::TooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::BadRequest("malformed header"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ReadError::BadRequest("invalid Content-Length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(ReadError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| {
        // A peer that promises Content-Length bytes and half-closes early
        // is malformed, not a transport failure — with TCP half-close the
        // peer can still read the typed 400 the server sends back.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ReadError::BadRequest("truncated request body")
        } else {
            ReadError::Io(e)
        }
    })?;

    Ok(Request {
        method: method.to_ascii_uppercase(),
        target: target.to_string(),
        headers,
        body,
    })
}

/// The reason phrase for the status codes the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes one `Connection: close` response with the given body.
///
/// # Errors
///
/// Propagates transport write failures.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse("POST /v1/schedule HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/schedule");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse("GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn bare_lf_lines_are_accepted() {
        let req = parse("GET /healthz HTTP/1.1\nhost: y\n\n").unwrap();
        assert_eq!(req.target, "/healthz");
        assert_eq!(req.header("host"), Some("y"));
    }

    #[test]
    fn rejects_protocol_garbage() {
        assert!(matches!(parse(""), Err(ReadError::Closed)));
        assert!(matches!(
            parse("GARBAGE\r\n\r\n"),
            Err(ReadError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / SMTP/1.0\r\n\r\n"),
            Err(ReadError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(ReadError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ReadError::BadRequest(_))
        ));
    }

    #[test]
    fn truncated_body_is_bad_request_not_io() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort"),
            Err(ReadError::BadRequest("truncated request body"))
        ));
    }

    #[test]
    fn rejects_oversized_input() {
        let long = "GET /".to_string() + &"a".repeat(MAX_LINE + 1) + " HTTP/1.1\r\n\r\n";
        assert!(matches!(parse(&long), Err(ReadError::TooLarge)));
        let big_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(parse(&big_body), Err(ReadError::TooLarge)));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            200,
            "application/json",
            &[("x-cool-cache", "hit")],
            b"{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("x-cool-cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn all_emitted_statuses_have_reasons() {
        for status in [200, 400, 404, 405, 408, 413, 422, 429, 500] {
            assert_ne!(reason(status), "Unknown", "{status}");
        }
    }
}
