//! # cool-serve — the scheduling daemon
//!
//! A std-only HTTP/1.1 JSON service around the `cool-core` schedulers,
//! turning the offline `cool run` pipeline into a long-lived daemon with
//! request batching, schedule caching, and an operational metrics surface.
//!
//! | Endpoint | Method | Purpose |
//! |---|---|---|
//! | `/v1/schedule` | POST | lint pre-flight → compute (greedy / lp-rounding / horizon) → schedule + per-slot utility JSON; `{"batch":[...]}` fans out over the worker pool |
//! | `/v1/lint` | POST | the `cool-lint` pre-flight as a standalone check |
//! | `/v1/scenario` | PUT | create a live session: lint, solve, store (LRU-bounded; evicted/deleted ids answer 410) |
//! | `/v1/scenario/{id}` | PATCH | apply a delta sequence with warm-start schedule repair |
//! | `/v1/scenario/{id}/schedule` | GET | the session's current schedule |
//! | `/v1/scenario/{id}` | DELETE | drop the session |
//! | `/healthz` | GET | liveness probe |
//! | `/metrics` | GET | Prometheus text: request counts, latency histogram, cache hit/miss, queue depth |
//! | `/v1/shutdown` | POST | graceful drain: stop intake, finish accepted work, exit |
//!
//! Architecture (DESIGN.md §8/§13): a non-blocking `poll(2)` event loop
//! multiplexes HTTP/1.1 keep-alive connections (request pipelining, idle
//! timeout, per-connection request cap) and feeds parsed requests to
//! **bounded** worker-queue shards backed by
//! [`cool_common::parallel::WorkerPool`]; a full shard sheds load with
//! HTTP 429 (`COOL-E018`), requests past their wall-clock budget answer
//! 408 (`COOL-E017`), and successful schedule bodies are memoised in a
//! content-addressed, N-way-sharded LRU cache — sound because bodies are
//! pure functions of (canonical scenario, algorithm). The legacy
//! thread-per-connection transport ([`server::ServeMode::Threaded`])
//! remains as the measured baseline and non-unix fallback.
//!
//! Everything here is `std`-only: no TLS, no async runtime, no serde. The
//! protocol subset (`Content-Length` bodies only, bounded lines/headers)
//! is deliberately small and fully bounded.

pub mod api;
pub mod cache;
pub mod client;
#[cfg(unix)]
pub(crate) mod event;
pub mod http;
pub mod loadgen;
pub mod metrics;
#[cfg(unix)]
pub mod poll;
pub mod server;
pub mod session_api;
pub mod shard;
pub mod smoke;

pub use api::{Algorithm, ApiError};
pub use cache::{CacheKey, LruCache};
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport};
pub use server::{ServeMode, Server, ServerConfig};
pub use smoke::{run_session_smoke, run_smoke};
