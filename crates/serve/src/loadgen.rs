//! `cool loadgen` — a deterministic HTTP load generator for the daemon.
//!
//! Drives a mix of schedule (`POST /v1/schedule`) and session
//! (`PUT`/`PATCH /v1/scenario`) traffic from `concurrency` worker threads,
//! either **closed-loop** (each worker fires its next request the moment
//! the previous response lands — measures capacity) or **open-loop**
//! (requests are paced at a fixed aggregate rate regardless of response
//! times — measures latency under a target arrival process, without
//! coordinated omission from slow responses gating arrivals).
//!
//! Workers draw per-thread RNG streams from one seed
//! ([`cool_common::SeedSequence`]), so a given config replays the same
//! request sequence.

use crate::client::{self, ClientConn, Response};
use cool_common::SeedSequence;
use rand::Rng as _;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Tunables for one load-generation run.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Target daemon, e.g. `127.0.0.1:7311`.
    pub addr: String,
    /// Wall-clock duration of the run in milliseconds.
    pub duration_ms: u64,
    /// Concurrent client workers.
    pub concurrency: usize,
    /// Open-loop aggregate request rate (requests/second across all
    /// workers); `None` runs closed-loop.
    pub rate: Option<f64>,
    /// Fraction of requests that exercise the `/v1/scenario` session
    /// endpoints instead of `/v1/schedule` (0.0..=1.0).
    pub session_ratio: f64,
    /// Reuse one keep-alive connection per worker (false: one
    /// `connection: close` request per connection, the PR 2 discipline).
    pub keep_alive: bool,
    /// Distinct scenario bodies to rotate through (cache keys touched).
    pub distinct: usize,
    /// Root seed for the per-worker request streams.
    pub seed: u64,
    /// POST `/v1/shutdown` to the daemon when the run finishes.
    pub shutdown_after: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7311".to_string(),
            duration_ms: 2_000,
            concurrency: 8,
            rate: None,
            session_ratio: 0.0,
            keep_alive: true,
            distinct: 8,
            seed: 42,
            shutdown_after: false,
        }
    }
}

/// Aggregated results of a run.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Requests that completed with any HTTP status.
    pub requests: u64,
    /// Transport-level failures (connect/read/write errors).
    pub errors: u64,
    /// Measured wall-clock duration in seconds.
    pub duration_s: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Latency percentiles over completed requests, in milliseconds.
    pub p50_ms: f64,
    /// 99th percentile latency (ms).
    pub p99_ms: f64,
    /// 99.9th percentile latency (ms).
    pub p999_ms: f64,
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// Worst observed latency (ms).
    pub max_ms: f64,
    /// Completed requests by HTTP status.
    pub by_status: BTreeMap<u16, u64>,
}

impl LoadgenReport {
    /// A human-readable one-screen summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "requests   {}", self.requests);
        let _ = writeln!(out, "errors     {}", self.errors);
        let _ = writeln!(out, "duration   {:.3} s", self.duration_s);
        let _ = writeln!(out, "throughput {:.1} req/s", self.throughput_rps);
        let _ = writeln!(
            out,
            "latency    p50 {:.3} ms · p99 {:.3} ms · p999 {:.3} ms · mean {:.3} ms · max {:.3} ms",
            self.p50_ms, self.p99_ms, self.p999_ms, self.mean_ms, self.max_ms
        );
        let statuses: Vec<String> = self
            .by_status
            .iter()
            .map(|(status, count)| format!("{status}:{count}"))
            .collect();
        let _ = writeln!(out, "statuses   {}", statuses.join(" "));
        out
    }

    /// A deterministic JSON rendering.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"requests\":{},\"errors\":{},\"duration_s\":{:.6},\"throughput_rps\":{:.3},\
             \"p50_ms\":{:.6},\"p99_ms\":{:.6},\"p999_ms\":{:.6},\"mean_ms\":{:.6},\"max_ms\":{:.6},\
             \"by_status\":{{",
            self.requests,
            self.errors,
            self.duration_s,
            self.throughput_rps,
            self.p50_ms,
            self.p99_ms,
            self.p999_ms,
            self.mean_ms,
            self.max_ms,
        );
        for (i, (status, count)) in self.by_status.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{status}\":{count}");
        }
        out.push_str("}}");
        out
    }
}

/// The latency tally one worker brings home.
#[derive(Default)]
struct WorkerTally {
    latencies_ms: Vec<f64>,
    by_status: BTreeMap<u16, u64>,
    errors: u64,
}

/// The schedule body for rotation slot `idx` — `distinct` bodies touch
/// `distinct` cache keys, so after one rotation the run is cache-hot.
fn schedule_body(idx: usize, distinct: usize) -> String {
    let variant = 1 + idx % distinct.max(1);
    format!("{{\"scenario\":\"sensors = 12\\ntargets = {variant}\\n\"}}")
}

/// The scenario each worker PUTs once for its session traffic (distinct
/// per worker so session shards spread).
fn session_scenario(worker: usize) -> String {
    let sensors = 8 + worker % 8;
    format!("{{\"scenario\":\"sensors = {sensors}\\ntargets = 2\\n\"}}")
}

/// One request over either client discipline.
fn fire(
    addr: SocketAddr,
    conn: &mut Option<ClientConn>,
    keep_alive: bool,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<Response> {
    if !keep_alive {
        return client::request(addr, method, path, &[], body);
    }
    if conn.is_none() {
        *conn = Some(ClientConn::connect(addr)?);
    }
    let live = conn.as_mut().unwrap_or_else(|| unreachable!());
    match live.request(method, path, &[], body) {
        Ok(response) => {
            // The server announces when a response is the last on this
            // connection (request cap, shutdown); reconnect next time
            // rather than misreading the coming EOF as a transport error.
            if response.header("connection") == Some("close") {
                *conn = None;
            }
            Ok(response)
        }
        Err(e) => {
            // An unannounced close (idle timeout while paced open-loop);
            // reconnect once before reporting an error.
            *conn = None;
            Err(e)
        }
    }
}

/// The percentile `p` (0..=100) of `sorted` latencies.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let idx = (rank.round() as usize).min(sorted.len() - 1);
    sorted[idx]
}

/// Runs the configured load against a live daemon and aggregates.
///
/// # Errors
///
/// Address-resolution failure, or every request erroring (a daemon that
/// is not there at all). Individual request failures are tallied, not
/// fatal.
#[allow(clippy::too_many_lines)]
pub fn run_loadgen(config: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let addr: SocketAddr =
        config.addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::AddrNotAvailable, "unresolvable address")
        })?;
    let duration = Duration::from_millis(config.duration_ms.max(1));
    let concurrency = config.concurrency.max(1);
    let seeds = SeedSequence::new(config.seed);
    // Open loop: each worker fires every (concurrency / rate) seconds so
    // the aggregate arrival rate is `rate`, regardless of response times.
    let pace = config
        .rate
        .map(|rate| Duration::from_secs_f64((concurrency as f64 / rate.max(0.001)).min(60.0)));

    let started = Instant::now();
    let deadline = started + duration;
    let tallies: Vec<WorkerTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|worker| {
                let mut rng = seeds.nth_rng(worker as u64);
                let config = config.clone();
                scope.spawn(move || {
                    let mut tally = WorkerTally::default();
                    let mut conn: Option<ClientConn> = None;
                    let mut session_id: Option<String> = None;
                    let mut idx = worker; // stagger cache-key rotations
                    let mut reweight_flip = false;
                    let mut next_fire = Instant::now();
                    while Instant::now() < deadline {
                        if let Some(pace) = pace {
                            let now = Instant::now();
                            if now < next_fire {
                                std::thread::sleep(next_fire - now);
                            }
                            // When behind, fire immediately — open loop
                            // does not let slow responses gate arrivals.
                            next_fire += pace;
                        }
                        let session = config.session_ratio > 0.0
                            && rng.random_range(0.0..1.0) < config.session_ratio;
                        let (method, path, body);
                        if session {
                            if let Some(id) = &session_id {
                                method = "PATCH";
                                path = format!("/v1/scenario/{id}");
                                let w = if reweight_flip { "0.75" } else { "0.5" };
                                reweight_flip = !reweight_flip;
                                body = format!("{{\"deltas\":\"reweight 0 {w}\\n\"}}");
                            } else {
                                method = "PUT";
                                path = "/v1/scenario".to_string();
                                body = session_scenario(worker);
                            }
                        } else {
                            method = "POST";
                            path = "/v1/schedule".to_string();
                            body = schedule_body(idx, config.distinct);
                            idx += 1;
                        }
                        let fired = Instant::now();
                        match fire(addr, &mut conn, config.keep_alive, method, &path, &body) {
                            Ok(response) => {
                                tally
                                    .latencies_ms
                                    .push(fired.elapsed().as_secs_f64() * 1_000.0);
                                *tally.by_status.entry(response.status).or_insert(0) += 1;
                                if session && session_id.is_none() && response.status == 200 {
                                    session_id = extract_session_id(&response.body);
                                }
                            }
                            Err(_) => tally.errors += 1,
                        }
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let duration_s = started.elapsed().as_secs_f64();

    if config.shutdown_after {
        let _ = client::request(addr, "POST", "/v1/shutdown", &[], "");
    }

    let mut latencies: Vec<f64> = Vec::new();
    let mut by_status: BTreeMap<u16, u64> = BTreeMap::new();
    let mut errors = 0u64;
    for tally in tallies {
        latencies.extend(tally.latencies_ms);
        errors += tally.errors;
        for (status, count) in tally.by_status {
            *by_status.entry(status).or_insert(0) += count;
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let requests = latencies.len() as u64;
    if requests == 0 && errors > 0 {
        return Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            format!("all {errors} requests failed — is the daemon up at {addr}?"),
        ));
    }
    let mean_ms = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    Ok(LoadgenReport {
        requests,
        errors,
        duration_s,
        #[allow(clippy::cast_precision_loss)]
        throughput_rps: requests as f64 / duration_s.max(1e-9),
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        p999_ms: percentile(&latencies, 99.9),
        mean_ms,
        max_ms: latencies.last().copied().unwrap_or(0.0),
        by_status,
    })
}

/// Pulls the `"session"` id out of a PUT response body.
fn extract_session_id(body: &str) -> Option<String> {
    cool_common::json::parse(body)
        .ok()?
        .get("session")
        .and_then(cool_common::json::Value::as_str)
        .map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};

    #[test]
    fn percentiles_pick_sane_indices() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert!((percentile(&sorted, 50.0) - 50.0).abs() <= 1.0);
        assert!((percentile(&sorted, 99.0) - 99.0).abs() <= 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.5], 99.9), 7.5);
    }

    #[test]
    fn schedule_bodies_rotate_distinct_cache_keys() {
        assert_eq!(schedule_body(0, 4), schedule_body(4, 4));
        assert_ne!(schedule_body(0, 4), schedule_body(1, 4));
        assert!(cool_common::json::parse(&schedule_body(3, 4)).is_ok());
        assert!(cool_common::json::parse(&session_scenario(2)).is_ok());
    }

    #[test]
    fn report_renders_text_and_json() {
        let report = LoadgenReport {
            requests: 10,
            errors: 1,
            duration_s: 0.5,
            throughput_rps: 20.0,
            p50_ms: 1.0,
            p99_ms: 2.0,
            p999_ms: 2.5,
            mean_ms: 1.2,
            max_ms: 3.0,
            by_status: BTreeMap::from([(200, 9), (429, 1)]),
        };
        let text = report.render();
        assert!(text.contains("throughput 20.0 req/s"), "{text}");
        assert!(text.contains("200:9"), "{text}");
        let json = cool_common::json::parse(&report.to_json()).unwrap();
        assert_eq!(
            json.get("requests")
                .and_then(cool_common::json::Value::as_f64),
            Some(10.0)
        );
        assert!(json.get("by_status").is_some());
    }

    /// End-to-end: a short mixed closed-loop run against a live event-mode
    /// daemon produces 200s for both traffic classes.
    #[test]
    fn loadgen_drives_a_live_daemon() {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());
        let report = run_loadgen(&LoadgenConfig {
            addr: addr.to_string(),
            duration_ms: 300,
            concurrency: 2,
            session_ratio: 0.3,
            distinct: 2,
            shutdown_after: true,
            ..LoadgenConfig::default()
        })
        .unwrap();
        assert!(report.requests > 0, "{report:?}");
        assert!(report.by_status.contains_key(&200), "{report:?}");
        assert_eq!(report.errors, 0, "{report:?}");
        handle.join().unwrap().unwrap();
    }
}
