//! The daemon's metric surface, rendered on `GET /metrics` in Prometheus
//! text exposition format.
//!
//! Every series is prefixed `cool_` and built from the shared primitives
//! in [`cool_common::metrics`]; scrape-side dashboards get request counts
//! by endpoint/status, a latency histogram, cache hit/miss/eviction
//! counters, and live queue/in-flight gauges.

use cool_common::metrics::{Counter, CounterVec, Gauge, Histogram};
use std::fmt::Write as _;
use std::time::Instant;

/// All metrics the service exports.
#[derive(Debug)]
pub struct ServeMetrics {
    /// `cool_requests_total{endpoint=...,status=...}`.
    pub requests: CounterVec,
    /// `cool_request_seconds` — enqueue-to-response latency.
    pub latency: Histogram,
    /// `cool_cache_hits_total`.
    pub cache_hits: Counter,
    /// `cool_cache_misses_total`.
    pub cache_misses: Counter,
    /// `cool_cache_evictions_total`.
    pub cache_evictions: Counter,
    /// `cool_cache_entries` — current cache population.
    pub cache_entries: Gauge,
    /// `cool_queue_depth` — jobs accepted but not yet picked up.
    pub queue_depth: Gauge,
    /// `cool_inflight_requests` — jobs a worker is currently executing.
    pub in_flight: Gauge,
    /// `cool_queue_rejections_total` — requests shed with 429.
    pub queue_rejections: Counter,
    /// `cool_request_timeouts_total` — requests abandoned with 408.
    pub timeouts: Counter,
    /// `cool_sessions_active` — live sessions in the session store.
    pub sessions_active: Gauge,
    /// `cool_session_repairs_total{mode="incremental|full"}`.
    pub session_repairs: CounterVec,
    /// `cool_session_cells_touched_total` — (sensor, slot) cells the
    /// warm-start repairs re-evaluated.
    pub session_cells_touched: Counter,
    /// `cool_session_repair_seconds` — patch-to-repaired latency.
    pub session_repair_seconds: Histogram,
    /// `cool_connections_total` — TCP connections accepted.
    pub connections: Counter,
    /// `cool_keepalive_reuses_total` — requests served on an
    /// already-established keep-alive connection (second and later).
    pub keepalive_reuses: Counter,
    /// `cool_shard_queue_depth{shard=...}` — queued jobs per worker shard.
    pub shard_queue_depth: Vec<Gauge>,
    /// `cool_shard_cache_entries{shard=...}` — entries per cache shard.
    pub shard_cache_entries: Vec<Gauge>,
    started: Instant,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

impl ServeMetrics {
    /// A fresh registry with one shard; uptime counts from now.
    #[must_use]
    pub fn new() -> Self {
        ServeMetrics::with_shards(1, 1)
    }

    /// A fresh registry sized for `worker_shards` queue gauges and
    /// `cache_shards` cache gauges.
    #[must_use]
    pub fn with_shards(worker_shards: usize, cache_shards: usize) -> Self {
        ServeMetrics {
            requests: CounterVec::new(),
            latency: Histogram::latency_seconds(),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            cache_evictions: Counter::new(),
            cache_entries: Gauge::new(),
            queue_depth: Gauge::new(),
            in_flight: Gauge::new(),
            queue_rejections: Counter::new(),
            timeouts: Counter::new(),
            sessions_active: Gauge::new(),
            session_repairs: CounterVec::new(),
            session_cells_touched: Counter::new(),
            session_repair_seconds: Histogram::latency_seconds(),
            connections: Counter::new(),
            keepalive_reuses: Counter::new(),
            shard_queue_depth: (0..worker_shards.max(1)).map(|_| Gauge::new()).collect(),
            shard_cache_entries: (0..cache_shards.max(1)).map(|_| Gauge::new()).collect(),
            started: Instant::now(),
        }
    }

    /// Renders a labeled per-shard gauge family in the same exposition
    /// format the shared primitives emit.
    fn render_shard_gauges(out: &mut String, name: &str, help: &str, shards: &[Gauge]) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        for (shard, gauge) in shards.iter().enumerate() {
            let _ = writeln!(out, "{name}{{shard=\"{shard}\"}} {}", gauge.get());
        }
    }

    /// Records one session repair (shared by PUT scratch solves and
    /// PATCH warm starts).
    pub fn observe_repair(&self, mode: &str, cells_touched: u64, seconds: f64) {
        self.session_repairs.inc(&format!("mode=\"{mode}\""));
        self.session_cells_touched.add(cells_touched);
        self.session_repair_seconds.observe(seconds);
    }

    /// Records one finished request.
    pub fn observe_request(&self, endpoint: &str, status: u16, seconds: f64) {
        self.requests
            .inc(&format!("endpoint=\"{endpoint}\",status=\"{status}\""));
        self.latency.observe(seconds);
    }

    /// The full Prometheus text page.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        self.requests.render(
            &mut out,
            "cool_requests_total",
            "Requests served, by endpoint and HTTP status.",
        );
        self.latency.render(
            &mut out,
            "cool_request_seconds",
            "Wall-clock seconds from accept to response.",
        );
        self.cache_hits.render(
            &mut out,
            "cool_cache_hits_total",
            "Schedule requests answered from the LRU cache.",
        );
        self.cache_misses.render(
            &mut out,
            "cool_cache_misses_total",
            "Schedule requests computed cold.",
        );
        self.cache_evictions.render(
            &mut out,
            "cool_cache_evictions_total",
            "Cache entries evicted by the LRU policy.",
        );
        self.cache_entries.render(
            &mut out,
            "cool_cache_entries",
            "Entries currently held by the schedule cache.",
        );
        self.queue_depth.render(
            &mut out,
            "cool_queue_depth",
            "Accepted connections waiting for a worker.",
        );
        self.in_flight.render(
            &mut out,
            "cool_inflight_requests",
            "Requests currently being executed by workers.",
        );
        self.queue_rejections.render(
            &mut out,
            "cool_queue_rejections_total",
            "Connections shed with HTTP 429 because the queue was full.",
        );
        self.timeouts.render(
            &mut out,
            "cool_request_timeouts_total",
            "Requests abandoned with HTTP 408 after the wall-clock budget.",
        );
        self.connections.render(
            &mut out,
            "cool_connections_total",
            "TCP connections accepted by the daemon.",
        );
        self.keepalive_reuses.render(
            &mut out,
            "cool_keepalive_reuses_total",
            "Requests served on an already-established keep-alive connection.",
        );
        Self::render_shard_gauges(
            &mut out,
            "cool_shard_queue_depth",
            "Queued jobs per worker shard.",
            &self.shard_queue_depth,
        );
        Self::render_shard_gauges(
            &mut out,
            "cool_shard_cache_entries",
            "Schedule-cache entries per cache shard.",
            &self.shard_cache_entries,
        );
        self.sessions_active.render(
            &mut out,
            "cool_sessions_active",
            "Live sessions currently held by the session store.",
        );
        self.session_repairs.render(
            &mut out,
            "cool_session_repairs_total",
            "Session schedule repairs, by mode (incremental warm start vs full re-solve).",
        );
        self.session_cells_touched.render(
            &mut out,
            "cool_session_cells_touched_total",
            "(sensor, slot) cells re-evaluated by session repairs.",
        );
        self.session_repair_seconds.render(
            &mut out,
            "cool_session_repair_seconds",
            "Wall-clock seconds spent repairing session schedules.",
        );
        // Sparse-evaluation observability: process-wide totals maintained by
        // cool-utility's SparseSumEvaluator. parts_touched / gain_queries is
        // the realised average degree — compare against the target count to
        // see the O(deg) win over the dense O(m) walk.
        let stats = cool_utility::stats::snapshot();
        let gain_queries = Counter::new();
        gain_queries.add(stats.gain_queries);
        gain_queries.render(
            &mut out,
            "cool_gain_queries_total",
            "Marginal gain/loss queries answered by sparse sum evaluators.",
        );
        // Per-family attribution from the SoA kernels (a mixed-family query
        // counts once per family it reached, so the labeled series can sum
        // to more than the bare total). All six labels are always emitted so
        // scrapes see a stable series set.
        for (i, label) in cool_utility::stats::FAMILY_LABELS.iter().enumerate() {
            let _ = writeln!(
                out,
                "cool_gain_queries_total{{family=\"{label}\"}} {}",
                stats.family_queries[i]
            );
        }
        let parts_touched = Counter::new();
        parts_touched.add(stats.parts_touched);
        parts_touched.render(
            &mut out,
            "cool_parts_touched_total",
            "Incident utility parts visited by those gain/loss queries.",
        );
        let uptime = Gauge::new();
        uptime.set(i64::try_from(self.started.elapsed().as_secs()).unwrap_or(i64::MAX));
        uptime.render(
            &mut out,
            "cool_uptime_seconds",
            "Seconds since the daemon started.",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_contains_every_family() {
        let m = ServeMetrics::new();
        m.observe_request("schedule", 200, 0.012);
        m.observe_request("schedule", 422, 0.001);
        m.cache_hits.inc();
        m.cache_misses.inc();
        m.queue_depth.set(3);
        m.sessions_active.set(2);
        m.observe_repair("incremental", 12, 0.004);
        m.observe_repair("full", 40, 0.009);
        let page = m.render();
        for series in [
            "cool_requests_total{endpoint=\"schedule\",status=\"200\"} 1",
            "cool_requests_total{endpoint=\"schedule\",status=\"422\"} 1",
            "cool_request_seconds_bucket",
            "cool_request_seconds_count 2",
            "cool_cache_hits_total 1",
            "cool_cache_misses_total 1",
            "cool_cache_evictions_total 0",
            "cool_queue_depth 3",
            "cool_inflight_requests 0",
            "cool_queue_rejections_total 0",
            "cool_request_timeouts_total 0",
            "cool_sessions_active 2",
            "cool_session_repairs_total{mode=\"incremental\"} 1",
            "cool_session_repairs_total{mode=\"full\"} 1",
            "cool_session_cells_touched_total 52",
            "cool_session_repair_seconds_count 2",
            "cool_connections_total 0",
            "cool_keepalive_reuses_total 0",
            "cool_shard_queue_depth{shard=\"0\"} 0",
            "cool_shard_cache_entries{shard=\"0\"} 0",
            "cool_gain_queries_total",
            "cool_gain_queries_total{family=\"detection\"}",
            "cool_gain_queries_total{family=\"logsum\"}",
            "cool_gain_queries_total{family=\"linear\"}",
            "cool_gain_queries_total{family=\"coverage\"}",
            "cool_gain_queries_total{family=\"facility\"}",
            "cool_gain_queries_total{family=\"kcover\"}",
            "cool_parts_touched_total",
            "cool_uptime_seconds",
        ] {
            assert!(page.contains(series), "missing `{series}` in:\n{page}");
        }
    }

    #[test]
    fn shard_gauges_render_one_series_per_shard() {
        let m = ServeMetrics::with_shards(2, 3);
        m.shard_queue_depth[1].set(4);
        m.shard_cache_entries[2].set(9);
        let page = m.render();
        assert!(
            page.contains("cool_shard_queue_depth{shard=\"0\"} 0"),
            "{page}"
        );
        assert!(
            page.contains("cool_shard_queue_depth{shard=\"1\"} 4"),
            "{page}"
        );
        assert!(
            page.contains("cool_shard_cache_entries{shard=\"2\"} 9"),
            "{page}"
        );
        assert!(!page.contains("cool_shard_queue_depth{shard=\"2\"}"));
    }

    /// The sparse-evaluation counters on the page reflect
    /// `cool_utility::stats` — driving a sparse evaluator between renders
    /// must advance the reported totals.
    #[test]
    fn sparse_query_counters_advance_between_renders() {
        use cool_common::{SensorId, SensorSet};
        use cool_utility::{Evaluator, SumUtility, UtilityFunction};

        let m = ServeMetrics::new();
        let before = cool_utility::stats::snapshot();
        let u = SumUtility::multi_target_detection(
            &[
                SensorSet::from_indices(3, [0, 1]),
                SensorSet::from_indices(3, [1, 2]),
            ],
            0.4,
        );
        let e = u.evaluator();
        let _ = e.gain(SensorId(1)); // touches 2 parts
        let after = cool_utility::stats::snapshot();
        assert!(after.gain_queries > before.gain_queries);
        assert!(after.parts_touched >= before.parts_touched + 2);
        let page = m.render();
        let line = page
            .lines()
            .find(|l| l.starts_with("cool_gain_queries_total"))
            .expect("series rendered");
        let rendered: u64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
        // Global counters shared with concurrently-running tests: the page
        // must report at least everything recorded up to the render.
        assert!(rendered >= after.gain_queries);
        // The detection-family series advanced too (the query above only
        // touched detection parts) and reports at least the snapshot value.
        assert!(after.family_queries[0] > before.family_queries[0]);
        let family_line = page
            .lines()
            .find(|l| l.starts_with("cool_gain_queries_total{family=\"detection\"}"))
            .expect("family series rendered");
        let rendered: u64 = family_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!(rendered >= after.family_queries[0]);
    }

    #[test]
    fn histogram_buckets_accumulate() {
        let m = ServeMetrics::new();
        m.observe_request("lint", 200, 0.002);
        m.observe_request("lint", 200, 0.2);
        let page = m.render();
        assert!(page.contains("cool_request_seconds_bucket{le=\"+Inf\"} 2"));
    }
}
