//! A minimal `poll(2)` readiness interface for the event-loop server.
//!
//! `std` offers no readiness API, and the workspace takes no external
//! dependencies, so this module declares the one libc symbol it needs
//! (`std` already links libc on every unix target) and wraps the single
//! unsafe call site behind a safe, bounds-checked API. The workspace-wide
//! `unsafe_code = "deny"` lint is overridden for exactly that call.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_ulong};

/// There is data to read.
pub const POLLIN: i16 = 0x001;
/// Writing will not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of the `poll(2)` fd array — layout fixed by POSIX.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events, filled in by the kernel.
    pub revents: i16,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Blocks until at least one fd in `fds` is ready, the timeout elapses
/// (`Ok(0)`), or a signal interrupts the wait (retried internally).
///
/// `timeout_ms < 0` means wait indefinitely, `0` means poll and return.
///
/// # Errors
///
/// Propagates `poll(2)` failures other than `EINTR`.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid, exclusively-borrowed slice whose layout
        // matches the POSIX `struct pollfd` (repr(C), i32/i16/i16), and
        // `nfds` is exactly its length, so the kernel writes only within
        // bounds. No other invariants are required of poll(2).
        #[allow(unsafe_code)]
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc >= 0 {
            #[allow(clippy::cast_sign_loss)]
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// A reusable fd set: `register` interests each iteration, `wait`, then
/// read back per-token readiness.
#[derive(Default)]
pub struct PollSet {
    fds: Vec<PollFd>,
    tokens: Vec<usize>,
}

impl PollSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        PollSet::default()
    }

    /// Drops all registered interests (capacity is retained).
    pub fn clear(&mut self) {
        self.fds.clear();
        self.tokens.clear();
    }

    /// Watches `fd` for readability and/or writability, tagged `token`.
    pub fn register(&mut self, fd: RawFd, token: usize, read: bool, write: bool) {
        let mut events = 0i16;
        if read {
            events |= POLLIN;
        }
        if write {
            events |= POLLOUT;
        }
        self.fds.push(PollFd {
            fd,
            events,
            revents: 0,
        });
        self.tokens.push(token);
    }

    /// Waits for readiness; see [`poll_fds`] for timeout semantics.
    ///
    /// # Errors
    ///
    /// Propagates `poll(2)` failures.
    pub fn wait(&mut self, timeout_ms: i32) -> io::Result<usize> {
        for fd in &mut self.fds {
            fd.revents = 0;
        }
        poll_fds(&mut self.fds, timeout_ms)
    }

    /// Iterates `(token, readable, writable)` for every fd with returned
    /// events. Error conditions (`POLLERR`/`POLLHUP`/`POLLNVAL`) are
    /// reported as readable so the owner reads the EOF/error and tears the
    /// connection down through the normal path.
    pub fn ready(&self) -> impl Iterator<Item = (usize, bool, bool)> + '_ {
        self.fds
            .iter()
            .zip(self.tokens.iter())
            .filter(|(fd, _)| fd.revents != 0)
            .map(|(fd, &token)| {
                let fail = fd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0;
                (
                    token,
                    fd.revents & POLLIN != 0 || fail,
                    fd.revents & POLLOUT != 0 || fail,
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn times_out_with_no_ready_fds() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut set = PollSet::new();
        set.register(listener.as_raw_fd(), 7, true, false);
        let n = set.wait(10).unwrap();
        assert_eq!(n, 0);
        assert_eq!(set.ready().count(), 0);
    }

    #[test]
    fn reports_readable_listener_and_stream() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();

        let mut set = PollSet::new();
        set.register(listener.as_raw_fd(), 1, true, false);
        assert!(set.wait(1000).unwrap() >= 1, "pending accept is readable");
        assert!(set.ready().any(|(token, read, _)| token == 1 && read));

        let (server_side, _) = listener.accept().unwrap();
        client.write_all(b"hi").unwrap();
        set.clear();
        set.register(server_side.as_raw_fd(), 2, true, false);
        // The client socket should also be writable immediately.
        set.register(client.as_raw_fd(), 3, false, true);
        assert!(set.wait(1000).unwrap() >= 1);
        let ready: Vec<_> = set.ready().collect();
        assert!(ready.iter().any(|&(token, read, _)| token == 2 && read));
        assert!(ready.iter().any(|&(token, _, write)| token == 3 && write));
    }
}
