//! The daemon itself: request routing, the sharded content-addressed
//! schedule cache and session store, per-request wall-clock budgets, and
//! graceful drain on shutdown — behind either of two transports.
//!
//! Request flow (DESIGN.md §8/§13): accept → parse → bounded worker queue
//! (429 when full) → route → lint pre-flight → cache lookup → `cool-core`
//! compute → cache fill → response. `POST /v1/shutdown` flips a flag the
//! acceptor polls; accepted work is drained before the listener closes.
//!
//! [`ServeMode::Event`] (default, unix) runs the non-blocking `poll(2)`
//! event loop in [`crate::event`] with HTTP/1.1 keep-alive and request
//! pipelining. [`ServeMode::Threaded`] is the legacy thread-per-connection
//! transport (one `connection: close` request per connection), retained as
//! the measured baseline for `perf_serve` and as the non-unix fallback.

use crate::api::{
    self, parse_lint_body, parse_schedule_body, ApiError, ScheduleBody, ScheduleItem,
};
use crate::http::{read_request, write_response, ReadError, Request};
use crate::metrics::ServeMetrics;
use crate::session_api;
use crate::shard::{ShardedCache, ShardedSessions};
use cool_common::parallel::{default_sweep_threads, WorkerPool};
use cool_common::CoolCode;
use cool_core::RepairConfig;
use cool_lint::lint_scenario_text;
use cool_scenario::Scenario;
use cool_session::{SessionEntry, SessionInstance, SessionStoreError};
use std::fmt::Write as _;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the legacy threaded acceptor sleeps when no connection is
/// pending (the event loop has no such idle latency — it blocks in
/// `poll(2)` until work arrives).
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Which transport serves requests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServeMode {
    /// Non-blocking `poll(2)` event loop with keep-alive and pipelining
    /// (unix only; falls back to [`ServeMode::Threaded`] elsewhere).
    #[default]
    Event,
    /// Legacy thread-per-connection, one `connection: close` request per
    /// connection — the PR 2 baseline.
    Threaded,
}

impl ServeMode {
    /// Parses the `--mode` flag value.
    #[must_use]
    pub fn parse(value: &str) -> Option<ServeMode> {
        match value {
            "event" => Some(ServeMode::Event),
            "threaded" => Some(ServeMode::Threaded),
            _ => None,
        }
    }

    /// The flag spelling of this mode.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ServeMode::Event => "event",
            ServeMode::Threaded => "threaded",
        }
    }
}

/// Tunables for one daemon instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7311` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing requests.
    pub threads: usize,
    /// Bounded queue capacity; beyond it requests are shed with 429.
    /// Split evenly across worker shards.
    pub queue_cap: usize,
    /// Schedule-cache capacity in entries (split across cache shards).
    pub cache_cap: usize,
    /// Per-request wall-clock budget in milliseconds (408 past it).
    pub timeout_ms: u64,
    /// Maximum live sessions in the `/v1/scenario` store; past it the
    /// least recently used session is evicted (its id answers 410).
    pub session_cap: usize,
    /// Dirty-sensor fraction above which a session PATCH abandons the
    /// warm start and re-solves from scratch.
    pub repair_threshold: f64,
    /// Transport: `poll(2)` event loop (default) or legacy threaded.
    pub mode: ServeMode,
    /// Shards for the cache, session store, and worker queue (worker
    /// shards are additionally capped by `threads`). One shard reproduces
    /// the single-lock PR 2 behaviour exactly.
    pub shards: usize,
    /// Requests served per keep-alive connection before the server closes
    /// it (event mode).
    pub keep_alive_max: usize,
    /// Milliseconds a keep-alive connection may sit idle between requests
    /// before the server closes it (event mode).
    pub idle_timeout_ms: u64,
    /// Honour `x-cool-test-sleep-ms` request headers (tests only) so e2e
    /// suites can deterministically saturate the queue or exceed budgets.
    pub test_hooks: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7311".to_string(),
            threads: default_sweep_threads(),
            queue_cap: 64,
            cache_cap: 128,
            timeout_ms: 30_000,
            session_cap: 64,
            repair_threshold: RepairConfig::DEFAULT_FULL_THRESHOLD,
            mode: ServeMode::default(),
            shards: default_sweep_threads(),
            keep_alive_max: 100,
            idle_timeout_ms: 5_000,
            test_hooks: false,
        }
    }
}

impl ServerConfig {
    /// Worker-queue shards: never more than worker threads (a shard with
    /// no thread would queue jobs nobody drains), never less than one.
    #[must_use]
    pub fn worker_shards(&self) -> usize {
        self.shards.clamp(1, self.threads.max(1))
    }

    /// Cache/session shards.
    #[must_use]
    pub fn cache_shards(&self) -> usize {
        self.shards.max(1)
    }
}

/// State shared by the acceptor and every worker.
pub(crate) struct AppState {
    pub(crate) config: ServerConfig,
    pub(crate) cache: ShardedCache,
    pub(crate) sessions: ShardedSessions,
    pub(crate) metrics: ServeMetrics,
    pub(crate) shutdown: AtomicBool,
}

impl AppState {
    pub(crate) fn new(config: ServerConfig) -> AppState {
        AppState {
            cache: ShardedCache::new(config.cache_shards(), config.cache_cap),
            sessions: ShardedSessions::new(config.cache_shards(), config.session_cap),
            metrics: ServeMetrics::with_shards(config.worker_shards(), config.cache_shards()),
            shutdown: AtomicBool::new(false),
            config,
        }
    }
}

/// A bound, not-yet-running daemon. [`Server::run`] consumes it and blocks
/// until `POST /v1/shutdown` is received and in-flight work has drained.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
}

impl Server {
    /// Binds the listener described by `config`.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures from the OS.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            state: Arc::new(AppState::new(config)),
        })
    }

    /// The actual bound address (useful with `:0` ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates `getsockname` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until shutdown is requested, then drains accepted requests
    /// and returns.
    ///
    /// # Errors
    ///
    /// Only setup failures surface here; per-connection I/O errors are
    /// contained within their worker.
    pub fn run(self) -> io::Result<()> {
        #[cfg(unix)]
        if self.state.config.mode == ServeMode::Event {
            return crate::event::run(self.listener, self.state);
        }
        self.run_threaded()
    }

    /// The legacy thread-per-connection transport. `io::Result` keeps the
    /// signature parallel to the event transport's fallible run.
    #[allow(clippy::unnecessary_wraps)]
    fn run_threaded(self) -> io::Result<()> {
        let state = Arc::clone(&self.state);
        let worker_state = Arc::clone(&self.state);
        let pool: WorkerPool<(TcpStream, Instant)> = WorkerPool::new(
            state.config.threads,
            state.config.queue_cap,
            move |(stream, accepted_at)| {
                worker_state.metrics.queue_depth.dec();
                worker_state.metrics.in_flight.inc();
                handle_connection(&worker_state, stream, accepted_at);
                worker_state.metrics.in_flight.dec();
            },
        );

        loop {
            if state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    state.metrics.connections.inc();
                    state.metrics.queue_depth.inc();
                    if let Err(rejected) = pool.try_submit((stream, Instant::now())) {
                        state.metrics.queue_depth.dec();
                        state.metrics.queue_rejections.inc();
                        let (stream, accepted_at) = rejected.into_job();
                        reject_overloaded(&state, stream, accepted_at);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => {
                    // Transient accept failure (e.g. aborted handshake);
                    // yield briefly and keep serving.
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        }
        // Stop intake, run every accepted request to completion, join.
        pool.shutdown();
        Ok(())
    }
}

/// Sheds one connection with HTTP 429 (`COOL-E018`), inline on the
/// acceptor thread.
///
/// The peer's request is consumed (bounded by the parser's size limits)
/// before the response goes out: closing a socket with unread bytes in its
/// receive buffer sends RST, which would tear the 429 off the wire before
/// the client reads it. The consuming read is bounded by the configured
/// request budget, not a hardcoded constant, so `--timeout-ms 50` really
/// does shed in ~50 ms.
fn reject_overloaded(state: &AppState, mut stream: TcpStream, accepted_at: Instant) {
    let budget = Duration::from_millis(state.config.timeout_ms.max(1));
    let _ = stream.set_read_timeout(Some(budget));
    let _ = stream.set_write_timeout(Some(budget));
    if let Ok(clone) = stream.try_clone() {
        let _ = read_request(&mut BufReader::new(clone));
    }
    let err = ApiError::overloaded();
    let _ = write_response(
        &mut stream,
        err.status,
        "application/json",
        &[],
        err.body().as_bytes(),
    );
    state
        .metrics
        .observe_request("schedule", err.status, accepted_at.elapsed().as_secs_f64());
}

/// The endpoint label used in metrics for a request target.
pub(crate) fn endpoint_label(target: &str) -> &'static str {
    if target == "/v1/scenario" || target.starts_with("/v1/scenario/") {
        return "session";
    }
    match target {
        "/v1/schedule" => "schedule",
        "/v1/lint" => "lint",
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        "/v1/shutdown" => "shutdown",
        _ => "other",
    }
}

/// Reads one request off `stream`, routes it, writes one response
/// (threaded transport).
fn handle_connection(state: &AppState, stream: TcpStream, accepted_at: Instant) {
    let budget = Duration::from_millis(state.config.timeout_ms);
    // Bound blocking reads by the request budget so a silent peer cannot
    // pin a worker forever.
    let _ = stream.set_read_timeout(Some(budget));
    let _ = stream.set_write_timeout(Some(budget));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut stream = stream;

    let request = match read_request(&mut reader) {
        Ok(request) => request,
        Err(ReadError::Closed) => return,
        Err(ReadError::Io(e)) => {
            // A peer stalling mid-request (slow loris) trips the socket
            // read timeout; answer a typed 408 best-effort so the client
            // sees the budget expire rather than a bare FIN.
            if matches!(
                e.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ) {
                state.metrics.timeouts.inc();
                let err = ApiError::timeout(u128::from(state.config.timeout_ms));
                respond(
                    state,
                    &mut stream,
                    "other",
                    accepted_at,
                    err.status,
                    &[],
                    &err.body(),
                );
            }
            return;
        }
        Err(ReadError::BadRequest(message)) => {
            let err = ApiError::malformed(message);
            respond(
                state,
                &mut stream,
                "other",
                accepted_at,
                err.status,
                &[],
                &err.body(),
            );
            return;
        }
        Err(ReadError::TooLarge) => {
            let mut err = ApiError::malformed("request exceeds size limits");
            err.status = 413;
            respond(
                state,
                &mut stream,
                "other",
                accepted_at,
                err.status,
                &[],
                &err.body(),
            );
            return;
        }
    };

    let endpoint = endpoint_label(&request.target);
    let (status, extra, body) = route(state, &request, accepted_at);
    let extra_refs: Vec<(&str, &str)> = extra
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    respond(
        state,
        &mut stream,
        endpoint,
        accepted_at,
        status,
        &extra_refs,
        &body,
    );
}

/// The content type for a routed response.
pub(crate) fn content_type_for(endpoint: &str, status: u16) -> &'static str {
    if endpoint == "metrics" && status == 200 {
        "text/plain; version=0.0.4"
    } else {
        "application/json"
    }
}

/// Writes the response and records the request metric.
fn respond(
    state: &AppState,
    stream: &mut TcpStream,
    endpoint: &str,
    accepted_at: Instant,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) {
    let content_type = content_type_for(endpoint, status);
    let _ = write_response(stream, status, content_type, extra_headers, body.as_bytes());
    state
        .metrics
        .observe_request(endpoint, status, accepted_at.elapsed().as_secs_f64());
}

pub(crate) type Routed = (u16, Vec<(String, String)>, String);

/// Dispatches a parsed request to its handler.
pub(crate) fn route(state: &AppState, request: &Request, accepted_at: Instant) -> Routed {
    match (request.method.as_str(), request.target.as_str()) {
        ("POST", "/v1/schedule") => handle_schedule(state, request, accepted_at),
        ("POST", "/v1/lint") => handle_lint(request),
        ("GET", "/healthz") => (
            200,
            Vec::new(),
            "{\"status\":\"ok\",\"service\":\"cool-serve\"}".to_string(),
        ),
        ("GET", "/metrics") => {
            let entries = state.cache.len();
            state
                .metrics
                .cache_entries
                .set(i64::try_from(entries).unwrap_or(i64::MAX));
            for shard in 0..state.cache.shard_count() {
                state.metrics.shard_cache_entries[shard]
                    .set(i64::try_from(state.cache.shard_len(shard)).unwrap_or(i64::MAX));
            }
            (200, Vec::new(), state.metrics.render())
        }
        ("POST", "/v1/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            (
                200,
                Vec::new(),
                "{\"status\":\"ok\",\"message\":\"draining in-flight requests\"}".to_string(),
            )
        }
        (_, target) if target == "/v1/scenario" || target.starts_with("/v1/scenario/") => {
            route_session(state, request)
        }
        (_, "/v1/schedule" | "/v1/lint" | "/healthz" | "/metrics" | "/v1/shutdown") => {
            let err = ApiError::malformed("method not allowed for this path");
            (405, Vec::new(), err.body())
        }
        _ => {
            let err = ApiError::malformed("no such endpoint");
            (404, Vec::new(), err.body())
        }
    }
}

/// Runs one schedule item through lint → cache → compute, returning the
/// response body and whether it was served from cache.
fn process_item(state: &AppState, item: &ScheduleItem) -> Result<(String, bool), ApiError> {
    let (scenario, warnings) = api::resolve_and_lint(item)?;
    let key = api::cache_key(&scenario, &item.algorithm);
    if let Some(body) = state.cache.get(&key) {
        state.metrics.cache_hits.inc();
        return Ok((body, true));
    }
    let body = api::compute_response(&scenario, &item.algorithm, &warnings)?;
    state.metrics.cache_misses.inc();
    let shard = state.cache.shard_of(&key);
    let (evicted, shard_len) = state.cache.insert(key, body.clone());
    if evicted.is_some() {
        state.metrics.cache_evictions.inc();
    }
    state.metrics.shard_cache_entries[shard].set(i64::try_from(shard_len).unwrap_or(i64::MAX));
    state
        .metrics
        .cache_entries
        .set(i64::try_from(state.cache.len()).unwrap_or(i64::MAX));
    Ok((body, false))
}

/// The event transport's IO-thread fast path: a single-item
/// `POST /v1/schedule` whose response is already memoised is answered
/// without the worker handoff (two context switches saved per request on
/// the hot cache-hit path). Anything else — misses, batches, other
/// endpoints, or a daemon running with test hooks — returns `None` and
/// takes the queued path with its usual 429 backpressure.
#[cfg(unix)]
pub(crate) fn schedule_cache_hit(state: &AppState, request: &Request) -> Option<String> {
    if state.config.test_hooks || request.method != "POST" || request.target != "/v1/schedule" {
        return None;
    }
    let ScheduleBody::Single(item) = parse_schedule_body(&request.body).ok()? else {
        return None;
    };
    let (scenario, _warnings) = api::resolve_and_lint(&item).ok()?;
    let key = api::cache_key(&scenario, &item.algorithm);
    let body = state.cache.get(&key)?;
    state.metrics.cache_hits.inc();
    Some(body)
}

/// `POST /v1/schedule` — single or batch.
fn handle_schedule(state: &AppState, request: &Request, accepted_at: Instant) -> Routed {
    if state.config.test_hooks {
        if let Some(ms) = request
            .header("x-cool-test-sleep-ms")
            .and_then(|v| v.parse::<u64>().ok())
        {
            std::thread::sleep(Duration::from_millis(ms.min(60_000)));
        }
    }
    let budget = Duration::from_millis(state.config.timeout_ms);
    let over_budget = |at: Instant| at.elapsed() > budget;
    if over_budget(accepted_at) {
        state.metrics.timeouts.inc();
        let err = ApiError::timeout(u128::from(state.config.timeout_ms));
        return (err.status, Vec::new(), err.body());
    }

    let parsed = match parse_schedule_body(&request.body) {
        Ok(parsed) => parsed,
        Err(err) => return (err.status, Vec::new(), err.body()),
    };

    let routed = match parsed {
        ScheduleBody::Single(item) => match process_item(state, &item) {
            Ok((body, cached)) => {
                let cache_header = if cached { "hit" } else { "miss" };
                (
                    200,
                    vec![("x-cool-cache".to_string(), cache_header.to_string())],
                    body,
                )
            }
            Err(err) => (err.status, Vec::new(), err.body()),
        },
        ScheduleBody::Batch(items) => {
            let threads = state.config.threads.max(1);
            let results =
                cool_common::parallel_map(threads, items, |item| process_item(state, &item));
            let mut hits = 0usize;
            let mut body = String::from("{\"status\":\"ok\",\"results\":[");
            for (i, result) in results.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                match result {
                    Ok((item_body, cached)) => {
                        hits += usize::from(*cached);
                        let _ = write!(
                            body,
                            "{{\"http_status\":200,\"cached\":{cached},\"response\":{item_body}}}"
                        );
                    }
                    Err(err) => {
                        let _ = write!(
                            body,
                            "{{\"http_status\":{},\"cached\":false,\"response\":{}}}",
                            err.status,
                            err.body()
                        );
                    }
                }
            }
            let _ = write!(
                body,
                "],\"count\":{},\"cache_hits\":{hits}}}",
                results.len()
            );
            (200, Vec::new(), body)
        }
    };

    // The compute itself may have blown the budget (e.g. a huge instance);
    // answer 408 rather than pretend the deadline held.
    if over_budget(accepted_at) {
        state.metrics.timeouts.inc();
        let err = ApiError::timeout(u128::from(state.config.timeout_ms));
        return (err.status, Vec::new(), err.body());
    }
    routed
}

/// Dispatches the `/v1/scenario` session family:
/// `PUT /v1/scenario`, `PATCH|DELETE /v1/scenario/{id}`,
/// `GET /v1/scenario/{id}/schedule`.
fn route_session(state: &AppState, request: &Request) -> Routed {
    let method = request.method.as_str();
    let rest = request
        .target
        .strip_prefix("/v1/scenario")
        .unwrap_or_default();
    match (method, rest) {
        ("PUT", "") => handle_session_put(state, request),
        (_, "") => {
            let err = ApiError::malformed("use PUT to create a session");
            (405, Vec::new(), err.body())
        }
        (_, _) => {
            let id = rest.trim_start_matches('/');
            if let Some(id) = id.strip_suffix("/schedule") {
                if method == "GET" {
                    return handle_session_schedule(state, id);
                }
                let err = ApiError::malformed("use GET on /schedule");
                return (405, Vec::new(), err.body());
            }
            match method {
                "PATCH" => handle_session_patch(state, request, id),
                "DELETE" => handle_session_delete(state, id),
                _ => {
                    let err =
                        ApiError::malformed("use PATCH or DELETE on a session, GET on /schedule");
                    (405, Vec::new(), err.body())
                }
            }
        }
    }
}

/// Maps a store miss to its HTTP error.
fn session_miss(id: &str, miss: SessionStoreError) -> Routed {
    let err = match miss {
        SessionStoreError::Gone => session_api::session_gone(id),
        SessionStoreError::NotFound => session_api::session_not_found(id),
    };
    (err.status, Vec::new(), err.body())
}

/// `PUT /v1/scenario` — lint, solve from scratch, store as a session.
fn handle_session_put(state: &AppState, request: &Request) -> Routed {
    let text = match parse_lint_body(&request.body) {
        Ok(text) => text,
        Err(err) => return (err.status, Vec::new(), err.body()),
    };
    let report = lint_scenario_text(&text, "request");
    if report.error_count() > 0 {
        let code = report
            .diagnostics()
            .iter()
            .find(|d| d.code.is_error())
            .map_or(CoolCode::ScenarioFieldInvalid, |d| d.code);
        let err = ApiError {
            status: 422,
            code,
            message: "scenario rejected by cool-lint".to_string(),
            lint_json: Some(report.to_json()),
        };
        return (err.status, Vec::new(), err.body());
    }
    let scenario = match Scenario::parse(&text) {
        Ok(scenario) => scenario,
        Err(e) => {
            let err = ApiError::from(e);
            return (err.status, Vec::new(), err.body());
        }
    };
    let entry = SessionInstance::from_scenario(&scenario).and_then(SessionEntry::solve);
    let entry = match entry {
        Ok(entry) => entry,
        Err(message) => {
            let mut err = ApiError::malformed(message);
            err.status = 422;
            return (err.status, Vec::new(), err.body());
        }
    };
    let (id, evicted) = state.sessions.put(entry);
    state
        .metrics
        .sessions_active
        .set(i64::try_from(state.sessions.len()).unwrap_or(i64::MAX));
    let mut sessions = state.sessions.lock_for(&id);
    let body = match sessions.get(&id) {
        Ok(entry) => session_api::render_put_response(&id, entry, evicted.as_deref()),
        Err(miss) => return session_miss(&id, miss),
    };
    (200, Vec::new(), body)
}

/// `PATCH /v1/scenario/{id}` — apply deltas sequentially with warm-start
/// repair. Deltas apply in order; the first invalid one aborts the
/// remainder with 422 (earlier deltas in the body stay applied).
fn handle_session_patch(state: &AppState, request: &Request, id: &str) -> Routed {
    let deltas = match session_api::parse_patch_body(&request.body) {
        Ok(deltas) => deltas,
        Err(err) => return (err.status, Vec::new(), err.body()),
    };
    let config = RepairConfig {
        full_threshold: state.config.repair_threshold,
    };
    let mut sessions = state.sessions.lock_for(id);
    let entry = match sessions.get(id) {
        Ok(entry) => entry,
        Err(miss) => return session_miss(id, miss),
    };
    let mut repairs = Vec::with_capacity(deltas.len());
    for (i, delta) in deltas.iter().enumerate() {
        let started = Instant::now();
        match entry.patch(delta, &config) {
            Ok(stats) => {
                state.metrics.observe_repair(
                    stats.mode.as_str(),
                    stats.cells_touched,
                    started.elapsed().as_secs_f64(),
                );
                repairs.push(stats);
            }
            Err(message) => {
                let mut err = ApiError::malformed(format!(
                    "delta {} rejected after {} applied: {message}",
                    i + 1,
                    repairs.len()
                ));
                err.status = 422;
                return (err.status, Vec::new(), err.body());
            }
        }
    }
    let body = session_api::render_patch_response(id, entry, &repairs);
    (200, Vec::new(), body)
}

/// `GET /v1/scenario/{id}/schedule` — the session's current schedule.
fn handle_session_schedule(state: &AppState, id: &str) -> Routed {
    let mut sessions = state.sessions.lock_for(id);
    match sessions.get(id) {
        Ok(entry) => (
            200,
            Vec::new(),
            session_api::render_schedule_response(id, entry),
        ),
        Err(miss) => session_miss(id, miss),
    }
}

/// `DELETE /v1/scenario/{id}` — drop the session, leaving a tombstone.
fn handle_session_delete(state: &AppState, id: &str) -> Routed {
    match state.sessions.delete(id) {
        Ok(()) => {
            state
                .metrics
                .sessions_active
                .set(i64::try_from(state.sessions.len()).unwrap_or(i64::MAX));
            (200, Vec::new(), session_api::render_delete_response(id))
        }
        Err(miss) => session_miss(id, miss),
    }
}

/// `POST /v1/lint` — the pre-flight as a standalone endpoint.
fn handle_lint(request: &Request) -> Routed {
    let text = match parse_lint_body(&request.body) {
        Ok(text) => text,
        Err(err) => return (err.status, Vec::new(), err.body()),
    };
    let report = lint_scenario_text(&text, "request");
    if report.is_clean() {
        (
            200,
            Vec::new(),
            format!("{{\"status\":\"ok\",\"lint\":{}}}", report.to_json()),
        )
    } else {
        let code = report
            .diagnostics()
            .iter()
            .find(|d| d.code.is_error())
            .map_or(CoolCode::ScenarioFieldInvalid, |d| d.code);
        let err = ApiError {
            status: 422,
            code,
            message: "scenario rejected by cool-lint".to_string(),
            lint_json: Some(report.to_json()),
        };
        (err.status, Vec::new(), err.body())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_state(config: ServerConfig) -> AppState {
        AppState::new(config)
    }

    fn request(method: &str, target: &str, body: &str) -> Request {
        Request {
            method: method.to_string(),
            target: target.to_string(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn serve_mode_flag_round_trips() {
        assert_eq!(ServeMode::parse("event"), Some(ServeMode::Event));
        assert_eq!(ServeMode::parse("threaded"), Some(ServeMode::Threaded));
        assert_eq!(ServeMode::parse("fibers"), None);
        assert_eq!(ServeMode::Event.as_str(), "event");
        assert_eq!(ServeMode::default(), ServeMode::Event);
    }

    #[test]
    fn worker_shards_are_capped_by_threads() {
        let config = ServerConfig {
            threads: 1,
            shards: 8,
            ..ServerConfig::default()
        };
        assert_eq!(config.worker_shards(), 1, "no shard without a thread");
        assert_eq!(config.cache_shards(), 8);
        let config = ServerConfig {
            threads: 8,
            shards: 0,
            ..ServerConfig::default()
        };
        assert_eq!(config.worker_shards(), 1);
        assert_eq!(config.cache_shards(), 1);
    }

    #[test]
    fn routes_healthz_and_unknown_paths() {
        let state = test_state(ServerConfig::default());
        let (status, _, body) = route(&state, &request("GET", "/healthz", ""), Instant::now());
        assert_eq!(status, 200);
        assert!(body.contains("cool-serve"));
        let (status, _, body) = route(&state, &request("GET", "/nope", ""), Instant::now());
        assert_eq!(status, 404);
        assert!(body.contains("COOL-E019"));
        let (status, _, _) = route(&state, &request("DELETE", "/metrics", ""), Instant::now());
        assert_eq!(status, 405);
    }

    #[test]
    fn schedule_single_then_cached() {
        let state = test_state(ServerConfig::default());
        let body = r#"{"scenario":"sensors = 12\ntargets = 2\n"}"#;
        let (status, extra, first) = route(
            &state,
            &request("POST", "/v1/schedule", body),
            Instant::now(),
        );
        assert_eq!(status, 200, "{first}");
        assert_eq!(extra[0].1, "miss");
        let (status, extra, second) = route(
            &state,
            &request("POST", "/v1/schedule", body),
            Instant::now(),
        );
        assert_eq!(status, 200);
        assert_eq!(extra[0].1, "hit");
        assert_eq!(first, second, "cache hit must be byte-identical");
        assert_eq!(state.metrics.cache_hits.get(), 1);
        assert_eq!(state.metrics.cache_misses.get(), 1);
    }

    #[test]
    fn greedy_and_greedy_lazy_occupy_distinct_cache_entries() {
        let state = test_state(ServerConfig::default());
        let greedy = r#"{"scenario":"sensors = 12\ntargets = 2\n","algorithm":"greedy"}"#;
        let lazy = r#"{"scenario":"sensors = 12\ntargets = 2\n","algorithm":"greedy-lazy"}"#;
        let (status, extra, greedy_body) = route(
            &state,
            &request("POST", "/v1/schedule", greedy),
            Instant::now(),
        );
        assert_eq!(status, 200, "{greedy_body}");
        assert_eq!(extra[0].1, "miss");
        let (status, extra, lazy_body) = route(
            &state,
            &request("POST", "/v1/schedule", lazy),
            Instant::now(),
        );
        assert_eq!(status, 200, "{lazy_body}");
        assert_eq!(extra[0].1, "miss", "distinct selector must not hit");
        assert_eq!(state.metrics.cache_misses.get(), 2);
        assert_eq!(state.metrics.cache_hits.get(), 0);
        // Same schedule either way — only the algorithm label differs.
        let assignment = |body: &str| {
            cool_common::json::parse(body)
                .unwrap()
                .get("schedule")
                .and_then(|s| s.get("assignment"))
                .map(|a| format!("{a:?}"))
                .unwrap()
        };
        assert_eq!(assignment(&greedy_body), assignment(&lazy_body));
        // Replays hit their own entries.
        let (_, extra, replay) = route(
            &state,
            &request("POST", "/v1/schedule", lazy),
            Instant::now(),
        );
        assert_eq!(extra[0].1, "hit");
        assert_eq!(replay, lazy_body, "cache hit must be byte-identical");
    }

    #[test]
    fn schedule_batch_mixes_success_and_failure() {
        let state = test_state(ServerConfig::default());
        let body = r#"{"batch":[
            {"scenario":"sensors = 12\n"},
            {"scenario":"recharge_minutes = 40\n"}
        ]}"#;
        let (status, _, rendered) = route(
            &state,
            &request("POST", "/v1/schedule", body),
            Instant::now(),
        );
        assert_eq!(status, 200);
        assert!(rendered.contains("\"http_status\":200"));
        assert!(rendered.contains("\"http_status\":422"));
        assert!(rendered.contains("\"count\":2"));
        assert!(cool_common::json::parse(&rendered).is_ok(), "{rendered}");
    }

    #[test]
    fn lint_endpoint_reports_both_verdicts() {
        let state = test_state(ServerConfig::default());
        let (status, _, body) = route(
            &state,
            &request("POST", "/v1/lint", r#"{"scenario":"sensors = 10\n"}"#),
            Instant::now(),
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"status\":\"ok\""));
        let (status, _, body) = route(
            &state,
            &request(
                "POST",
                "/v1/lint",
                r#"{"scenario":"recharge_minutes = 40\n"}"#,
            ),
            Instant::now(),
        );
        assert_eq!(status, 422);
        assert!(body.contains("COOL-E012"), "{body}");
        assert!(body.contains("\"diagnostics\""));
    }

    #[test]
    fn timed_out_requests_get_408() {
        let config = ServerConfig {
            timeout_ms: 0,
            ..ServerConfig::default()
        };
        let state = test_state(config);
        let started = Instant::now()
            .checked_sub(Duration::from_millis(50))
            .unwrap();
        let (status, _, body) = route(
            &state,
            &request("POST", "/v1/schedule", r#"{"scenario":"sensors = 4\n"}"#),
            started,
        );
        assert_eq!(status, 408);
        assert!(body.contains("COOL-E017"));
        assert_eq!(state.metrics.timeouts.get(), 1);
    }

    #[test]
    fn shutdown_endpoint_flips_the_flag() {
        let state = test_state(ServerConfig::default());
        assert!(!state.shutdown.load(Ordering::SeqCst));
        let (status, _, _) = route(&state, &request("POST", "/v1/shutdown", ""), Instant::now());
        assert_eq!(status, 200);
        assert!(state.shutdown.load(Ordering::SeqCst));
    }

    /// Pulls the `"session"` id out of a PUT/PATCH response body.
    fn session_id_of(body: &str) -> String {
        cool_common::json::parse(body)
            .unwrap()
            .get("session")
            .and_then(cool_common::json::Value::as_str)
            .unwrap_or_else(|| panic!("no session id in {body}"))
            .to_string()
    }

    #[test]
    fn session_lifecycle_over_routes() {
        let state = test_state(ServerConfig::default());
        let put_body = r#"{"scenario":"sensors = 12\ntargets = 2\n"}"#;
        let (status, _, body) = route(
            &state,
            &request("PUT", "/v1/scenario", put_body),
            Instant::now(),
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"evicted\":null"));
        let id = session_id_of(&body);
        assert_eq!(state.metrics.sessions_active.get(), 1);

        // An identical PUT re-derives the same content address.
        let (_, _, again) = route(
            &state,
            &request("PUT", "/v1/scenario", put_body),
            Instant::now(),
        );
        assert_eq!(session_id_of(&again), id);

        let patch_body = r#"{"deltas":"remove_sensor 0\nreweight 0 0.9\n"}"#;
        let (status, _, body) = route(
            &state,
            &request("PATCH", &format!("/v1/scenario/{id}"), patch_body),
            Instant::now(),
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"applied\":2"), "{body}");
        assert!(body.contains("\"repairs\":["), "{body}");

        let (status, _, body) = route(
            &state,
            &request("GET", &format!("/v1/scenario/{id}/schedule"), ""),
            Instant::now(),
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"assignment\":["), "{body}");

        let (status, _, _) = route(
            &state,
            &request("DELETE", &format!("/v1/scenario/{id}"), ""),
            Instant::now(),
        );
        assert_eq!(status, 200);
        assert_eq!(state.metrics.sessions_active.get(), 0);

        let (status, _, body) = route(
            &state,
            &request("GET", &format!("/v1/scenario/{id}/schedule"), ""),
            Instant::now(),
        );
        assert_eq!(status, 410, "{body}");
        let (status, _, _) = route(
            &state,
            &request("GET", "/v1/scenario/ffffffffffffffff/schedule", ""),
            Instant::now(),
        );
        assert_eq!(status, 404);
    }

    #[test]
    fn session_put_rejects_what_lint_rejects() {
        let state = test_state(ServerConfig::default());
        let (status, _, body) = route(
            &state,
            &request(
                "PUT",
                "/v1/scenario",
                r#"{"scenario":"recharge_minutes = 40\n"}"#,
            ),
            Instant::now(),
        );
        assert_eq!(status, 422, "{body}");
        assert!(body.contains("COOL-E"), "{body}");
        assert_eq!(state.metrics.sessions_active.get(), 0);
    }

    #[test]
    fn session_patch_applies_a_prefix_then_rejects() {
        let state = test_state(ServerConfig::default());
        let (_, _, body) = route(
            &state,
            &request(
                "PUT",
                "/v1/scenario",
                r#"{"scenario":"sensors = 12\ntargets = 2\n"}"#,
            ),
            Instant::now(),
        );
        let id = session_id_of(&body);

        // Malformed grammar never touches the session.
        let (status, _, body) = route(
            &state,
            &request(
                "PATCH",
                &format!("/v1/scenario/{id}"),
                r#"{"deltas":"warp 9"}"#,
            ),
            Instant::now(),
        );
        assert_eq!(status, 400, "{body}");

        // Well-formed but invalid second delta: the first stays applied.
        let (status, _, body) = route(
            &state,
            &request(
                "PATCH",
                &format!("/v1/scenario/{id}"),
                r#"{"deltas":"remove_sensor 3\nremove_sensor 3\n"}"#,
            ),
            Instant::now(),
        );
        assert_eq!(status, 422, "{body}");
        assert!(body.contains("delta 2 rejected after 1 applied"), "{body}");
        let (_, _, body) = route(
            &state,
            &request("GET", &format!("/v1/scenario/{id}/schedule"), ""),
            Instant::now(),
        );
        assert!(body.contains("\"alive\":11"), "{body}");
    }

    #[test]
    fn session_family_rejects_wrong_methods() {
        let state = test_state(ServerConfig::default());
        let (status, _, _) = route(&state, &request("POST", "/v1/scenario", ""), Instant::now());
        assert_eq!(status, 405);
        let (status, _, _) = route(
            &state,
            &request("POST", "/v1/scenario/abc/schedule", ""),
            Instant::now(),
        );
        assert_eq!(status, 405);
        let (status, _, _) = route(
            &state,
            &request("GET", "/v1/scenario/abc", ""),
            Instant::now(),
        );
        assert_eq!(status, 405);
    }

    #[test]
    fn metrics_route_reports_cache_population() {
        let state = test_state(ServerConfig::default());
        let body = r#"{"scenario":"sensors = 8\n"}"#;
        let _ = route(
            &state,
            &request("POST", "/v1/schedule", body),
            Instant::now(),
        );
        let (status, _, page) = route(&state, &request("GET", "/metrics", ""), Instant::now());
        assert_eq!(status, 200);
        assert!(page.contains("cool_cache_entries 1"), "{page}");
        assert!(page.contains("cool_cache_misses_total 1"));
        assert!(
            page.contains("cool_shard_cache_entries{shard=\"0\"}"),
            "{page}"
        );
    }
}
