//! Request parsing and response rendering for the `/v1/scenario` session
//! endpoints (the handlers live in [`crate::server`], next to the other
//! routes, because they need the shared `AppState`).
//!
//! | Endpoint | Method | Purpose |
//! |---|---|---|
//! | `/v1/scenario` | PUT | lint + solve a scenario, store it as a live session (LRU-bounded) |
//! | `/v1/scenario/{id}` | PATCH | apply a delta sequence, warm-start repair the schedule |
//! | `/v1/scenario/{id}/schedule` | GET | the session's current schedule |
//! | `/v1/scenario/{id}` | DELETE | drop the session (id answers `410 Gone` afterwards) |
//!
//! All bodies are deterministic JSON: fixed key order, no timestamps, so
//! byte-identical state renders byte-identical responses.

use crate::api::ApiError;
use cool_common::json::{self, Value};
use cool_core::ScheduleMode;
use cool_session::{parse_deltas, Delta, PatchStats, SessionEntry};
use std::fmt::Write as _;

/// Parses a `PATCH /v1/scenario/{id}` body: `{"deltas": "<replay text>"}`
/// in the grammar of [`cool_session::parse_deltas`].
///
/// # Errors
///
/// `COOL-E019` (400) for non-UTF-8, invalid JSON, a missing `deltas`
/// field, or a malformed delta line.
pub fn parse_patch_body(body: &[u8]) -> Result<Vec<Delta>, ApiError> {
    let text =
        std::str::from_utf8(body).map_err(|_| ApiError::malformed("request body is not UTF-8"))?;
    let doc =
        json::parse(text).map_err(|e| ApiError::malformed(format!("invalid JSON body: {e}")))?;
    let script = doc
        .get("deltas")
        .and_then(Value::as_str)
        .ok_or_else(|| ApiError::malformed("missing required string field `deltas`"))?;
    let deltas =
        parse_deltas(script).map_err(|e| ApiError::malformed(format!("bad delta: {e}")))?;
    if deltas.is_empty() {
        return Err(ApiError::malformed("`deltas` contains no delta lines"));
    }
    Ok(deltas)
}

/// `404 Not Found` for a session id that was never stored.
#[must_use]
pub fn session_not_found(id: &str) -> ApiError {
    let mut err = ApiError::malformed(format!("no session {id}"));
    err.status = 404;
    err
}

/// `410 Gone` for a session id that was deleted or LRU-evicted.
#[must_use]
pub fn session_gone(id: &str) -> ApiError {
    let mut err = ApiError::malformed(format!("session {id} was deleted or evicted"));
    err.status = 410;
    err
}

/// The stable wire label of a schedule mode.
fn mode_label(mode: ScheduleMode) -> &'static str {
    match mode {
        ScheduleMode::ActiveSlot => "active-slot",
        ScheduleMode::PassiveSlot => "passive-slot",
    }
}

/// Renders the session summary common to the PUT and PATCH responses.
fn write_session_summary(out: &mut String, id: &str, entry: &SessionEntry) {
    let instance = entry.instance();
    let _ = write!(
        out,
        "\"session\":\"{id}\",\"sensors\":{},\"targets\":{},\"alive\":{},\
         \"rho\":{},\"slots_per_period\":{},\"periods\":{},\"value\":{:?},\
         \"patches\":{}",
        instance.n(),
        instance.targets().len(),
        instance.alive().len(),
        instance.cycle().rho(),
        instance.cycle().slots_per_period(),
        instance.periods(),
        entry.value(),
        entry.patches(),
    );
}

/// `PUT /v1/scenario` response body.
#[must_use]
pub fn render_put_response(id: &str, entry: &SessionEntry, evicted: Option<&str>) -> String {
    let mut out = String::from("{\"status\":\"ok\",");
    write_session_summary(&mut out, id, entry);
    match evicted {
        Some(dead) => {
            let _ = write!(out, ",\"evicted\":\"{dead}\"");
        }
        None => out.push_str(",\"evicted\":null"),
    }
    out.push('}');
    out
}

/// `PATCH /v1/scenario/{id}` response body: per-delta repair telemetry
/// plus the final session summary.
#[must_use]
pub fn render_patch_response(id: &str, entry: &SessionEntry, repairs: &[PatchStats]) -> String {
    let mut out = String::from("{\"status\":\"ok\",");
    write_session_summary(&mut out, id, entry);
    let _ = write!(out, ",\"applied\":{},\"repairs\":[", repairs.len());
    for (i, stats) in repairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"mode\":\"{}\",\"cells_touched\":{},\"dirty_sensors\":{},\"value\":{:?}}}",
            stats.mode.as_str(),
            stats.cells_touched,
            stats.dirty_sensors,
            stats.value,
        );
    }
    out.push_str("]}");
    out
}

/// `GET /v1/scenario/{id}/schedule` response body.
#[must_use]
pub fn render_schedule_response(id: &str, entry: &SessionEntry) -> String {
    let schedule = entry.schedule();
    let slots = schedule.slots_per_period();
    let mut out = String::from("{\"status\":\"ok\",");
    write_session_summary(&mut out, id, entry);
    let _ = write!(
        out,
        ",\"schedule\":{{\"mode\":\"{}\",",
        mode_label(schedule.mode())
    );
    out.push_str("\"per_slot_active\":[");
    for t in 0..slots {
        if t > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", schedule.active_set(t).len());
    }
    out.push_str("],\"assignment\":[");
    for (v, t) in schedule.assignment().iter().enumerate() {
        if v > 0 {
            out.push(',');
        }
        let _ = write!(out, "{t}");
    }
    out.push_str("]}}");
    out
}

/// `DELETE /v1/scenario/{id}` response body.
#[must_use]
pub fn render_delete_response(id: &str) -> String {
    format!("{{\"status\":\"ok\",\"deleted\":\"{id}\"}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patch_body_round_trips_the_replay_grammar() {
        let body = br#"{"deltas":"add_sensor 3\nreweight 0 0.5\n"}"#;
        let deltas = parse_patch_body(body).unwrap();
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0], Delta::AddSensor { sensor: 3 });
    }

    #[test]
    fn patch_body_rejections_are_typed() {
        assert_eq!(parse_patch_body(b"not json").unwrap_err().status, 400);
        assert_eq!(parse_patch_body(br#"{"nope":1}"#).unwrap_err().status, 400);
        assert_eq!(
            parse_patch_body(br#"{"deltas":"warp 9"}"#)
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse_patch_body(br##"{"deltas":"# only a comment"}"##)
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn missing_session_errors_carry_http_semantics() {
        assert_eq!(session_not_found("abc").status, 404);
        assert_eq!(session_gone("abc").status, 410);
    }
}
