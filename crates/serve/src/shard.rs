//! N-way sharding of the daemon's shared state by content-address hash.
//!
//! One mutex per shard instead of one mutex per store: requests for
//! different content addresses proceed on different cores without
//! contending, while requests for the *same* address still serialize on
//! the same shard (preserving the byte-identical cache-hit contract).
//!
//! Shard choice is deterministic: the schedule cache shards on
//! [`CacheKey::hash`](crate::cache::CacheKey) (already an FNV-1a content
//! address), the session store on `fnv1a_64(session_id)`. With one shard
//! both types degenerate to exactly the PR 2 single-lock behaviour.

use crate::cache::{CacheKey, LruCache};
use cool_common::hash::fnv1a_64;
use cool_session::{SessionEntry, SessionInstance, SessionStore, SessionStoreError};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks a shard, riding through a poisoned mutex (the daemon's state is
/// all counters and LRU lists — always internally consistent).
fn lock<T>(shard: &Mutex<T>) -> MutexGuard<'_, T> {
    shard.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The schedule cache, split into independently-locked LRU shards.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<Mutex<LruCache<CacheKey, String>>>,
}

impl ShardedCache {
    /// `shards` independently-locked LRUs totalling (at least)
    /// `total_capacity` entries; each shard gets an equal slice, rounded
    /// up so capacity never drops below the single-lock configuration.
    #[must_use]
    pub fn new(shards: usize, total_capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = total_capacity.div_ceil(shards).max(1);
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key lives in.
    #[must_use]
    pub fn shard_of(&self, key: &CacheKey) -> usize {
        (key.hash % self.shards.len() as u64) as usize
    }

    /// Looks up `key`, refreshing its recency within its shard.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<String> {
        lock(&self.shards[self.shard_of(key)]).get(key)
    }

    /// Inserts, returning the entry its shard evicted (if any) and the
    /// shard's new population.
    pub fn insert(&self, key: CacheKey, value: String) -> (Option<(CacheKey, String)>, usize) {
        let shard = self.shard_of(&key);
        let mut guard = lock(&self.shards[shard]);
        let evicted = guard.insert(key, value);
        (evicted, guard.len())
    }

    /// Entries in one shard.
    #[must_use]
    pub fn shard_len(&self, shard: usize) -> usize {
        lock(&self.shards[shard]).len()
    }

    /// Total entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|s| self.shard_len(s)).sum()
    }

    /// Whether every shard is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The session store, split into independently-locked shards keyed by
/// session id (itself the FNV-1a content address of the scenario).
#[derive(Debug)]
pub struct ShardedSessions {
    shards: Vec<Mutex<SessionStore>>,
}

impl ShardedSessions {
    /// `shards` independently-locked stores totalling (at least)
    /// `total_capacity` live sessions.
    #[must_use]
    pub fn new(shards: usize, total_capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = total_capacity.div_ceil(shards).max(1);
        ShardedSessions {
            shards: (0..shards)
                .map(|_| Mutex::new(SessionStore::new(per_shard)))
                .collect(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, id: &str) -> usize {
        (fnv1a_64(id.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// Stores `entry` in the shard its content address maps to, returning
    /// `(id, evicted_id)` exactly like [`SessionStore::put`].
    pub fn put(&self, entry: SessionEntry) -> (String, Option<String>) {
        let id = SessionStore::session_id(entry.instance());
        lock(&self.shards[self.shard_of(&id)]).put(entry)
    }

    /// Locks the shard holding `id` for get/patch/delete. The caller runs
    /// its whole read-modify-render under this one guard, exactly as it
    /// did under the single store lock.
    pub fn lock_for(&self, id: &str) -> MutexGuard<'_, SessionStore> {
        lock(&self.shards[self.shard_of(id)])
    }

    /// Deletes `id` from its shard.
    ///
    /// # Errors
    ///
    /// Forwards [`SessionStoreError`] misses (`Gone` / `NotFound`).
    pub fn delete(&self, id: &str) -> Result<(), SessionStoreError> {
        self.lock_for(id).delete(id)
    }

    /// Live sessions across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    /// Whether every shard is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shard index `instance`'s session id would map to (useful for
    /// tests asserting shard placement).
    #[must_use]
    pub fn shard_for_instance(&self, instance: &SessionInstance) -> usize {
        self.shard_of(&SessionStore::session_id(instance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheKey;

    fn key(tag: &str) -> CacheKey {
        CacheKey::new(tag.to_string(), "greedy".to_string())
    }

    #[test]
    fn sharded_cache_round_trips_and_counts() {
        let cache = ShardedCache::new(4, 16);
        assert_eq!(cache.shard_count(), 4);
        assert!(cache.is_empty());
        for i in 0..8 {
            let (evicted, _) = cache.insert(key(&format!("scenario {i}")), format!("body {i}"));
            assert!(evicted.is_none());
        }
        assert_eq!(cache.len(), 8);
        for i in 0..8 {
            assert_eq!(
                cache.get(&key(&format!("scenario {i}"))).as_deref(),
                Some(format!("body {i}").as_str())
            );
        }
        assert!(cache.get(&key("missing")).is_none());
    }

    #[test]
    fn same_key_always_lands_in_the_same_shard() {
        let cache = ShardedCache::new(3, 9);
        let k = key("stable");
        assert_eq!(cache.shard_of(&k), cache.shard_of(&k.clone()));
        cache.insert(k.clone(), "v1".to_string());
        let (_, shard_len) = cache.insert(k.clone(), "v2".to_string());
        assert_eq!(shard_len, 1, "reinsert replaces, never duplicates");
        assert_eq!(cache.get(&k).as_deref(), Some("v2"));
    }

    #[test]
    fn one_shard_degenerates_to_the_single_lock_cache() {
        let cache = ShardedCache::new(1, 2);
        cache.insert(key("a"), "a".into());
        cache.insert(key("b"), "b".into());
        let (evicted, _) = cache.insert(key("c"), "c".into());
        assert!(evicted.is_some(), "total capacity still enforced");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn sessions_shard_by_content_address() {
        let sessions = ShardedSessions::new(4, 8);
        assert_eq!(sessions.shard_count(), 4);
        let scenario = cool_scenario::Scenario::parse("sensors = 12\ntargets = 2\n").unwrap();
        let instance = SessionInstance::from_scenario(&scenario).unwrap();
        let expected_shard = sessions.shard_for_instance(&instance);
        let entry = SessionEntry::solve(instance).unwrap();
        let (id, evicted) = sessions.put(entry);
        assert!(evicted.is_none());
        assert_eq!(sessions.shard_of(&id), expected_shard);
        assert_eq!(sessions.len(), 1);
        assert!(sessions.lock_for(&id).get(&id).is_ok());
        sessions.delete(&id).unwrap();
        assert_eq!(sessions.len(), 0);
        assert!(matches!(
            sessions.lock_for(&id).get(&id),
            Err(SessionStoreError::Gone)
        ));
    }
}
