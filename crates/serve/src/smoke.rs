//! An end-to-end smoke check the CI pipeline (and `cool serve --smoke`)
//! runs against a real scenario file: boot the daemon on an ephemeral
//! port, drive the full protocol over TCP, and verify the serving path
//! agrees with the offline `cool run` path bit-for-bit where it must.
//!
//! Checks, in order: `/healthz` answers; `POST /v1/schedule` returns the
//! same average utility as [`Scenario::run`]; an identical second request
//! is a recorded cache hit with a byte-identical body; the `greedy-lazy`
//! selector answers from its own cache entry (miss) with the same
//! utility; a lint-rejected scenario comes back 422 with a COOL code;
//! `/metrics` exposes the request/latency/cache/queue series; shutdown
//! drains cleanly.

use crate::client;
use crate::server::{Server, ServerConfig};
use cool_common::json::{self, escape, Value};
use cool_scenario::Scenario;
use std::net::SocketAddr;

/// Metric families the scrape must expose for dashboards to work.
pub const REQUIRED_METRICS: [&str; 5] = [
    "cool_requests_total",
    "cool_request_seconds_bucket",
    "cool_cache_hits_total",
    "cool_cache_misses_total",
    "cool_queue_depth",
];

fn post_schedule(addr: SocketAddr, scenario_text: &str) -> Result<client::Response, String> {
    let body = format!("{{\"scenario\":{}}}", escape(scenario_text));
    client::request(addr, "POST", "/v1/schedule", &[], &body)
        .map_err(|e| format!("schedule request failed: {e}"))
}

fn drive(addr: SocketAddr, scenario_text: &str, expected_average: f64) -> Result<String, String> {
    let health = client::request(addr, "GET", "/healthz", &[], "")
        .map_err(|e| format!("healthz request failed: {e}"))?;
    if health.status != 200 {
        return Err(format!("healthz returned {}", health.status));
    }

    let first = post_schedule(addr, scenario_text)?;
    if first.status != 200 {
        return Err(format!(
            "schedule returned {}: {}",
            first.status, first.body
        ));
    }
    if first.header("x-cool-cache") != Some("miss") {
        return Err("first schedule request was not a cache miss".to_string());
    }
    let doc = json::parse(&first.body).map_err(|e| format!("schedule body is not JSON: {e}"))?;
    let served = doc
        .get("utility")
        .and_then(|u| u.get("average_per_target_slot"))
        .and_then(Value::as_f64)
        .ok_or_else(|| "schedule body lacks utility.average_per_target_slot".to_string())?;
    if (served - expected_average).abs() > 1e-12 {
        return Err(format!(
            "service utility {served} disagrees with offline run {expected_average}"
        ));
    }

    let second = post_schedule(addr, scenario_text)?;
    if second.header("x-cool-cache") != Some("hit") {
        return Err("second identical request was not a cache hit".to_string());
    }
    if second.body != first.body {
        return Err("cache hit body differs from cold compute".to_string());
    }

    // The explicit lazy selector: a fresh cache entry (miss, not a hit on
    // the `greedy` entry) that must agree with `greedy` on the utility.
    let lazy_body = format!(
        "{{\"scenario\":{},\"algorithm\":\"greedy-lazy\"}}",
        escape(scenario_text)
    );
    let lazy = client::request(addr, "POST", "/v1/schedule", &[], &lazy_body)
        .map_err(|e| format!("greedy-lazy request failed: {e}"))?;
    if lazy.status != 200 {
        return Err(format!(
            "greedy-lazy returned {}: {}",
            lazy.status, lazy.body
        ));
    }
    if lazy.header("x-cool-cache") != Some("miss") {
        return Err("greedy-lazy must occupy its own cache entry".to_string());
    }
    let lazy_doc =
        json::parse(&lazy.body).map_err(|e| format!("greedy-lazy body is not JSON: {e}"))?;
    let lazy_served = lazy_doc
        .get("utility")
        .and_then(|u| u.get("average_per_target_slot"))
        .and_then(Value::as_f64)
        .ok_or_else(|| "greedy-lazy body lacks utility.average_per_target_slot".to_string())?;
    if (lazy_served - expected_average).abs() > 1e-12 {
        return Err(format!(
            "greedy-lazy utility {lazy_served} disagrees with greedy {expected_average}"
        ));
    }

    let rejected = post_schedule(addr, "recharge_minutes = 40\n")?;
    if rejected.status != 422 || !rejected.body.contains("COOL-E") {
        return Err(format!(
            "lint pre-flight did not reject: {} {}",
            rejected.status, rejected.body
        ));
    }

    let metrics = client::request(addr, "GET", "/metrics", &[], "")
        .map_err(|e| format!("metrics request failed: {e}"))?;
    if metrics.status != 200 {
        return Err(format!("metrics returned {}", metrics.status));
    }
    for key in REQUIRED_METRICS {
        if !metrics.body.contains(key) {
            return Err(format!("metrics page lacks `{key}`"));
        }
    }
    if !metrics.body.contains("cool_cache_hits_total 1") {
        return Err("cache hit was not recorded in metrics".to_string());
    }
    Ok(metrics.body)
}

/// Boots a daemon on an ephemeral port, drives the full protocol against
/// `scenario_path`, shuts it down, and returns the final `/metrics` page.
///
/// # Errors
///
/// A human-readable description of the first failed check.
pub fn run_smoke(scenario_path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(scenario_path)
        .map_err(|e| format!("cannot read {scenario_path}: {e}"))?;
    let scenario =
        Scenario::parse(&text).map_err(|e| format!("cannot parse {scenario_path}: {e}"))?;
    let expected = scenario
        .run()
        .map_err(|e| format!("offline run failed: {e}"))?
        .average;

    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    };
    let server = Server::bind(config).map_err(|e| format!("bind failed: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("local_addr failed: {e}"))?;
    let handle = std::thread::spawn(move || server.run());

    let outcome = drive(addr, &text, expected);

    let shutdown = client::request(addr, "POST", "/v1/shutdown", &[], "")
        .map_err(|e| format!("shutdown request failed: {e}"));
    let joined = handle
        .join()
        .map_err(|_| "server thread panicked".to_string())
        .and_then(|r| r.map_err(|e| format!("server loop failed: {e}")));

    let metrics_page = outcome?;
    let shutdown = shutdown?;
    if shutdown.status != 200 {
        return Err(format!("shutdown returned {}", shutdown.status));
    }
    joined?;
    Ok(metrics_page)
}

/// The session metric families the scrape must expose after a PATCH.
pub const REQUIRED_SESSION_METRICS: [&str; 4] = [
    "cool_sessions_active",
    "cool_session_repairs_total",
    "cool_session_cells_touched_total",
    "cool_session_repair_seconds",
];

/// The delta script the session smoke replays: two incremental-friendly
/// mutations, then a ρ change that reshapes the period and forces a full
/// re-solve — so the final schedule must be **bit-identical** to a
/// from-scratch solve of the mutated instance.
const SMOKE_DELTAS: &str = "remove_sensor 0\nreweight 0 0.75\nrho 15 30\n";

fn extract_assignment(doc: &Value) -> Result<Vec<usize>, String> {
    doc.get("schedule")
        .and_then(|s| s.get("assignment"))
        .and_then(Value::as_array)
        .ok_or_else(|| "schedule body lacks schedule.assignment".to_string())?
        .iter()
        .map(|v| {
            v.as_f64()
                .map(|t| t as usize)
                .ok_or_else(|| "non-numeric slot in assignment".to_string())
        })
        .collect()
}

/// The oracle the session smoke compares against: replay the smoke
/// deltas offline and solve the final instance from scratch.
fn offline_final_schedule(scenario: &Scenario) -> Result<cool_core::PeriodSchedule, String> {
    let mut expected = cool_session::SessionInstance::from_scenario(scenario)
        .map_err(|e| format!("offline instance failed: {e}"))?;
    for delta in cool_session::parse_deltas(SMOKE_DELTAS)
        .map_err(|e| format!("smoke delta script is invalid: {e}"))?
    {
        expected
            .apply(&delta)
            .map_err(|e| format!("offline delta failed: {e}"))?;
    }
    expected
        .solve()
        .map_err(|e| format!("offline solve failed: {e}"))
}

/// End-of-life contract: DELETE answers 200, the dead id answers
/// `410 Gone`, a never-stored id answers `404 Not Found`.
fn check_session_teardown(addr: SocketAddr, id: &str) -> Result<(), String> {
    let del = client::request(addr, "DELETE", &format!("/v1/scenario/{id}"), &[], "")
        .map_err(|e| format!("session DELETE failed: {e}"))?;
    if del.status != 200 {
        return Err(format!("session DELETE returned {}", del.status));
    }
    let gone = client::request(addr, "GET", &format!("/v1/scenario/{id}/schedule"), &[], "")
        .map_err(|e| format!("post-delete GET failed: {e}"))?;
    if gone.status != 410 {
        return Err(format!(
            "deleted session answered {} instead of 410 Gone",
            gone.status
        ));
    }
    let missing = client::request(
        addr,
        "GET",
        "/v1/scenario/ffffffffffffffff/schedule",
        &[],
        "",
    )
    .map_err(|e| format!("unknown-id GET failed: {e}"))?;
    if missing.status != 404 {
        return Err(format!(
            "never-stored session answered {} instead of 404",
            missing.status
        ));
    }
    Ok(())
}

fn drive_session(addr: SocketAddr, scenario: &Scenario, text: &str) -> Result<String, String> {
    let expected_schedule = offline_final_schedule(scenario)?;

    let put_body = format!("{{\"scenario\":{}}}", escape(text));
    let put = client::request(addr, "PUT", "/v1/scenario", &[], &put_body)
        .map_err(|e| format!("session PUT failed: {e}"))?;
    if put.status != 200 {
        return Err(format!("session PUT returned {}: {}", put.status, put.body));
    }
    let put_doc = json::parse(&put.body).map_err(|e| format!("PUT body is not JSON: {e}"))?;
    let id = put_doc
        .get("session")
        .and_then(Value::as_str)
        .ok_or_else(|| "PUT body lacks a session id".to_string())?
        .to_string();

    let patch_body = format!("{{\"deltas\":{}}}", escape(SMOKE_DELTAS));
    let patch = client::request(
        addr,
        "PATCH",
        &format!("/v1/scenario/{id}"),
        &[],
        &patch_body,
    )
    .map_err(|e| format!("session PATCH failed: {e}"))?;
    if patch.status != 200 {
        return Err(format!(
            "session PATCH returned {}: {}",
            patch.status, patch.body
        ));
    }
    let patch_doc = json::parse(&patch.body).map_err(|e| format!("PATCH body is not JSON: {e}"))?;
    let applied = patch_doc.get("applied").and_then(Value::as_f64);
    if applied != Some(3.0) {
        return Err(format!("PATCH applied {applied:?} deltas, wanted 3"));
    }
    let repairs = patch_doc
        .get("repairs")
        .and_then(Value::as_array)
        .ok_or_else(|| "PATCH body lacks repairs".to_string())?;
    let last_mode = repairs
        .last()
        .and_then(|r| r.get("mode"))
        .and_then(Value::as_str);
    if last_mode != Some("full") {
        return Err(format!(
            "ρ-reshaping delta repaired in mode {last_mode:?}, wanted full"
        ));
    }

    let got = client::request(addr, "GET", &format!("/v1/scenario/{id}/schedule"), &[], "")
        .map_err(|e| format!("schedule GET failed: {e}"))?;
    if got.status != 200 {
        return Err(format!(
            "schedule GET returned {}: {}",
            got.status, got.body
        ));
    }
    let got_doc = json::parse(&got.body).map_err(|e| format!("GET body is not JSON: {e}"))?;
    let served = extract_assignment(&got_doc)?;
    if served != expected_schedule.assignment() {
        return Err(format!(
            "repaired assignment diverged from the from-scratch solve:\n  served  {served:?}\n  \
             expected {:?}",
            expected_schedule.assignment()
        ));
    }

    let metrics = client::request(addr, "GET", "/metrics", &[], "")
        .map_err(|e| format!("metrics request failed: {e}"))?;
    for key in REQUIRED_SESSION_METRICS {
        if !metrics.body.contains(key) {
            return Err(format!("metrics page lacks `{key}`"));
        }
    }
    if !metrics.body.contains("cool_sessions_active 1") {
        return Err("session gauge does not report the live session".to_string());
    }

    check_session_teardown(addr, &id)?;
    Ok(metrics.body)
}

/// Boots a daemon on an ephemeral port and drives the full session
/// lifecycle against `scenario_path`: PUT, a three-delta PATCH whose
/// final ρ change forces a full re-solve, a GET whose assignment must be
/// bit-identical to an offline from-scratch solve of the mutated
/// instance, metrics exposure, and DELETE → 410 / unknown → 404.
///
/// Returns the `/metrics` page captured while the session was live.
///
/// # Errors
///
/// A human-readable description of the first failed check.
pub fn run_session_smoke(scenario_path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(scenario_path)
        .map_err(|e| format!("cannot read {scenario_path}: {e}"))?;
    let scenario =
        Scenario::parse(&text).map_err(|e| format!("cannot parse {scenario_path}: {e}"))?;

    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    };
    let server = Server::bind(config).map_err(|e| format!("bind failed: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("local_addr failed: {e}"))?;
    let handle = std::thread::spawn(move || server.run());

    let outcome = drive_session(addr, &scenario, &text);

    let shutdown = client::request(addr, "POST", "/v1/shutdown", &[], "")
        .map_err(|e| format!("shutdown request failed: {e}"));
    let joined = handle
        .join()
        .map_err(|_| "server thread panicked".to_string())
        .and_then(|r| r.map_err(|e| format!("server loop failed: {e}")));

    let metrics_page = outcome?;
    let shutdown = shutdown?;
    if shutdown.status != 200 {
        return Err(format!("shutdown returned {}", shutdown.status));
    }
    joined?;
    Ok(metrics_page)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_passes_against_the_paper_testbed() {
        // The workspace root holds the scenario; resolve relative to the
        // crate manifest so `cargo test -p cool-serve` works from anywhere.
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/paper_testbed.txt"
        );
        let page = run_smoke(path).unwrap_or_else(|e| panic!("smoke failed: {e}"));
        for key in REQUIRED_METRICS {
            assert!(page.contains(key));
        }
    }

    #[test]
    fn session_smoke_passes_against_the_paper_testbed() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/paper_testbed.txt"
        );
        let page = run_session_smoke(path).unwrap_or_else(|e| panic!("session smoke failed: {e}"));
        for key in REQUIRED_SESSION_METRICS {
            assert!(page.contains(key));
        }
        assert!(page.contains("cool_session_repairs_total{mode=\"full\"}"));
    }

    #[test]
    fn session_smoke_reports_missing_files() {
        let err = run_session_smoke("/nonexistent/scenario.txt").unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn smoke_reports_missing_files() {
        let err = run_smoke("/nonexistent/scenario.txt").unwrap_err();
        assert!(err.contains("cannot read"));
    }
}
