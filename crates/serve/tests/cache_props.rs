//! Cache-soundness properties for the serving layer.
//!
//! The caching contract has two halves: (1) a cache hit must be
//! **byte-identical** to the cold compute it replaced — which holds only
//! because response bodies are pure functions of (canonical scenario,
//! algorithm); (2) keys are content-addressed, so two requests that differ
//! in any `--set` override can never alias to one cached response, no
//! matter what their digests do.

use cool_serve::api::{self, Algorithm, ScheduleItem};
use cool_serve::cache::LruCache;
use proptest::prelude::*;

/// A request whose parameters arrive entirely through `--set` overrides,
/// mirroring `{"scenario": "...", "set": {...}}` bodies.
fn item_with(sensors: usize, targets: usize, seed: u64, algorithm: Algorithm) -> ScheduleItem {
    ScheduleItem {
        scenario_text: "region = 150\nradius = 60\n".to_string(),
        overrides: vec![
            ("sensors".to_string(), sensors.to_string()),
            ("targets".to_string(), targets.to_string()),
            ("seed".to_string(), seed.to_string()),
        ],
        algorithm,
        audit: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Serving from cache returns exactly the bytes a cold compute would
    /// have produced, for every algorithm and any override values.
    #[test]
    fn cache_hits_are_byte_identical_to_cold_computes(
        sensors in 2usize..16,
        targets in 1usize..4,
        seed in any::<u64>(),
        algo in prop::sample::select(vec![0usize, 1, 2]),
    ) {
        let algorithm = match algo {
            0 => Algorithm::Greedy,
            1 => Algorithm::LpRounding { trials: 3 },
            _ => Algorithm::Horizon,
        };
        let item = item_with(sensors, targets, seed, algorithm);
        let (scenario, warnings) = api::resolve_and_lint(&item).unwrap();
        let cold = api::compute_response(&scenario, &item.algorithm, &warnings).unwrap();
        let again = api::compute_response(&scenario, &item.algorithm, &warnings).unwrap();
        prop_assert_eq!(&cold, &again, "cold computes must be deterministic");

        let mut cache = LruCache::new(4);
        cache.insert(api::cache_key(&scenario, &item.algorithm), cold.clone());
        let hit = cache
            .get(&api::cache_key(&scenario, &item.algorithm))
            .expect("key round-trips");
        prop_assert_eq!(hit, cold);
    }

    /// Content-addressed keying: requests with equal overrides share a key,
    /// requests differing in any override never do — and a cache holding
    /// both answers each with its own body.
    #[test]
    fn distinct_set_overrides_never_alias(
        a_sensors in 1usize..40,
        b_sensors in 1usize..40,
        a_seed in 0u64..1000,
        b_seed in 0u64..1000,
    ) {
        let a = item_with(a_sensors, 2, a_seed, Algorithm::Greedy);
        let b = item_with(b_sensors, 2, b_seed, Algorithm::Greedy);
        let (sa, _) = api::resolve_and_lint(&a).unwrap();
        let (sb, _) = api::resolve_and_lint(&b).unwrap();
        let ka = api::cache_key(&sa, &a.algorithm);
        let kb = api::cache_key(&sb, &b.algorithm);
        if (a_sensors, a_seed) == (b_sensors, b_seed) {
            prop_assert_eq!(&ka, &kb);
        } else {
            prop_assert_ne!(&ka, &kb);
            let mut cache = LruCache::new(8);
            cache.insert(ka.clone(), "body-a");
            cache.insert(kb.clone(), "body-b");
            prop_assert_eq!(cache.get(&ka), Some("body-a"));
            prop_assert_eq!(cache.get(&kb), Some("body-b"));
        }
    }

    /// A capacity-1 cache always holds exactly the most recent insert.
    #[test]
    fn capacity_one_holds_only_the_latest_insert(
        keys in proptest::collection::vec(0u8..8, 1..20),
    ) {
        let mut cache = LruCache::new(1);
        for &k in &keys {
            cache.insert(k, u16::from(k) * 3);
        }
        prop_assert_eq!(cache.len(), 1);
        let last = *keys.last().unwrap();
        prop_assert_eq!(cache.get(&last), Some(u16::from(last) * 3));
        for k in 0u8..8 {
            if k != last {
                prop_assert_eq!(cache.get(&k), None);
            }
        }
    }
}
