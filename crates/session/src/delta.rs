//! The typed delta language sessions are patched with.
//!
//! Text format: one delta per line, `#` starts a comment, blank lines
//! ignored. The grammar (spaces separate tokens):
//!
//! ```text
//! add_sensor <v>
//! remove_sensor <v>
//! add_target <p> <v1> <v2> ...
//! remove_target <j>
//! reweight <j> <p>
//! rho <discharge_minutes> <recharge_minutes>
//! ```
//!
//! Every delta is validated against the instance before mutating it;
//! [`SessionInstance::apply`] additionally returns the **dirty set** —
//! the sensors whose (sensor, slot) cells the warm-start repair must
//! revisit. Sensor deltas dirty the sensor's live neighbourhood (itself
//! plus every live sensor sharing a target); target deltas dirty the
//! target's live coverage; `rho` dirties nothing (a period-shape change
//! is caught by the repair engine's compatibility check instead).

use crate::instance::{SessionInstance, TargetSpec};
use cool_common::{SensorId, SensorSet};
use cool_energy::ChargeCycle;

/// One mutation of a live [`SessionInstance`].
#[derive(Debug, Clone, PartialEq)]
pub enum Delta {
    /// Resurrect (or newly deploy) sensor `sensor` — it must currently
    /// be dead.
    AddSensor {
        /// Sensor index in `0..n`.
        sensor: usize,
    },
    /// Kill sensor `sensor` — it must currently be alive. Its coverage
    /// memberships are retained so a later `AddSensor` round-trips.
    RemoveSensor {
        /// Sensor index in `0..n`.
        sensor: usize,
    },
    /// Append a new watched target.
    AddTarget {
        /// Per-sensor detection probability of the new target.
        p: f64,
        /// Covering sensors (indices in `0..n`, deduplicated).
        coverage: Vec<usize>,
    },
    /// Drop target `target` (index into the current target list); the
    /// last remaining target cannot be removed.
    RemoveTarget {
        /// Target index.
        target: usize,
    },
    /// Set target `target`'s per-sensor detection probability — its
    /// weight in the sum utility.
    Reweight {
        /// Target index.
        target: usize,
        /// New probability in `[0, 1]`.
        p: f64,
    },
    /// Replace the charge-cycle parameters (weather change).
    RhoChange {
        /// New discharge time `T_d` in minutes.
        discharge_minutes: f64,
        /// New recharge time `T_r` in minutes.
        recharge_minutes: f64,
    },
}

impl Delta {
    /// Renders the delta in the replay-file grammar (no newline).
    pub fn render(&self) -> String {
        match self {
            Delta::AddSensor { sensor } => format!("add_sensor {sensor}"),
            Delta::RemoveSensor { sensor } => format!("remove_sensor {sensor}"),
            Delta::AddTarget { p, coverage } => {
                let members: Vec<String> = coverage.iter().map(ToString::to_string).collect();
                format!("add_target {p} {}", members.join(" "))
            }
            Delta::RemoveTarget { target } => format!("remove_target {target}"),
            Delta::Reweight { target, p } => format!("reweight {target} {p}"),
            Delta::RhoChange {
                discharge_minutes,
                recharge_minutes,
            } => format!("rho {discharge_minutes} {recharge_minutes}"),
        }
    }

    /// Parses one delta line (comments/blank lines already stripped).
    ///
    /// # Errors
    ///
    /// Returns a rendered message naming the malformed token.
    pub fn parse(line: &str) -> Result<Delta, String> {
        fn num<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, String> {
            let tok = tok.ok_or_else(|| format!("missing {what}"))?;
            tok.parse()
                .map_err(|_| format!("bad {what} {tok:?} in delta"))
        }
        let mut toks = line.split_whitespace();
        let verb = toks.next().ok_or_else(|| "empty delta line".to_string())?;
        let delta = match verb {
            "add_sensor" => Delta::AddSensor {
                sensor: num(toks.next(), "sensor index")?,
            },
            "remove_sensor" => Delta::RemoveSensor {
                sensor: num(toks.next(), "sensor index")?,
            },
            "add_target" => {
                let p = num(toks.next(), "probability")?;
                let coverage: Vec<usize> = toks
                    .by_ref()
                    .map(|t| num(Some(t), "sensor index"))
                    .collect::<Result<_, _>>()?;
                Delta::AddTarget { p, coverage }
            }
            "remove_target" => Delta::RemoveTarget {
                target: num(toks.next(), "target index")?,
            },
            "reweight" => Delta::Reweight {
                target: num(toks.next(), "target index")?,
                p: num(toks.next(), "probability")?,
            },
            "rho" => Delta::RhoChange {
                discharge_minutes: num(toks.next(), "discharge minutes")?,
                recharge_minutes: num(toks.next(), "recharge minutes")?,
            },
            other => return Err(format!("unknown delta verb {other:?}")),
        };
        if toks.next().is_some() {
            return Err(format!("trailing tokens after {verb:?} delta"));
        }
        Ok(delta)
    }
}

/// Parses a replay file: one delta per line, `#` comments, blank lines
/// skipped.
///
/// # Errors
///
/// Returns `"line N: <message>"` for the first malformed line.
pub fn parse_deltas(text: &str) -> Result<Vec<Delta>, String> {
    let mut deltas = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let delta = Delta::parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        deltas.push(delta);
    }
    Ok(deltas)
}

/// Renders a delta sequence in the replay-file grammar, one per line.
pub fn render_deltas(deltas: &[Delta]) -> String {
    let mut out = String::new();
    for d in deltas {
        out.push_str(&d.render());
        out.push('\n');
    }
    out
}

impl SessionInstance {
    /// Validates and applies one delta, returning the dirty sensor set
    /// the warm-start repair must revisit. The instance is unchanged on
    /// error.
    ///
    /// # Errors
    ///
    /// Returns a rendered message when the delta is invalid against the
    /// current state (out-of-range index, double add/remove, removing
    /// the last target, non-integral ρ, probability outside `[0, 1]`).
    pub fn apply(&mut self, delta: &Delta) -> Result<SensorSet, String> {
        match *delta {
            Delta::AddSensor { sensor } => {
                self.check_sensor(sensor)?;
                if self.alive().contains(SensorId(sensor)) {
                    return Err(format!("add_sensor {sensor}: sensor is already alive"));
                }
                self.alive_mut().insert(SensorId(sensor));
                Ok(self.neighbourhood(sensor))
            }
            Delta::RemoveSensor { sensor } => {
                self.check_sensor(sensor)?;
                if !self.alive().contains(SensorId(sensor)) {
                    return Err(format!("remove_sensor {sensor}: sensor is already dead"));
                }
                // Dirty the neighbourhood as seen *before* the kill so
                // the victim's former co-coverers get re-greedied.
                let dirty = self.neighbourhood(sensor);
                self.alive_mut().remove(SensorId(sensor));
                Ok(dirty)
            }
            Delta::AddTarget { p, ref coverage } => {
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("add_target: probability {p} outside [0, 1]"));
                }
                let mut cover = SensorSet::new(self.n());
                for &v in coverage {
                    self.check_sensor(v)?;
                    cover.insert(SensorId(v));
                }
                if cover.is_empty() {
                    return Err("add_target: coverage must name at least one sensor".into());
                }
                let dirty = cover.intersection(self.alive());
                self.targets_mut().push(TargetSpec { coverage: cover, p });
                Ok(dirty)
            }
            Delta::RemoveTarget { target } => {
                self.check_target(target)?;
                if self.targets().len() == 1 {
                    return Err("remove_target: cannot remove the last target".into());
                }
                let dirty = self.live_coverage(target);
                self.targets_mut().remove(target);
                Ok(dirty)
            }
            Delta::Reweight { target, p } => {
                self.check_target(target)?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("reweight: probability {p} outside [0, 1]"));
                }
                let dirty = self.live_coverage(target);
                self.targets_mut()[target].p = p;
                Ok(dirty)
            }
            Delta::RhoChange {
                discharge_minutes,
                recharge_minutes,
            } => {
                ChargeCycle::from_minutes(discharge_minutes, recharge_minutes)
                    .map_err(|e| format!("rho: {e}"))?;
                self.set_cycle_minutes(discharge_minutes, recharge_minutes);
                // A period-shape change is handled by the repair
                // engine's compatibility check, not by dirtying cells.
                Ok(SensorSet::new(self.n()))
            }
        }
    }

    fn check_sensor(&self, v: usize) -> Result<(), String> {
        if v >= self.n() {
            return Err(format!("sensor index {v} outside universe 0..{}", self.n()));
        }
        Ok(())
    }

    fn check_target(&self, j: usize) -> Result<(), String> {
        if j >= self.targets().len() {
            return Err(format!(
                "target index {j} outside 0..{}",
                self.targets().len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SessionInstance {
        SessionInstance::new(
            6,
            vec![
                TargetSpec {
                    coverage: SensorSet::from_indices(6, [0, 1, 2]),
                    p: 0.5,
                },
                TargetSpec {
                    coverage: SensorSet::from_indices(6, [2, 3, 4, 5]),
                    p: 0.25,
                },
            ],
            15.0,
            45.0,
            12.0,
        )
        .unwrap()
    }

    #[test]
    fn parse_render_round_trips() {
        let text = "# weather flips\nadd_sensor 3\nremove_sensor 1\n\
                    add_target 0.5 0 2 4\nremove_target 1\nreweight 0 0.75\nrho 15 45\n";
        let deltas = parse_deltas(text).unwrap();
        assert_eq!(deltas.len(), 6);
        let rendered = render_deltas(&deltas);
        assert_eq!(parse_deltas(&rendered).unwrap(), deltas);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_deltas("warp 9").is_err());
        assert!(parse_deltas("add_sensor").is_err());
        assert!(parse_deltas("add_sensor 1 2").is_err());
        assert!(parse_deltas("reweight 0 nope").is_err());
    }

    #[test]
    fn remove_add_round_trips_canonical_form() {
        let mut inst = small();
        let before = inst.canonical();
        inst.apply(&Delta::RemoveSensor { sensor: 2 }).unwrap();
        assert_ne!(inst.canonical(), before);
        inst.apply(&Delta::AddSensor { sensor: 2 }).unwrap();
        assert_eq!(inst.canonical(), before);
    }

    #[test]
    fn sensor_delta_dirty_is_live_neighbourhood() {
        let mut inst = small();
        // Sensor 2 shares targets with everyone.
        let dirty = inst.apply(&Delta::RemoveSensor { sensor: 2 }).unwrap();
        assert_eq!(dirty.len(), 6);
        // Sensor 0 only shares target 0 (with 1 and the now-dead 2).
        let dirty = inst.apply(&Delta::RemoveSensor { sensor: 0 }).unwrap();
        let expect = SensorSet::from_indices(6, [0, 1]);
        assert_eq!(dirty, expect);
    }

    #[test]
    fn invalid_deltas_leave_instance_unchanged() {
        let mut inst = small();
        let before = inst.canonical();
        for bad in [
            Delta::AddSensor { sensor: 0 },    // already alive
            Delta::RemoveSensor { sensor: 9 }, // out of range
            Delta::Reweight { target: 5, p: 0.5 },
            Delta::Reweight { target: 0, p: 1.5 },
            Delta::AddTarget {
                p: 0.5,
                coverage: vec![],
            },
            Delta::RhoChange {
                discharge_minutes: 10.0,
                recharge_minutes: 25.0, // ρ = 2.5, non-integral
            },
        ] {
            assert!(inst.apply(&bad).is_err(), "{bad:?} should be rejected");
            assert_eq!(inst.canonical(), before);
        }
    }

    #[test]
    fn remove_target_guards_last_target() {
        let mut inst = small();
        inst.apply(&Delta::RemoveTarget { target: 1 }).unwrap();
        assert!(inst.apply(&Delta::RemoveTarget { target: 0 }).is_err());
    }

    #[test]
    fn rho_change_validates_and_applies() {
        let mut inst = small();
        inst.apply(&Delta::RhoChange {
            discharge_minutes: 45.0,
            recharge_minutes: 15.0,
        })
        .unwrap();
        assert!(inst.cycle().rho() < 1.0);
    }
}
