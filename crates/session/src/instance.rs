//! The live, mutable instance a session schedules.
//!
//! A [`SessionInstance`] is an **explicit** multi-target detection
//! instance: unlike [`cool_scenario::Scenario`] (a generator recipe), it
//! stores every target's full coverage set plus an `alive` mask over the
//! fixed sensor universe, so deltas are cheap set operations and
//! `Remove∘Add` of the same sensor round-trips to the exact original
//! canonical form. The effective utility is built from
//! `coverage ∩ alive` per target, leaving the full coverage sets intact
//! for later resurrection.

use cool_common::{SensorId, SensorSet};
use cool_core::{greedy::try_greedy_schedule, PeriodSchedule, Problem};
use cool_energy::ChargeCycle;
use cool_scenario::Scenario;
use cool_utility::{AnyUtility, DetectionUtility, SumUtility, UtilityFunction};

/// One watched target: who can see it, and with what per-sensor
/// detection probability (the target's weight in the sum utility).
#[derive(Debug, Clone, PartialEq)]
pub struct TargetSpec {
    /// Full coverage set over the fixed sensor universe (dead sensors
    /// included — aliveness is applied at utility-build time).
    pub coverage: SensorSet,
    /// Per-sensor detection probability `p ∈ [0, 1]`.
    pub p: f64,
}

/// A live scheduling instance: fixed sensor universe, mutable target
/// list, alive mask, and charge-cycle parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionInstance {
    n: usize,
    targets: Vec<TargetSpec>,
    alive: SensorSet,
    discharge_minutes: f64,
    recharge_minutes: f64,
    hours: f64,
}

impl SessionInstance {
    /// Builds an instance directly from its parts.
    ///
    /// # Errors
    ///
    /// Rejects an empty universe, an empty target list, a coverage set
    /// over the wrong universe, an out-of-range probability, or cycle
    /// parameters `ChargeCycle` refuses.
    pub fn new(
        n: usize,
        targets: Vec<TargetSpec>,
        discharge_minutes: f64,
        recharge_minutes: f64,
        hours: f64,
    ) -> Result<Self, String> {
        if n == 0 {
            return Err("session instance needs at least one sensor".into());
        }
        if targets.is_empty() {
            return Err("session instance needs at least one target".into());
        }
        for (i, t) in targets.iter().enumerate() {
            if t.coverage.universe() != n {
                return Err(format!(
                    "target {i} coverage universe {} != n {n}",
                    t.coverage.universe()
                ));
            }
            if !(0.0..=1.0).contains(&t.p) {
                return Err(format!("target {i} probability {} outside [0, 1]", t.p));
            }
        }
        ChargeCycle::from_minutes(discharge_minutes, recharge_minutes)
            .map_err(|e| e.to_string())?;
        if !(hours.is_finite() && hours > 0.0) {
            return Err(format!("working time {hours} h must be positive"));
        }
        Ok(SessionInstance {
            n,
            targets,
            alive: SensorSet::full(n),
            discharge_minutes,
            recharge_minutes,
            hours,
        })
    }

    /// Materialises a [`Scenario`] into an explicit instance: the
    /// scenario's geometric build is run once and its per-target
    /// coverage sets are extracted verbatim, so the instance's scratch
    /// solve matches the scenario's.
    ///
    /// # Errors
    ///
    /// Propagates [`Scenario::build`] failures as rendered strings.
    pub fn from_scenario(scenario: &Scenario) -> Result<Self, String> {
        let built = scenario.build()?;
        let targets: Vec<TargetSpec> = built
            .problem
            .utility()
            .parts()
            .iter()
            .map(|part| match part {
                AnyUtility::Detection(d) => Ok(TargetSpec {
                    coverage: d.coverage(),
                    p: scenario.detection_p,
                }),
                other => Err(format!(
                    "scenario produced a non-detection part ({}-universe); \
                     sessions only speak multi-target detection",
                    other.universe()
                )),
            })
            .collect::<Result<_, _>>()?;
        SessionInstance::new(
            scenario.sensors,
            targets,
            scenario.discharge_minutes,
            scenario.recharge_minutes,
            scenario.hours,
        )
    }

    /// Sensor universe size `n` (fixed for the session's lifetime).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The watched targets.
    pub fn targets(&self) -> &[TargetSpec] {
        &self.targets
    }

    /// The alive mask (sensors currently deployed).
    pub fn alive(&self) -> &SensorSet {
        &self.alive
    }

    /// Working time in hours.
    pub fn hours(&self) -> f64 {
        self.hours
    }

    /// The current charge cycle.
    ///
    /// # Panics
    ///
    /// Never: constructors and [`crate::Delta`] application validate the
    /// minutes before storing them.
    pub fn cycle(&self) -> ChargeCycle {
        match ChargeCycle::from_minutes(self.discharge_minutes, self.recharge_minutes) {
            Ok(c) => c,
            Err(_) => unreachable!("stored cycle parameters are pre-validated"),
        }
    }

    /// Whole charging periods in the working time (at least 1).
    pub fn periods(&self) -> usize {
        self.cycle().periods_in_hours(self.hours).max(1)
    }

    /// The effective utility: one detection part per target over
    /// `coverage ∩ alive`. Dead sensors contribute exact zeros.
    pub fn utility(&self) -> SumUtility {
        SumUtility::new(
            self.targets
                .iter()
                .map(|t| {
                    DetectionUtility::uniform_on(&t.coverage.intersection(&self.alive), t.p).into()
                })
                .collect(),
        )
    }

    /// Runs the full `cool-lint` pre-flight over the effective utility,
    /// including the sampled utility-axiom conformance check. This is the
    /// session-creation gate; per-patch revalidation uses the cheap
    /// [`SessionInstance::validate_structure`] instead, because every
    /// delta maps a sum-of-detection-parts utility to another one and
    /// that family satisfies the axioms by construction.
    ///
    /// # Errors
    ///
    /// Returns the rendered report when it contains any `COOL-E` error.
    pub fn validate(&self) -> Result<(), String> {
        let report = cool_lint::preflight(&self.utility(), self.n, self.cycle().slots_per_period());
        if report.error_count() > 0 {
            return Err(format!("instance fails lint pre-flight: {report}"));
        }
        Ok(())
    }

    /// The structural subset of the `cool-lint` pre-flight — universe
    /// consistency and a non-degenerate period — without the sampled
    /// axiom check. O(targets) instead of O(trials × targets × n); the
    /// warm-start patch path runs this after every delta.
    ///
    /// # Errors
    ///
    /// Returns the rendered report when it contains any `COOL-E` error.
    pub fn validate_structure(&self) -> Result<(), String> {
        let slots = self.cycle().slots_per_period();
        let mut report = cool_lint::lint_universe(&self.utility(), self.n);
        if slots == 0 {
            report.push(cool_lint::Diagnostic::new(
                cool_common::CoolCode::EmptySlotCount,
                "charge cycle yields zero slots per period",
            ));
        }
        if report.error_count() > 0 {
            return Err(format!("instance fails structural lint: {report}"));
        }
        Ok(())
    }

    /// Solves the instance from scratch with the naive greedy — the
    /// reference the warm-start repair is measured against.
    ///
    /// # Errors
    ///
    /// Propagates scheduler build errors as rendered strings.
    pub fn solve(&self) -> Result<PeriodSchedule, String> {
        let problem = Problem::new(self.utility(), self.cycle(), self.periods())
            .map_err(|e| e.to_string())?;
        try_greedy_schedule(&problem).map_err(|e| e.to_string())
    }

    /// Sets the cycle minutes (pre-validated by the caller via
    /// [`ChargeCycle::from_minutes`]).
    pub(crate) fn set_cycle_minutes(&mut self, discharge: f64, recharge: f64) {
        self.discharge_minutes = discharge;
        self.recharge_minutes = recharge;
    }

    pub(crate) fn alive_mut(&mut self) -> &mut SensorSet {
        &mut self.alive
    }

    pub(crate) fn targets_mut(&mut self) -> &mut Vec<TargetSpec> {
        &mut self.targets
    }

    /// Sensors whose marginal contribution a change to target `j` can
    /// affect: the target's live coverage.
    pub(crate) fn live_coverage(&self, j: usize) -> SensorSet {
        self.targets[j].coverage.intersection(&self.alive)
    }

    /// Sensors incident (through any shared target) to sensor `v`,
    /// including `v` itself — the O(deg) dirty neighbourhood of a sensor
    /// delta.
    pub(crate) fn neighbourhood(&self, v: usize) -> SensorSet {
        let mut dirty = SensorSet::new(self.n);
        dirty.insert(SensorId(v));
        for t in &self.targets {
            if t.coverage.contains(SensorId(v)) {
                dirty.union_with(&t.coverage.intersection(&self.alive));
            }
        }
        dirty
    }

    /// The deterministic canonical normal form: fixed key order, one
    /// line per field, targets in list order with sorted member lists.
    /// Two instances with equal state always render identically, so this
    /// string is the content-addressing key for session ids.
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "session_v1");
        let _ = writeln!(out, "n={}", self.n);
        let _ = writeln!(out, "discharge_minutes={}", self.discharge_minutes);
        let _ = writeln!(out, "recharge_minutes={}", self.recharge_minutes);
        let _ = writeln!(out, "hours={}", self.hours);
        let _ = writeln!(out, "alive={}", render_members(&self.alive));
        for t in &self.targets {
            let _ = writeln!(
                out,
                "target p={} cover={}",
                t.p,
                render_members(&t.coverage)
            );
        }
        out
    }
}

/// Renders a set's members as a sorted space-separated list (`-` when
/// empty, so the line shape stays fixed).
fn render_members(set: &SensorSet) -> String {
    if set.is_empty() {
        return "-".into();
    }
    let mut out = String::new();
    for (i, v) in set.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&v.0.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SessionInstance {
        SessionInstance::new(
            6,
            vec![
                TargetSpec {
                    coverage: SensorSet::from_indices(6, [0, 1, 2]),
                    p: 0.5,
                },
                TargetSpec {
                    coverage: SensorSet::from_indices(6, [2, 3, 4, 5]),
                    p: 0.25,
                },
            ],
            15.0,
            45.0,
            12.0,
        )
        .unwrap()
    }

    #[test]
    fn canonical_is_deterministic_and_complete() {
        let a = small();
        let b = small();
        assert_eq!(a.canonical(), b.canonical());
        let c = a.canonical();
        assert!(c.contains("n=6"));
        assert!(c.contains("alive=0 1 2 3 4 5"));
        assert!(c.contains("target p=0.5 cover=0 1 2"));
    }

    #[test]
    fn from_scenario_matches_scratch_solve() {
        let scenario = Scenario {
            sensors: 20,
            targets: 3,
            ..Default::default()
        };
        let instance = SessionInstance::from_scenario(&scenario).unwrap();
        assert_eq!(instance.n(), 20);
        assert_eq!(instance.targets().len(), 3);
        let session_schedule = instance.solve().unwrap();
        let built = scenario.build().unwrap();
        let scratch = try_greedy_schedule(&built.problem).unwrap();
        assert_eq!(session_schedule.assignment(), scratch.assignment());
    }

    #[test]
    fn validate_accepts_well_formed_instance() {
        small().validate().unwrap();
    }

    #[test]
    fn rejects_bad_probability_and_universe() {
        let bad_p = SessionInstance::new(
            3,
            vec![TargetSpec {
                coverage: SensorSet::full(3),
                p: 1.5,
            }],
            15.0,
            45.0,
            12.0,
        );
        assert!(bad_p.is_err());
        let bad_universe = SessionInstance::new(
            3,
            vec![TargetSpec {
                coverage: SensorSet::full(4),
                p: 0.5,
            }],
            15.0,
            45.0,
            12.0,
        );
        assert!(bad_universe.is_err());
    }
}
