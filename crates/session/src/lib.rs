//! Incremental scheduling sessions over mutating instances.
//!
//! The schedulers in `cool-core` treat an instance as frozen; a real
//! deployment mutates continuously — a sensor dies, a target moves,
//! weather flips ρ. This crate keeps a **live** instance plus its current
//! schedule and repairs the schedule after each mutation instead of
//! re-solving from scratch:
//!
//! * [`SessionInstance`] — an explicit multi-target detection instance
//!   (full per-target coverage sets, an `alive` mask, the charge cycle
//!   parameters) with a deterministic [canonical form]
//!   (`SessionInstance::canonical`) used for content addressing;
//! * [`Delta`] — the typed mutation language (`AddSensor`,
//!   `RemoveSensor`, `AddTarget`, `RemoveTarget`, `Reweight`,
//!   `RhoChange`) with a line-oriented text format for replay files;
//! * [`SessionEntry`] — instance + schedule + the long-lived
//!   [`SparseSumEvaluator`](cool_utility::SparseSumEvaluator) (rebuild
//!   cadence lowered for long sessions); [`SessionEntry::patch`] applies
//!   a delta, validates the mutated instance through `cool-lint`
//!   pre-flight, and warm-start repairs via
//!   [`cool_core::repair_schedule`];
//! * [`SessionStore`] — a bounded LRU map from content-addressed session
//!   ids to entries, with tombstones so deleted/evicted ids answer
//!   `410 Gone` rather than `404`.
//!
//! The repair contract (empty delta ⇒ bit-for-bit identical schedule;
//! non-empty delta ⇒ value within the greedy approximation bound of a
//! from-scratch solve) is enforced end-to-end by cool-check relation
//! `session-repair-equal` (`COOL-E027`).

pub mod delta;
pub mod instance;
pub mod store;

pub use delta::{parse_deltas, render_deltas, Delta};
pub use instance::{SessionInstance, TargetSpec};
pub use store::{
    PatchStats, SessionEntry, SessionStore, SessionStoreError, SESSION_REBUILD_CADENCE,
};
