//! Live session entries and the bounded content-addressed store.

use crate::delta::Delta;
use crate::instance::SessionInstance;
use cool_common::fnv1a_64;
use cool_core::{repair_schedule, PeriodSchedule, RepairConfig, RepairMode};
use cool_utility::{Evaluator, SparseSumEvaluator, SumUtility, UtilityFunction};
use std::collections::VecDeque;

/// Rebuild cadence for a session's long-lived evaluator: long sessions
/// mutate for hours, so the running Kahan value is re-anchored far more
/// often than the solver default (bit-identical either way — pinned by
/// the `rebuild_cadence` regression test in `cool-utility`).
pub const SESSION_REBUILD_CADENCE: u32 = 64;

/// Telemetry from one [`SessionEntry::patch`] call, surfaced on
/// `/metrics` by cool-serve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatchStats {
    /// Which repair path ran.
    pub mode: RepairMode,
    /// Marginal-utility queries the repair performed.
    pub cells_touched: u64,
    /// Dirty sensors the delta produced.
    pub dirty_sensors: usize,
    /// Period utility of the repaired schedule.
    pub value: f64,
}

/// A live session: the instance, its current schedule, and the
/// long-lived sparse evaluator tracking the all-alive coverage value.
#[derive(Debug, Clone)]
pub struct SessionEntry {
    instance: SessionInstance,
    utility: SumUtility,
    evaluator: SparseSumEvaluator,
    schedule: PeriodSchedule,
    value: f64,
    patches: u64,
}

impl SessionEntry {
    /// Validates the instance through the lint pre-flight and solves it
    /// from scratch.
    ///
    /// # Errors
    ///
    /// Propagates validation and scheduler failures as rendered strings.
    pub fn solve(instance: SessionInstance) -> Result<SessionEntry, String> {
        instance.validate()?;
        let schedule = instance.solve()?;
        let utility = instance.utility();
        let evaluator = live_evaluator(&utility, &instance);
        let value = schedule.period_utility(&utility);
        Ok(SessionEntry {
            instance,
            utility,
            evaluator,
            schedule,
            value,
            patches: 0,
        })
    }

    /// The live instance.
    pub fn instance(&self) -> &SessionInstance {
        &self.instance
    }

    /// The current schedule.
    pub fn schedule(&self) -> &PeriodSchedule {
        &self.schedule
    }

    /// Period utility of the current schedule.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Utility of the instance with every alive sensor active at once —
    /// the O(1) running value of the session's sparse evaluator.
    pub fn all_active_value(&self) -> f64 {
        self.evaluator.value()
    }

    /// Deltas successfully applied since the session was created.
    pub fn patches(&self) -> u64 {
        self.patches
    }

    /// Applies one delta: validates it against the live instance, runs
    /// the mutated instance through the structural lint (the sampled
    /// axiom check already passed at creation and every delta preserves
    /// the sum-of-detection-parts family), and warm-start repairs the
    /// schedule. The entry is unchanged on error.
    ///
    /// # Errors
    ///
    /// Returns a rendered message for an invalid delta, a lint error on
    /// the mutated instance, or a scheduler failure.
    pub fn patch(&mut self, delta: &Delta, config: &RepairConfig) -> Result<PatchStats, String> {
        let mut next = self.instance.clone();
        let dirty = next.apply(delta)?;
        next.validate_structure()?;
        let utility = next.utility();
        let outcome = repair_schedule(&utility, next.cycle(), &self.schedule, &dirty, config)
            .map_err(|e| e.to_string())?;
        let value = outcome.schedule.period_utility(&utility);
        self.evaluator = live_evaluator(&utility, &next);
        self.instance = next;
        self.utility = utility;
        self.schedule = outcome.schedule;
        self.value = value;
        self.patches += 1;
        Ok(PatchStats {
            mode: outcome.mode,
            cells_touched: outcome.cells_touched,
            dirty_sensors: outcome.dirty_sensors,
            value,
        })
    }
}

/// Builds the session's long-lived evaluator: all alive sensors
/// inserted, rebuild cadence lowered to [`SESSION_REBUILD_CADENCE`].
fn live_evaluator(utility: &SumUtility, instance: &SessionInstance) -> SparseSumEvaluator {
    let mut evaluator = utility
        .evaluator()
        .with_rebuild_cadence(SESSION_REBUILD_CADENCE);
    for v in instance.alive() {
        evaluator.insert(v);
    }
    evaluator
}

/// Why a session id could not be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStoreError {
    /// The id once existed but was deleted or evicted — HTTP `410 Gone`.
    Gone,
    /// The id was never seen — HTTP `404 Not Found`.
    NotFound,
}

/// Bounded LRU map from content-addressed session ids to live entries.
///
/// Ids are derived from the instance's canonical form at `put` time and
/// stay fixed for the session's lifetime (patches mutate the instance
/// but not the handle). Deleted and evicted ids are remembered in a
/// bounded tombstone ring so clients get `Gone` instead of `NotFound`.
#[derive(Debug)]
pub struct SessionStore {
    capacity: usize,
    /// LRU order: least recently used first.
    entries: Vec<(String, SessionEntry)>,
    tombstones: VecDeque<String>,
    max_tombstones: usize,
}

impl SessionStore {
    /// Creates a store holding at most `capacity` live sessions
    /// (clamped to at least 1) and remembering up to `4 × capacity`
    /// dead ids.
    pub fn new(capacity: usize) -> SessionStore {
        let capacity = capacity.max(1);
        SessionStore {
            capacity,
            entries: Vec::new(),
            tombstones: VecDeque::new(),
            max_tombstones: capacity * 4,
        }
    }

    /// The content-addressed session id of an instance: the FNV-1a hash
    /// of its canonical form, rendered as 16 hex digits.
    pub fn session_id(instance: &SessionInstance) -> String {
        format!("{:016x}", fnv1a_64(instance.canonical().as_bytes()))
    }

    /// Maximum number of live sessions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live sessions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no session is live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts (or replaces) an entry under its content-addressed id and
    /// returns `(id, evicted)` where `evicted` names the LRU session
    /// pushed out to make room, if any.
    pub fn put(&mut self, entry: SessionEntry) -> (String, Option<String>) {
        let id = Self::session_id(entry.instance());
        self.tombstones.retain(|t| t != &id);
        if let Some(pos) = self.position(&id) {
            self.entries.remove(pos);
            self.entries.push((id.clone(), entry));
            return (id, None);
        }
        self.entries.push((id.clone(), entry));
        let evicted = if self.entries.len() > self.capacity {
            let (dead, _) = self.entries.remove(0);
            self.bury(dead.clone());
            Some(dead)
        } else {
            None
        };
        (id, evicted)
    }

    /// Looks up a live session, refreshing its LRU recency.
    ///
    /// # Errors
    ///
    /// [`SessionStoreError::Gone`] for a deleted/evicted id,
    /// [`SessionStoreError::NotFound`] for an unknown one.
    pub fn get(&mut self, id: &str) -> Result<&mut SessionEntry, SessionStoreError> {
        let Some(pos) = self.position(id) else {
            return Err(self.missing(id));
        };
        let entry = self.entries.remove(pos);
        self.entries.push(entry);
        match self.entries.last_mut() {
            Some((_, e)) => Ok(e),
            None => unreachable!("entry was just pushed"),
        }
    }

    /// Deletes a live session, leaving a tombstone.
    ///
    /// # Errors
    ///
    /// As [`SessionStore::get`].
    pub fn delete(&mut self, id: &str) -> Result<(), SessionStoreError> {
        let Some(pos) = self.position(id) else {
            return Err(self.missing(id));
        };
        let (dead, _) = self.entries.remove(pos);
        self.bury(dead);
        Ok(())
    }

    fn position(&self, id: &str) -> Option<usize> {
        self.entries.iter().position(|(k, _)| k == id)
    }

    fn missing(&self, id: &str) -> SessionStoreError {
        if self.tombstones.iter().any(|t| t == id) {
            SessionStoreError::Gone
        } else {
            SessionStoreError::NotFound
        }
    }

    fn bury(&mut self, id: String) {
        if self.tombstones.len() == self.max_tombstones {
            self.tombstones.pop_front();
        }
        self.tombstones.push_back(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::TargetSpec;
    use cool_common::SensorSet;

    fn instance(seed_target: usize) -> SessionInstance {
        SessionInstance::new(
            8,
            vec![
                TargetSpec {
                    coverage: SensorSet::from_indices(8, [seed_target % 8, 1, 2]),
                    p: 0.5,
                },
                TargetSpec {
                    coverage: SensorSet::from_indices(8, [3, 4, 5, 6, 7]),
                    p: 0.25,
                },
            ],
            15.0,
            45.0,
            12.0,
        )
        .unwrap()
    }

    #[test]
    fn entry_patch_updates_schedule_and_counts() {
        let mut entry = SessionEntry::solve(instance(0)).unwrap();
        let before = entry.value();
        let stats = entry
            .patch(
                &Delta::Reweight { target: 0, p: 1.0 },
                &RepairConfig::default(),
            )
            .unwrap();
        assert_eq!(entry.patches(), 1);
        assert!(stats.value >= before - 1e-9, "reweighting up cannot hurt");
        assert!(stats.dirty_sensors > 0);
    }

    #[test]
    fn entry_patch_rejects_invalid_delta_without_mutating() {
        let mut entry = SessionEntry::solve(instance(0)).unwrap();
        let canonical = entry.instance().canonical();
        assert!(entry
            .patch(
                &Delta::RemoveSensor { sensor: 99 },
                &RepairConfig::default()
            )
            .is_err());
        assert_eq!(entry.instance().canonical(), canonical);
        assert_eq!(entry.patches(), 0);
    }

    #[test]
    fn store_round_trip_and_recency() {
        let mut store = SessionStore::new(2);
        let (id, evicted) = store.put(SessionEntry::solve(instance(0)).unwrap());
        assert!(evicted.is_none());
        assert_eq!(id.len(), 16);
        assert!(store.get(&id).is_ok());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn store_evicts_lru_and_remembers_tombstones() {
        let mut store = SessionStore::new(2);
        let (id0, _) = store.put(SessionEntry::solve(instance(0)).unwrap());
        let (id1, _) = store.put(SessionEntry::solve(instance(6)).unwrap());
        // Touch id0 so id1 is the LRU victim.
        store.get(&id0).unwrap();
        let (_id2, evicted) = store.put(SessionEntry::solve(instance(7)).unwrap());
        assert_eq!(evicted.as_deref(), Some(id1.as_str()));
        assert!(matches!(store.get(&id1), Err(SessionStoreError::Gone)));
        assert!(matches!(
            store.get("0000000000000000"),
            Err(SessionStoreError::NotFound)
        ));
    }

    #[test]
    fn delete_tombstones_and_re_put_resurrects() {
        let mut store = SessionStore::new(2);
        let (id, _) = store.put(SessionEntry::solve(instance(0)).unwrap());
        store.delete(&id).unwrap();
        assert!(matches!(store.get(&id), Err(SessionStoreError::Gone)));
        assert_eq!(store.delete(&id), Err(SessionStoreError::Gone));
        let (again, _) = store.put(SessionEntry::solve(instance(0)).unwrap());
        assert_eq!(again, id);
        assert!(store.get(&id).is_ok());
    }

    #[test]
    fn session_id_is_stable_content_address() {
        let a = SessionStore::session_id(&instance(0));
        let b = SessionStore::session_id(&instance(0));
        let c = SessionStore::session_id(&instance(6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
