//! Property tests for the session delta language (ISSUE 7 satellite):
//! any sequence of **valid** deltas leaves the instance lint-clean, a
//! patched entry's schedule stays feasible, and `Remove∘Add` of the same
//! sensor round-trips to the exact original canonical form.

#![allow(clippy::expect_used, clippy::unwrap_used)]

use cool_common::SensorSet;
use cool_core::RepairConfig;
use cool_session::{Delta, SessionEntry, SessionInstance, TargetSpec};
use proptest::prelude::*;

/// Builds a valid instance from raw generator material: `n` sensors and
/// one target per coverage word (bit `v` of word `i` ⇒ sensor `v` covers
/// target `i`), each forced non-empty.
fn instance_from(n: usize, words: &[u32], p: f64) -> SessionInstance {
    let targets: Vec<TargetSpec> = words
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let members = (0..n).filter(|v| w & (1 << v) != 0);
            let mut coverage = SensorSet::from_indices(n, members);
            if coverage.is_empty() {
                coverage = SensorSet::from_indices(n, [i % n]);
            }
            TargetSpec { coverage, p }
        })
        .collect();
    SessionInstance::new(n, targets, 15.0, 45.0, 12.0).expect("generator material is valid")
}

/// Interprets raw generator words as a delta against the current state,
/// steering indices into range so most draws are valid (invalid ones are
/// exercised too — they must be rejected without mutating).
fn delta_from(instance: &SessionInstance, kind: u8, a: usize, b: u32, p: f64) -> Delta {
    let n = instance.n();
    match kind % 6 {
        0 => Delta::AddSensor { sensor: a % n },
        1 => Delta::RemoveSensor { sensor: a % n },
        2 => {
            let coverage: Vec<usize> = (0..n).filter(|v| b & (1 << v) != 0).collect();
            Delta::AddTarget {
                p,
                coverage: if coverage.is_empty() {
                    vec![a % n]
                } else {
                    coverage
                },
            }
        }
        3 => Delta::RemoveTarget {
            target: a % instance.targets().len().max(1),
        },
        4 => Delta::Reweight {
            target: a % instance.targets().len().max(1),
            p,
        },
        _ => {
            // Integral ρ both ways: ρ ∈ {2, 3} or 1/ρ ∈ {2, 3}.
            let k = f64::from(b % 2 + 2);
            if a.is_multiple_of(2) {
                Delta::RhoChange {
                    discharge_minutes: 15.0,
                    recharge_minutes: 15.0 * k,
                }
            } else {
                Delta::RhoChange {
                    discharge_minutes: 15.0 * k,
                    recharge_minutes: 15.0,
                }
            }
        }
    }
}

proptest! {
    /// Every successfully applied delta sequence leaves the instance
    /// passing the cool-lint pre-flight, and the canonical form parses
    /// back through the replay grammar where applicable.
    #[test]
    fn valid_delta_sequences_stay_lint_clean(
        n in 3usize..8,
        words in proptest::collection::vec(any::<u32>(), 1..4),
        p in 0.1f64..0.9,
        script in proptest::collection::vec(
            (any::<u8>(), any::<usize>(), any::<u32>(), 0.05f64..0.95), 1..12),
    ) {
        let mut instance = instance_from(n, &words, p);
        prop_assert!(instance.validate().is_ok());
        for (kind, a, b, q) in script {
            let delta = delta_from(&instance, kind, a, b, q);
            let before = instance.canonical();
            match instance.apply(&delta) {
                Ok(dirty) => {
                    prop_assert!(dirty.universe() == n);
                    prop_assert!(
                        instance.validate().is_ok(),
                        "lint pre-flight failed after {delta:?}"
                    );
                }
                Err(_) => prop_assert_eq!(instance.canonical(), before),
            }
        }
    }

    /// A patched entry always carries a feasible schedule whose stored
    /// value matches the schedule re-evaluated against the instance.
    #[test]
    fn patched_entries_stay_feasible(
        n in 3usize..7,
        words in proptest::collection::vec(any::<u32>(), 1..3),
        script in proptest::collection::vec(
            (any::<u8>(), any::<usize>(), any::<u32>(), 0.05f64..0.95), 1..6),
    ) {
        let instance = instance_from(n, &words, 0.5);
        let mut entry = SessionEntry::solve(instance).expect("generated instance solvable");
        let config = RepairConfig::default();
        for (kind, a, b, q) in script {
            let delta = delta_from(entry.instance(), kind, a, b, q);
            if entry.patch(&delta, &config).is_ok() {
                prop_assert!(entry.schedule().is_feasible(entry.instance().cycle()));
                let expect = entry.schedule().period_utility(&entry.instance().utility());
                prop_assert!((entry.value() - expect).abs() < 1e-12);
            }
        }
    }

    /// `Remove∘Add` of the same alive sensor is the identity on the
    /// canonical form (full coverage sets survive the death).
    #[test]
    fn remove_add_round_trips(
        n in 3usize..8,
        words in proptest::collection::vec(any::<u32>(), 1..4),
        victim in any::<usize>(),
    ) {
        let mut instance = instance_from(n, &words, 0.5);
        let v = victim % n;
        let before = instance.canonical();
        instance.apply(&Delta::RemoveSensor { sensor: v }).expect("alive sensor removable");
        instance.apply(&Delta::AddSensor { sensor: v }).expect("dead sensor resurrectable");
        prop_assert_eq!(instance.canonical(), before);
    }
}
