//! The rooftop testbed layout.

use cool_geometry::{DeploymentKind, DeploymentSpec, Point, Rect};
use rand::Rng;

/// Positions of the simulated rooftop testbed: sensor nodes on the roof, a
/// sink "in the lab" at the edge, and a few always-powered relay nodes
/// bridging the two (as in Fig. 6(d) of the paper).
#[derive(Clone, Debug, PartialEq)]
pub struct RooftopDeployment {
    roof: Rect,
    nodes: Vec<Point>,
    relays: Vec<Point>,
    sink: Point,
    comm_range: f64,
}

impl RooftopDeployment {
    /// The paper's testbed: 100 nodes on a jittered 10×10 grid over a
    /// 45×45 m roof, three relays marching toward the sink 15 m off-roof,
    /// 12 m radio range.
    pub fn paper_layout<R: Rng + ?Sized>(rng: &mut R) -> Self {
        RooftopDeployment::new(Rect::square(45.0), 100, 12.0, rng)
    }

    /// A custom layout: `n` nodes on a jittered grid over `roof`, relays
    /// placed automatically between the roof edge and the sink.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `comm_range <= 0`.
    pub fn new<R: Rng + ?Sized>(roof: Rect, n: usize, comm_range: f64, rng: &mut R) -> Self {
        assert!(n > 0, "need at least one node");
        assert!(comm_range > 0.0, "communication range must be positive");
        let spec = DeploymentSpec::new(roof, n, DeploymentKind::JitteredGrid { jitter: 0.25 });
        let nodes = spec.generate(rng);
        // Sink sits beyond the roof's right edge; relays every ~0.8·range.
        let sink = Point::new(roof.max().x + comm_range * 1.25, roof.center().y);
        let relay_step = comm_range * 0.8;
        let mut relays = Vec::new();
        let mut x = roof.max().x + relay_step * 0.5;
        while x < sink.x {
            relays.push(Point::new(x, roof.center().y));
            x += relay_step;
        }
        RooftopDeployment {
            roof,
            nodes,
            relays,
            sink,
            comm_range,
        }
    }

    /// The roof rectangle.
    pub fn roof(&self) -> Rect {
        self.roof
    }

    /// Sensor node positions.
    pub fn nodes(&self) -> &[Point] {
        &self.nodes
    }

    /// Number of sensor nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Relay positions (always powered, not scheduled).
    pub fn relays(&self) -> &[Point] {
        &self.relays
    }

    /// The sink position.
    pub fn sink(&self) -> Point {
        self.sink
    }

    /// Radio communication range.
    pub fn comm_range(&self) -> f64 {
        self.comm_range
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::SeedSequence;

    fn rng() -> rand::rngs::StdRng {
        SeedSequence::new(12).nth_rng(0)
    }

    #[test]
    fn paper_layout_shape() {
        let d = RooftopDeployment::paper_layout(&mut rng());
        assert_eq!(d.n_nodes(), 100);
        assert!(d.nodes().iter().all(|&p| d.roof().contains(p)));
        assert!(!d.relays().is_empty(), "relays bridge roof to sink");
        assert!(d.sink().x > d.roof().max().x);
    }

    #[test]
    fn relays_chain_within_comm_range() {
        let d = RooftopDeployment::paper_layout(&mut rng());
        // Consecutive relays (and the last relay to the sink) within range.
        let chain: Vec<Point> = d.relays().iter().copied().chain([d.sink()]).collect();
        for pair in chain.windows(2) {
            assert!(pair[0].distance(pair[1]) <= d.comm_range() + 1e-9);
        }
    }

    #[test]
    fn custom_layout_is_deterministic() {
        let a = RooftopDeployment::new(Rect::square(30.0), 25, 10.0, &mut rng());
        let b = RooftopDeployment::new(Rect::square(30.0), 25, 10.0, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_layout_panics() {
        let _ = RooftopDeployment::new(Rect::square(10.0), 0, 5.0, &mut rng());
    }
}
