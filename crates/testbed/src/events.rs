//! Event-level validation of the detection utility's semantics.
//!
//! §II-C defines `U_i(S) = 1 − Π_{v∈S}(1 − p_v)` as "the probability that
//! the event happened at the target O_i will be detected by these S
//! sensors". This module closes the loop: it simulates actual events at
//! targets and per-sensor Bernoulli detections, counts what fraction of
//! events the active sets of a schedule catch, and compares that frequency
//! with the analytic schedule utility. Agreement here means the scheduler
//! is optimising the quantity the application actually cares about.

use cool_common::{SensorId, SensorSet};
use cool_core::schedule::PeriodSchedule;
use rand::Rng;

/// Result of an event-level detection simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DetectionOutcome {
    /// Events generated.
    pub events: u64,
    /// Events detected by at least one active covering sensor.
    pub detected: u64,
}

impl DetectionOutcome {
    /// Empirical detection rate (`1.0` when no events occurred).
    pub fn rate(&self) -> f64 {
        if self.events == 0 {
            1.0
        } else {
            self.detected as f64 / self.events as f64
        }
    }
}

/// Simulates `events_per_slot` events per target per slot over `periods`
/// repetitions of `schedule`; each event at target `i` is independently
/// detected by every **active** sensor of `coverages[i]` with probability
/// `p`. Returns per-target outcomes.
///
/// # Panics
///
/// Panics if `p ∉ [0, 1]`, `periods == 0`, or a coverage universe
/// mismatches the schedule.
pub fn simulate_detection<R: Rng + ?Sized>(
    schedule: &PeriodSchedule,
    coverages: &[SensorSet],
    p: f64,
    events_per_slot: usize,
    periods: usize,
    rng: &mut R,
) -> Vec<DetectionOutcome> {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!(periods > 0, "need at least one period");
    assert!(
        coverages
            .iter()
            .all(|c| c.universe() == schedule.n_sensors()),
        "coverage universe mismatch"
    );

    let t_slots = schedule.slots_per_period();
    let active_sets: Vec<SensorSet> = (0..t_slots).map(|t| schedule.active_set(t)).collect();
    let mut outcomes = vec![
        DetectionOutcome {
            events: 0,
            detected: 0
        };
        coverages.len()
    ];

    for _period in 0..periods {
        for active in &active_sets {
            for (target, coverage) in coverages.iter().enumerate() {
                // Sensors that are both active and able to see the target.
                let watchers: Vec<SensorId> = coverage.intersection(active).iter().collect();
                for _ in 0..events_per_slot {
                    outcomes[target].events += 1;
                    let caught = watchers.iter().any(|_| rng.random_range(0.0..1.0) < p);
                    if caught {
                        outcomes[target].detected += 1;
                    }
                }
            }
        }
    }
    outcomes
}

/// The analytic per-target average detection probability of a schedule:
/// `mean_t [1 − (1−p)^{|S(t) ∩ V(O_i)|}]`.
pub fn analytic_detection(schedule: &PeriodSchedule, coverages: &[SensorSet], p: f64) -> Vec<f64> {
    let t_slots = schedule.slots_per_period();
    coverages
        .iter()
        .map(|coverage| {
            (0..t_slots)
                .map(|t| {
                    let watchers = coverage.intersection_len(&schedule.active_set(t));
                    1.0 - (1.0 - p).powi(i32::try_from(watchers).unwrap_or(i32::MAX))
                })
                .sum::<f64>()
                / t_slots as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::SeedSequence;
    use cool_core::greedy::greedy_active_naive;
    use cool_core::schedule::ScheduleMode;
    use cool_utility::SumUtility;

    #[test]
    fn empirical_rate_matches_analytic_utility() {
        let coverages = vec![
            SensorSet::from_indices(8, [0, 1, 2, 3]),
            SensorSet::from_indices(8, [4, 5, 6, 7]),
        ];
        let p = 0.4;
        let u = SumUtility::multi_target_detection(&coverages, p);
        let schedule = greedy_active_naive(&u, 4).unwrap();

        let mut rng = SeedSequence::new(88).nth_rng(0);
        let outcomes = simulate_detection(&schedule, &coverages, p, 5, 2_000, &mut rng);
        let analytic = analytic_detection(&schedule, &coverages, p);
        for (target, (outcome, expected)) in outcomes.iter().zip(&analytic).enumerate() {
            assert!(
                (outcome.rate() - expected).abs() < 0.01,
                "target {target}: empirical {} vs analytic {expected}",
                outcome.rate()
            );
        }
    }

    #[test]
    fn uncovered_target_detects_nothing() {
        let coverages = vec![SensorSet::new(2)];
        let schedule = PeriodSchedule::new(ScheduleMode::ActiveSlot, 2, vec![0, 1]);
        let mut rng = SeedSequence::new(89).nth_rng(0);
        let outcomes = simulate_detection(&schedule, &coverages, 0.9, 3, 50, &mut rng);
        assert_eq!(outcomes[0].detected, 0);
        assert_eq!(outcomes[0].events, 2 * 3 * 50);
        assert_eq!(outcomes[0].rate(), 0.0);
    }

    #[test]
    fn certain_detection_with_p_one() {
        let coverages = vec![SensorSet::from_indices(2, [0, 1])];
        let schedule = PeriodSchedule::new(ScheduleMode::ActiveSlot, 2, vec![0, 1]);
        let mut rng = SeedSequence::new(90).nth_rng(0);
        let outcomes = simulate_detection(&schedule, &coverages, 1.0, 2, 10, &mut rng);
        assert_eq!(outcomes[0].rate(), 1.0);
    }

    #[test]
    fn zero_events_rate_is_one() {
        let outcome = DetectionOutcome {
            events: 0,
            detected: 0,
        };
        assert_eq!(outcome.rate(), 1.0);
    }
}
