//! A discrete-event simulator of the paper's rooftop solar testbed.
//!
//! §VI deploys 100 TelosB motes with solar cells on a building roof, a sink
//! in a lab, and several relay nodes; the experiments (a) measure charging
//! patterns per weather condition and (b) run the scheduling algorithms for
//! 30 daytime periods. With no hardware available, this crate simulates
//! that testbed end-to-end (the substitution is documented in DESIGN.md):
//!
//! * [`RooftopDeployment`] — the 10×10 jittered node grid, sink and relays
//!   ([`deployment`]);
//! * [`RadioModel`] — per-slot energy expenditure (idle listening / rx /
//!   tx) with the paper's measured property that active-slot consumption
//!   fluctuates only slightly ([`radio`]);
//! * [`CollectionTree`] — min-hop routing to the sink, giving per-node
//!   forwarding load ([`network`]);
//! * [`TestbedSim`] — drives any
//!   [`ActivationPolicy`](cool_core::policy::ActivationPolicy) against
//!   per-node energy state machines slot by slot, recording achieved
//!   utility and energy/packet metrics ([`sim`], [`metrics`]);
//! * [`NodeTraceSet`] — multi-day, multi-node light/voltage traces under
//!   evolving weather: the Fig. 7 data generator ([`trace`]).
//!
//! # Examples
//!
//! ```
//! use cool_common::SeedSequence;
//! use cool_core::{greedy::greedy_schedule, policy::SchedulePolicy, problem::Problem};
//! use cool_energy::ChargeCycle;
//! use cool_testbed::{RooftopDeployment, TestbedSim};
//! use cool_utility::DetectionUtility;
//!
//! let deployment = RooftopDeployment::paper_layout(&mut SeedSequence::new(1).nth_rng(0));
//! let utility = DetectionUtility::uniform(deployment.n_nodes(), 0.4);
//! let problem = Problem::new(utility.clone(), ChargeCycle::paper_sunny(), 4).unwrap();
//! let policy = SchedulePolicy::new(greedy_schedule(&problem));
//!
//! let mut sim = TestbedSim::new(deployment, ChargeCycle::paper_sunny());
//! let metrics = sim.run(policy, &utility, 16, &mut SeedSequence::new(1).nth_rng(1));
//! assert_eq!(metrics.slots(), 16);
//! assert!(metrics.average_utility() > 0.5);
//! ```

pub mod deployment;
pub mod events;
pub mod link;
pub mod metrics;
pub mod network;
pub mod radio;
pub mod sim;
pub mod trace;

pub use deployment::RooftopDeployment;
pub use events::{analytic_detection, simulate_detection, DetectionOutcome};
pub use link::LinkQuality;
pub use metrics::SimMetrics;
pub use network::CollectionTree;
pub use radio::{RadioModel, SlotEnergyBreakdown};
pub use sim::TestbedSim;
pub use trace::{NodeTrace, NodeTraceSet};
