//! Link quality: distance-dependent packet reception.
//!
//! The base simulator treats links inside the communication range as
//! perfect. Real 802.15.4 links degrade smoothly with distance (the
//! "transitional region"); [`LinkQuality`] models the packet reception
//! ratio (PRR) as a logistic curve and lets the simulator sample per-hop
//! delivery, so collection success becomes probabilistic the way testbed
//! measurements are.

use cool_geometry::Point;
use rand::Rng;

/// Logistic PRR-vs-distance model:
/// `PRR(d) = 1 / (1 + exp((d − d50) / steepness))`.
///
/// `d50` is the distance at which half the packets get through;
/// `steepness` controls the width of the transitional region.
///
/// # Examples
///
/// ```
/// use cool_testbed::LinkQuality;
///
/// let link = LinkQuality::new(10.0, 1.5);
/// assert!((link.prr(10.0) - 0.5).abs() < 1e-12);
/// assert!(link.prr(2.0) > 0.99);
/// assert!(link.prr(18.0) < 0.01);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkQuality {
    d50: f64,
    steepness: f64,
}

impl LinkQuality {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics unless `d50 > 0` and `steepness > 0`.
    pub fn new(d50: f64, steepness: f64) -> Self {
        assert!(d50.is_finite() && d50 > 0.0, "d50 must be positive");
        assert!(
            steepness.is_finite() && steepness > 0.0,
            "steepness must be positive"
        );
        LinkQuality { d50, steepness }
    }

    /// TelosB-class defaults relative to a nominal `comm_range`: solid
    /// links up to ≈70% of the range, a transitional region around it.
    pub fn for_comm_range(comm_range: f64) -> Self {
        LinkQuality::new(comm_range * 0.85, comm_range * 0.08)
    }

    /// Packet reception ratio at distance `d`.
    pub fn prr(&self, d: f64) -> f64 {
        1.0 / (1.0 + ((d - self.d50) / self.steepness).exp())
    }

    /// Samples one packet transmission across a link of length `d`.
    pub fn sample<R: Rng + ?Sized>(&self, d: f64, rng: &mut R) -> bool {
        rng.random_range(0.0..1.0) < self.prr(d)
    }

    /// End-to-end delivery probability along a multi-hop path (independent
    /// per-hop losses, no retransmissions).
    pub fn path_delivery_probability(&self, path: &[Point]) -> f64 {
        path.windows(2)
            .map(|pair| self.prr(pair[0].distance(pair[1])))
            .product()
    }

    /// Samples end-to-end delivery along a path.
    pub fn sample_path<R: Rng + ?Sized>(&self, path: &[Point], rng: &mut R) -> bool {
        path.windows(2)
            .all(|pair| self.sample(pair[0].distance(pair[1]), rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::SeedSequence;

    #[test]
    fn prr_is_monotone_decreasing() {
        let link = LinkQuality::new(10.0, 2.0);
        let mut prev = 1.0;
        for d in 0..30 {
            let p = link.prr(f64::from(d));
            assert!(p <= prev + 1e-12, "PRR rose at d={d}");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn comm_range_defaults_are_sane() {
        let link = LinkQuality::for_comm_range(12.0);
        assert!(link.prr(6.0) > 0.98, "short links are solid");
        assert!(link.prr(12.0) < 0.25, "range-edge links are lossy");
    }

    #[test]
    fn path_probability_multiplies_hops() {
        let link = LinkQuality::new(10.0, 2.0);
        let a = Point::new(0.0, 0.0);
        let b = Point::new(8.0, 0.0);
        let c = Point::new(16.0, 0.0);
        let two_hop = link.path_delivery_probability(&[a, b, c]);
        let per_hop = link.prr(8.0);
        assert!((two_hop - per_hop * per_hop).abs() < 1e-12);
        assert_eq!(
            link.path_delivery_probability(&[a]),
            1.0,
            "empty path is certain"
        );
    }

    #[test]
    fn sampling_matches_probability() {
        let link = LinkQuality::new(10.0, 2.0);
        let mut rng = SeedSequence::new(31).nth_rng(0);
        let trials = 20_000;
        let hits = (0..trials).filter(|_| link.sample(9.0, &mut rng)).count();
        let rate = hits as f64 / f64::from(trials);
        assert!(
            (rate - link.prr(9.0)).abs() < 0.02,
            "{rate} vs {}",
            link.prr(9.0)
        );
    }

    #[test]
    #[should_panic(expected = "d50 must be positive")]
    fn zero_d50_panics() {
        let _ = LinkQuality::new(0.0, 1.0);
    }
}
