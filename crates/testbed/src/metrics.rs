//! Metrics collected by a simulation run.

use cool_common::OnlineStats;

/// Aggregated observations from one [`TestbedSim`](crate::TestbedSim) run.
#[derive(Clone, Debug, Default)]
pub struct SimMetrics {
    per_slot_utility: Vec<f64>,
    utility_stats: OnlineStats,
    requested_activations: u64,
    honoured_activations: u64,
    delivered_reports: u64,
    energy_spent_mj: f64,
}

impl SimMetrics {
    /// Creates an empty collector.
    pub fn new() -> Self {
        SimMetrics::default()
    }

    /// Records one slot.
    pub fn record_slot(
        &mut self,
        utility: f64,
        requested: usize,
        honoured: usize,
        delivered: usize,
        energy_mj: f64,
    ) {
        self.per_slot_utility.push(utility);
        self.utility_stats.push(utility);
        self.requested_activations += requested as u64;
        self.honoured_activations += honoured as u64;
        self.delivered_reports += delivered as u64;
        self.energy_spent_mj += energy_mj;
    }

    /// Number of recorded slots.
    pub fn slots(&self) -> usize {
        self.per_slot_utility.len()
    }

    /// The per-slot utility series.
    pub fn per_slot_utility(&self) -> &[f64] {
        &self.per_slot_utility
    }

    /// Mean utility per slot.
    pub fn average_utility(&self) -> f64 {
        self.utility_stats.mean()
    }

    /// Utility statistics (mean/std/min/max).
    pub fn utility_stats(&self) -> OnlineStats {
        self.utility_stats
    }

    /// Activations requested by the policy across the run.
    pub fn requested_activations(&self) -> u64 {
        self.requested_activations
    }

    /// Activations actually honoured by node energy state.
    pub fn honoured_activations(&self) -> u64 {
        self.honoured_activations
    }

    /// Fraction of requested activations honoured (1.0 when none were
    /// requested).
    pub fn activation_success_rate(&self) -> f64 {
        if self.requested_activations == 0 {
            1.0
        } else {
            self.honoured_activations as f64 / self.requested_activations as f64
        }
    }

    /// Reports delivered to the sink.
    pub fn delivered_reports(&self) -> u64 {
        self.delivered_reports
    }

    /// Total energy expended by active slots (mJ).
    pub fn energy_spent_mj(&self) -> f64 {
        self.energy_spent_mj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_slots() {
        let mut m = SimMetrics::new();
        m.record_slot(0.5, 10, 9, 9, 100.0);
        m.record_slot(0.7, 10, 10, 10, 110.0);
        assert_eq!(m.slots(), 2);
        assert!((m.average_utility() - 0.6).abs() < 1e-12);
        assert_eq!(m.requested_activations(), 20);
        assert_eq!(m.honoured_activations(), 19);
        assert!((m.activation_success_rate() - 0.95).abs() < 1e-12);
        assert_eq!(m.delivered_reports(), 19);
        assert!((m.energy_spent_mj() - 210.0).abs() < 1e-12);
        assert_eq!(m.per_slot_utility(), &[0.5, 0.7]);
    }

    #[test]
    fn empty_metrics_are_benign() {
        let m = SimMetrics::new();
        assert_eq!(m.slots(), 0);
        assert_eq!(m.average_utility(), 0.0);
        assert_eq!(m.activation_success_rate(), 1.0);
    }
}
