//! Min-hop collection tree to the sink.
//!
//! The testbed "locates a sink in a lab in the building and deploys several
//! relay nodes" (§VI-A); sensed data is "systematically gathered […] and
//! eventually transmitted to a base station" (§I). The collection tree
//! fixes each node's parent toward the sink over the radio graph (nodes +
//! relays + sink, edges within communication range) by BFS from the sink;
//! per-slot forwarding load follows by walking each report up the tree.

use cool_geometry::Point;
use std::collections::VecDeque;

/// Vertex index space: `0..n` are sensor nodes, `n..n+r` relays, `n+r` the
/// sink.
#[derive(Clone, Debug, PartialEq)]
pub struct CollectionTree {
    n_nodes: usize,
    n_relays: usize,
    /// Parent vertex of each vertex (sink's parent is itself).
    parent: Vec<usize>,
    /// Hop count to the sink (usize::MAX when disconnected).
    hops: Vec<usize>,
}

impl CollectionTree {
    /// Builds the tree from positions and a communication range.
    ///
    /// # Panics
    ///
    /// Panics if `comm_range <= 0`.
    pub fn build(nodes: &[Point], relays: &[Point], sink: Point, comm_range: f64) -> Self {
        assert!(comm_range > 0.0, "communication range must be positive");
        let n = nodes.len();
        let r = relays.len();
        let total = n + r + 1;
        let position = |v: usize| -> Point {
            if v < n {
                nodes[v]
            } else if v < n + r {
                relays[v - n]
            } else {
                sink
            }
        };
        let range_sq = comm_range * comm_range;
        let sink_idx = n + r;

        let mut parent = vec![usize::MAX; total];
        let mut hops = vec![usize::MAX; total];
        parent[sink_idx] = sink_idx;
        hops[sink_idx] = 0;
        let mut queue = VecDeque::from([sink_idx]);
        while let Some(u) = queue.pop_front() {
            for v in 0..total {
                if hops[v] == usize::MAX && position(u).distance_squared(position(v)) <= range_sq {
                    hops[v] = hops[u] + 1;
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        CollectionTree {
            n_nodes: n,
            n_relays: r,
            parent,
            hops,
        }
    }

    /// Number of sensor nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The sink's vertex index.
    pub fn sink_index(&self) -> usize {
        self.n_nodes + self.n_relays
    }

    /// Hop count from sensor `node` to the sink; `None` if disconnected.
    pub fn hops_to_sink(&self, node: usize) -> Option<usize> {
        match self.hops.get(node) {
            Some(&h) if h != usize::MAX => Some(h),
            _ => None,
        }
    }

    /// `true` when every sensor node can reach the sink.
    pub fn fully_connected(&self) -> bool {
        (0..self.n_nodes).all(|v| self.hops[v] != usize::MAX)
    }

    /// The path from `node` to the sink (inclusive), or `None` if
    /// disconnected.
    pub fn path_to_sink(&self, node: usize) -> Option<Vec<usize>> {
        if self.hops.get(node).copied().unwrap_or(usize::MAX) == usize::MAX {
            return None;
        }
        let mut path = vec![node];
        let mut v = node;
        while v != self.sink_index() {
            v = self.parent[v];
            path.push(v);
        }
        Some(path)
    }

    /// Per-vertex `(rx, tx)` packet counts when each sensor in `reporters`
    /// originates one report that is forwarded hop-by-hop to the sink.
    /// Disconnected reporters transmit once into the void.
    pub fn forwarding_load(&self, reporters: &[usize]) -> Vec<(usize, usize)> {
        let mut load = vec![(0usize, 0usize); self.parent.len()];
        for &origin in reporters {
            match self.path_to_sink(origin) {
                Some(path) => {
                    // Each vertex on the path except the sink transmits; each
                    // vertex except the origin receives.
                    for pair in path.windows(2) {
                        load[pair[0]].1 += 1;
                        load[pair[1]].0 += 1;
                    }
                }
                None => {
                    load[origin].1 += 1;
                }
            }
        }
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RooftopDeployment;
    use cool_common::SeedSequence;

    fn line_tree() -> CollectionTree {
        // nodes at x = 0, 1; relay at 2; sink at 3; range 1.1.
        CollectionTree::build(
            &[Point::new(0.0, 0.0), Point::new(1.0, 0.0)],
            &[Point::new(2.0, 0.0)],
            Point::new(3.0, 0.0),
            1.1,
        )
    }

    #[test]
    fn hop_counts_on_a_line() {
        let t = line_tree();
        assert_eq!(t.hops_to_sink(0), Some(3));
        assert_eq!(t.hops_to_sink(1), Some(2));
        assert!(t.fully_connected());
        assert_eq!(t.sink_index(), 3);
    }

    #[test]
    fn paths_walk_to_sink() {
        let t = line_tree();
        assert_eq!(t.path_to_sink(0), Some(vec![0, 1, 2, 3]));
        assert_eq!(t.path_to_sink(1), Some(vec![1, 2, 3]));
    }

    #[test]
    fn forwarding_load_accumulates() {
        let t = line_tree();
        let load = t.forwarding_load(&[0, 1]);
        // Node 0 transmits its own report; node 1 receives it and transmits
        // it plus its own; relay receives 2 and transmits 2; sink receives 2.
        assert_eq!(load[0], (0, 1));
        assert_eq!(load[1], (1, 2));
        assert_eq!(load[2], (2, 2));
        assert_eq!(load[3], (2, 0));
    }

    #[test]
    fn disconnected_node_reported() {
        let t = CollectionTree::build(
            &[Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
            &[],
            Point::new(101.0, 0.0),
            2.0,
        );
        assert_eq!(t.hops_to_sink(0), None);
        assert!(!t.fully_connected());
        assert_eq!(t.path_to_sink(0), None);
        let load = t.forwarding_load(&[0]);
        assert_eq!(load[0], (0, 1), "lost transmission still costs energy");
    }

    #[test]
    fn paper_layout_is_fully_connected() {
        let d = RooftopDeployment::paper_layout(&mut SeedSequence::new(4).nth_rng(0));
        let t = CollectionTree::build(d.nodes(), d.relays(), d.sink(), d.comm_range());
        assert!(
            t.fully_connected(),
            "the rooftop testbed must reach its sink"
        );
    }
}
