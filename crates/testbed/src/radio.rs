//! Per-slot radio/CPU energy expenditure.
//!
//! §I of the paper: "Our extensive testbed measurements show that the
//! energy expenditure of a node only has a small fluctuation when a node is
//! active (for either idle listening, packets receiving, and/or packets
//! transmitting)." This is the empirical fact that justifies modelling the
//! discharge time `T_d` as fixed. The radio model reproduces it: TelosB/
//! CC2420-class current draws where idle listening dominates (the radio
//! listens all slot; packet handling adds little on top).

use rand::Rng;

/// Energy cost coefficients for one active slot, in millijoules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RadioModel {
    /// Cost of a slot of idle listening (radio on, no traffic).
    pub idle_listen_mj: f64,
    /// Marginal cost of receiving one packet.
    pub rx_packet_mj: f64,
    /// Marginal cost of transmitting one packet.
    pub tx_packet_mj: f64,
    /// Relative σ of the multiplicative measurement noise.
    pub noise_sigma: f64,
}

impl RadioModel {
    /// TelosB-class defaults: a 15-minute active slot of idle listening at
    /// ≈ 20 mA / 3 V ≈ 54 J dominates; packets cost fractions of a joule.
    pub fn telosb() -> Self {
        RadioModel {
            idle_listen_mj: 54_000.0,
            rx_packet_mj: 25.0,
            tx_packet_mj: 30.0,
            noise_sigma: 0.01,
        }
    }

    /// Energy spent in one active slot handling the given traffic, with
    /// multiplicative Gaussian measurement noise.
    pub fn slot_energy_mj<R: Rng + ?Sized>(
        &self,
        rx_packets: usize,
        tx_packets: usize,
        rng: &mut R,
    ) -> SlotEnergyBreakdown {
        let noise = 1.0 + self.noise_sigma * standard_normal(rng);
        let idle = self.idle_listen_mj * noise.max(0.0);
        let rx = self.rx_packet_mj * rx_packets as f64;
        let tx = self.tx_packet_mj * tx_packets as f64;
        SlotEnergyBreakdown {
            idle_mj: idle,
            rx_mj: rx,
            tx_mj: tx,
        }
    }

    /// The relative spread of total slot energy across traffic loads from
    /// zero to `max_packets` each way — the "small fluctuation" the paper
    /// measures. Deterministic (noise-free) part only.
    pub fn relative_fluctuation(&self, max_packets: usize) -> f64 {
        let base = self.idle_listen_mj;
        let peak =
            self.idle_listen_mj + (self.rx_packet_mj + self.tx_packet_mj) * max_packets as f64;
        (peak - base) / peak
    }
}

impl Default for RadioModel {
    fn default() -> Self {
        RadioModel::telosb()
    }
}

/// Energy breakdown of one active slot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlotEnergyBreakdown {
    /// Idle-listening component (mJ).
    pub idle_mj: f64,
    /// Receive component (mJ).
    pub rx_mj: f64,
    /// Transmit component (mJ).
    pub tx_mj: f64,
}

impl SlotEnergyBreakdown {
    /// Total energy (mJ).
    pub fn total_mj(&self) -> f64 {
        self.idle_mj + self.rx_mj + self.tx_mj
    }
}

fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::SeedSequence;

    #[test]
    fn idle_listening_dominates() {
        let model = RadioModel::telosb();
        // Even a busy slot (50 packets each way) fluctuates little.
        assert!(
            model.relative_fluctuation(50) < 0.06,
            "fluctuation {} should be small",
            model.relative_fluctuation(50)
        );
    }

    #[test]
    fn slot_energy_accumulates_traffic() {
        let model = RadioModel {
            noise_sigma: 0.0,
            ..RadioModel::telosb()
        };
        let mut rng = SeedSequence::new(1).nth_rng(0);
        let quiet = model.slot_energy_mj(0, 0, &mut rng);
        let busy = model.slot_energy_mj(10, 5, &mut rng);
        assert_eq!(quiet.total_mj(), model.idle_listen_mj);
        assert!((busy.rx_mj - 250.0).abs() < 1e-9);
        assert!((busy.tx_mj - 150.0).abs() < 1e-9);
        assert!(busy.total_mj() > quiet.total_mj());
    }

    #[test]
    fn measurement_noise_is_small_and_centred() {
        let model = RadioModel::telosb();
        let mut rng = SeedSequence::new(2).nth_rng(0);
        let samples: Vec<f64> = (0..2000)
            .map(|_| model.slot_energy_mj(0, 0, &mut rng).total_mj())
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - model.idle_listen_mj).abs() / model.idle_listen_mj < 0.005);
        let spread = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - samples.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            spread / mean < 0.12,
            "fluctuation is a few percent, got {}",
            spread / mean
        );
    }
}
