//! The slot-level testbed simulator.

use crate::link::LinkQuality;
use crate::metrics::SimMetrics;
use crate::network::CollectionTree;
use crate::radio::RadioModel;
use crate::RooftopDeployment;
use cool_common::{SensorId, SensorSet};
use cool_core::policy::ActivationPolicy;
use cool_energy::{ChargeCycle, NodeEnergyMachine};
use cool_utility::UtilityFunction;
use rand::Rng;

/// Simulates the rooftop testbed: per-node energy state machines, a
/// collection tree for report delivery, and a radio energy model, driven by
/// an [`ActivationPolicy`] one slot at a time.
///
/// The achieved utility each slot is evaluated on the sensors that were
/// **actually** active (requests refused by depleted nodes don't count) —
/// this is how the simulation can diverge from the planner's expectation,
/// and what the paper's testbed numbers measure.
#[derive(Clone, Debug)]
pub struct TestbedSim {
    deployment: RooftopDeployment,
    tree: CollectionTree,
    radio: RadioModel,
    cycle: ChargeCycle,
    ready_leakage: f64,
    activation_tolerance: f64,
    link_quality: Option<LinkQuality>,
    nodes: Vec<NodeEnergyMachine>,
}

impl TestbedSim {
    /// Creates a simulator with the default TelosB radio model.
    pub fn new(deployment: RooftopDeployment, cycle: ChargeCycle) -> Self {
        let tree = CollectionTree::build(
            deployment.nodes(),
            deployment.relays(),
            deployment.sink(),
            deployment.comm_range(),
        );
        let nodes = (0..deployment.n_nodes())
            .map(|_| NodeEnergyMachine::new(cycle))
            .collect();
        TestbedSim {
            deployment,
            tree,
            radio: RadioModel::telosb(),
            cycle,
            ready_leakage: 0.0,
            activation_tolerance: 0.0,
            link_quality: None,
            nodes,
        }
    }

    fn rebuild_nodes(&mut self) {
        self.nodes = (0..self.deployment.n_nodes())
            .map(|_| {
                NodeEnergyMachine::new(self.cycle)
                    .with_ready_leakage(self.ready_leakage)
                    .with_activation_tolerance(self.activation_tolerance)
            })
            .collect();
    }

    /// Replaces the radio model.
    #[must_use]
    pub fn with_radio(mut self, radio: RadioModel) -> Self {
        self.radio = radio;
        self
    }

    /// Applies a ready-state leakage fraction per slot to every node —
    /// the ablation of the paper's "ready nodes hold their charge"
    /// idealisation (see
    /// [`NodeEnergyMachine::with_ready_leakage`]).
    ///
    /// # Panics
    ///
    /// Panics if `leakage ∉ [0, 1]`.
    #[must_use]
    pub fn with_ready_leakage(mut self, leakage: f64) -> Self {
        self.ready_leakage = leakage;
        self.rebuild_nodes();
        self
    }

    /// Applies an activation tolerance to every node — see
    /// [`NodeEnergyMachine::with_activation_tolerance`].
    ///
    /// # Panics
    ///
    /// Panics if `tolerance ∉ [0, 1]`.
    #[must_use]
    pub fn with_activation_tolerance(mut self, tolerance: f64) -> Self {
        self.activation_tolerance = tolerance;
        self.rebuild_nodes();
        self
    }

    /// Makes per-hop packet delivery probabilistic with the given link
    /// model (default: perfect links within range).
    #[must_use]
    pub fn with_link_quality(mut self, link: LinkQuality) -> Self {
        self.link_quality = Some(link);
        self
    }

    /// Position of a collection-tree vertex (sensor, relay or sink).
    fn vertex_position(&self, vertex: usize) -> cool_geometry::Point {
        let n = self.deployment.n_nodes();
        let r = self.deployment.relays().len();
        if vertex < n {
            self.deployment.nodes()[vertex]
        } else if vertex < n + r {
            self.deployment.relays()[vertex - n]
        } else {
            self.deployment.sink()
        }
    }

    /// The deployment being simulated.
    pub fn deployment(&self) -> &RooftopDeployment {
        &self.deployment
    }

    /// The collection tree.
    pub fn tree(&self) -> &CollectionTree {
        &self.tree
    }

    /// The governing charge cycle.
    pub fn cycle(&self) -> ChargeCycle {
        self.cycle
    }

    /// The mandatory static pre-flight the simulator applies before
    /// running: universe/deployment consistency, a non-empty horizon, and
    /// sampled conformance of the utility to the submodular axioms —
    /// reported with stable `COOL` codes. See [`cool_lint::preflight`].
    pub fn preflight<U: UtilityFunction>(&self, utility: &U, slots: usize) -> cool_lint::Report {
        cool_lint::preflight(utility, self.deployment.n_nodes(), slots)
    }

    /// Runs `slots` slots under `policy`, scoring with `utility`.
    ///
    /// The inputs first pass the static [`preflight`](Self::preflight)
    /// lint; call it directly to inspect the diagnostics without the
    /// panic.
    ///
    /// # Panics
    ///
    /// Panics with the rendered `COOL`-coded report when the pre-flight
    /// finds errors (e.g. a utility universe that differs from the node
    /// count, or a utility violating the submodular axioms).
    pub fn run<P, U, R>(
        &mut self,
        mut policy: P,
        utility: &U,
        slots: usize,
        rng: &mut R,
    ) -> SimMetrics
    where
        P: ActivationPolicy,
        U: UtilityFunction,
        R: Rng + ?Sized,
    {
        let n = self.deployment.n_nodes();
        let report = self.preflight(utility, slots);
        assert!(report.is_clean(), "testbed pre-flight failed:\n{report}");
        let mut metrics = SimMetrics::new();

        for slot in 0..slots {
            // Which nodes could activate this slot?
            let mut ready = SensorSet::new(n);
            for (i, node) in self.nodes.iter().enumerate() {
                if node.can_activate() {
                    ready.insert(SensorId(i));
                }
            }
            let requested = policy.decide(slot, &ready);

            // Drive the energy machines.
            let mut active = SensorSet::new(n);
            for (i, node) in self.nodes.iter_mut().enumerate() {
                let want = requested.contains(SensorId(i));
                if node.step(want) {
                    active.insert(SensorId(i));
                }
            }

            // Reports from active sensors flow up the collection tree;
            // intermediate *sensor* hops must themselves be active to
            // forward (relays and the sink are always powered).
            let reporters: Vec<usize> = active.iter().map(cool_common::SensorId::index).collect();
            let mut delivered = 0usize;
            for &origin in &reporters {
                if let Some(path) = self.tree.path_to_sink(origin) {
                    let route_awake = path[1..]
                        .iter()
                        .all(|&hop| hop >= n || active.contains(SensorId(hop)));
                    if !route_awake {
                        continue;
                    }
                    let radio_ok = match self.link_quality {
                        None => true,
                        Some(link) => {
                            let points: Vec<cool_geometry::Point> =
                                path.iter().map(|&v| self.vertex_position(v)).collect();
                            link.sample_path(&points, rng)
                        }
                    };
                    if radio_ok {
                        delivered += 1;
                    }
                }
            }

            // Energy: every active sensor pays an idle-listening slot plus
            // its forwarding load.
            let load = self.tree.forwarding_load(&reporters);
            let mut energy = 0.0;
            for &i in &reporters {
                let (rx, tx) = load[i];
                energy += self.radio.slot_energy_mj(rx, tx, rng).total_mj();
            }

            metrics.record_slot(
                utility.eval(&active),
                requested.len(),
                active.len(),
                delivered,
                energy,
            );
        }
        metrics
    }

    /// Resets all node batteries to full/ready (keeping leakage/tolerance
    /// settings).
    pub fn reset(&mut self) {
        self.rebuild_nodes();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_common::SeedSequence;
    use cool_core::baselines::static_schedule;
    use cool_core::greedy::greedy_schedule;
    use cool_core::policy::SchedulePolicy;
    use cool_core::problem::Problem;
    use cool_utility::DetectionUtility;

    fn small_sim(seed: u64) -> (TestbedSim, DetectionUtility) {
        let mut rng = SeedSequence::new(seed).nth_rng(0);
        let deployment =
            RooftopDeployment::new(cool_geometry::Rect::square(20.0), 16, 8.0, &mut rng);
        let utility = DetectionUtility::uniform(16, 0.4);
        (
            TestbedSim::new(deployment, ChargeCycle::paper_sunny()),
            utility,
        )
    }

    #[test]
    fn greedy_policy_achieves_planned_utility() {
        let (mut sim, utility) = small_sim(3);
        let problem = Problem::new(utility.clone(), ChargeCycle::paper_sunny(), 4).unwrap();
        let schedule = greedy_schedule(&problem);
        let planned = problem.average_utility_per_slot(&schedule);

        let mut rng = SeedSequence::new(3).nth_rng(1);
        let metrics = sim.run(SchedulePolicy::new(schedule), &utility, 16, &mut rng);
        assert_eq!(metrics.slots(), 16);
        assert!(
            (metrics.average_utility() - planned).abs() < 1e-9,
            "simulated {} vs planned {} — a feasible schedule executes exactly",
            metrics.average_utility(),
            planned
        );
        assert_eq!(metrics.activation_success_rate(), 1.0);
    }

    #[test]
    fn static_schedule_blacks_out_most_slots() {
        let (mut sim, utility) = small_sim(4);
        let problem = Problem::new(utility.clone(), ChargeCycle::paper_sunny(), 4).unwrap();
        let schedule = static_schedule(&problem);
        let mut rng = SeedSequence::new(4).nth_rng(1);
        let metrics = sim.run(SchedulePolicy::new(schedule), &utility, 16, &mut rng);
        // All sensors fire in slot 0 of each period; 3 of 4 slots are dark.
        let dark = metrics
            .per_slot_utility()
            .iter()
            .filter(|&&u| u == 0.0)
            .count();
        assert_eq!(dark, 12);
    }

    #[test]
    fn energy_is_spent_only_when_active() {
        let (mut sim, utility) = small_sim(5);
        let problem = Problem::new(utility.clone(), ChargeCycle::paper_sunny(), 1).unwrap();
        let schedule = greedy_schedule(&problem);
        let mut rng = SeedSequence::new(5).nth_rng(1);
        let metrics = sim.run(SchedulePolicy::new(schedule), &utility, 4, &mut rng);
        assert!(metrics.energy_spent_mj() > 0.0);
        // 16 sensors × 1 active slot each ≈ 16 idle-listen slots of energy.
        let idle = RadioModel::telosb().idle_listen_mj;
        assert!(metrics.energy_spent_mj() > 15.0 * idle);
        assert!(metrics.energy_spent_mj() < 18.0 * idle);
    }

    #[test]
    fn reset_restores_full_batteries() {
        let (mut sim, utility) = small_sim(6);
        let problem = Problem::new(utility.clone(), ChargeCycle::paper_sunny(), 1).unwrap();
        let schedule = greedy_schedule(&problem);
        let mut rng = SeedSequence::new(6).nth_rng(1);
        let first = sim.run(SchedulePolicy::new(schedule.clone()), &utility, 8, &mut rng);
        sim.reset();
        let mut rng = SeedSequence::new(6).nth_rng(1);
        let second = sim.run(SchedulePolicy::new(schedule), &utility, 8, &mut rng);
        assert_eq!(first.per_slot_utility(), second.per_slot_utility());
    }

    #[test]
    fn lossy_links_reduce_delivery_but_not_utility() {
        let (mut perfect, utility) = small_sim(9);
        let mut lossy = perfect
            .clone()
            .with_link_quality(crate::LinkQuality::new(6.0, 1.5));
        let problem = Problem::new(utility.clone(), ChargeCycle::paper_sunny(), 2).unwrap();
        let schedule = greedy_schedule(&problem);

        let mut rng = SeedSequence::new(9).nth_rng(1);
        let p_metrics = perfect.run(SchedulePolicy::new(schedule.clone()), &utility, 8, &mut rng);
        let mut rng = SeedSequence::new(9).nth_rng(1);
        let l_metrics = lossy.run(SchedulePolicy::new(schedule), &utility, 8, &mut rng);

        assert!(
            l_metrics.delivered_reports() < p_metrics.delivered_reports(),
            "lossy {} !< perfect {}",
            l_metrics.delivered_reports(),
            p_metrics.delivered_reports()
        );
        // Sensing utility is about who was awake, not what got through.
        assert_eq!(l_metrics.average_utility(), p_metrics.average_utility());
    }

    #[test]
    fn delivery_requires_active_sensor_route() {
        // With the paper layout, nodes near the sink edge forward for the
        // rest; under greedy scheduling some reports are delivered each
        // slot (relay chain is always on).
        let mut rng = SeedSequence::new(7).nth_rng(0);
        let deployment = RooftopDeployment::paper_layout(&mut rng);
        let n = deployment.n_nodes();
        let utility = DetectionUtility::uniform(n, 0.4);
        let problem = Problem::new(utility.clone(), ChargeCycle::paper_sunny(), 1).unwrap();
        let schedule = greedy_schedule(&problem);
        let mut sim = TestbedSim::new(deployment, ChargeCycle::paper_sunny());
        let metrics = sim.run(SchedulePolicy::new(schedule), &utility, 4, &mut rng);
        assert!(metrics.delivered_reports() > 0);
        assert!(metrics.delivered_reports() <= metrics.honoured_activations());
    }

    #[test]
    fn preflight_rejects_universe_mismatch() {
        let (sim, _) = small_sim(11);
        let wrong = DetectionUtility::uniform(9, 0.4); // deployment has 16
        let report = sim.preflight(&wrong, 16);
        assert!(!report.is_clean());
        assert!(
            report.has_code(cool_common::CoolCode::UniverseMismatch),
            "{report}"
        );
    }

    #[test]
    fn preflight_flags_non_submodular_utility() {
        // U(S) = |S|² has increasing returns — the greedy guarantee (and
        // the simulator's scoring assumptions) do not apply.
        struct Quadratic(usize);
        impl UtilityFunction for Quadratic {
            type Evaluator = cool_utility::LinearEvaluator;
            fn universe(&self) -> usize {
                self.0
            }
            fn eval(&self, set: &SensorSet) -> f64 {
                (set.len() * set.len()) as f64
            }
            fn evaluator(&self) -> Self::Evaluator {
                cool_utility::LinearUtility::new(vec![0.0; self.0]).evaluator()
            }
        }
        let (sim, _) = small_sim(12);
        let report = sim.preflight(&Quadratic(16), 16);
        assert!(
            report.has_code(cool_common::CoolCode::NonSubmodularUtility),
            "{report}"
        );
    }

    #[test]
    #[should_panic(expected = "testbed pre-flight failed")]
    fn run_panics_on_preflight_errors() {
        let (mut sim, _) = small_sim(13);
        let wrong = DetectionUtility::uniform(9, 0.4);
        let mut rng = SeedSequence::new(13).nth_rng(1);
        let plan = cool_core::schedule::PeriodSchedule::new(
            cool_core::schedule::ScheduleMode::ActiveSlot,
            4,
            vec![0; 9],
        );
        sim.run(SchedulePolicy::new(plan), &wrong, 4, &mut rng);
    }
}
