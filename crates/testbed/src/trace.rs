//! Multi-day, multi-node harvest traces — the Fig. 7 data.
//!
//! The paper's charging-pattern experiment logs light strength and charging
//! voltage for individual nodes (nodes 5 and 6 are shown) across July
//! 15–17. [`NodeTraceSet`] generates the same structure: per node, per day,
//! a full [`HarvestTrace`], with weather evolving by the Markov model and
//! per-node panel variation (hand-mounted cells differ slightly).

use cool_common::SeedSequence;
use cool_energy::{
    estimate_pattern, fit_pattern, ChargingPattern, HarvestConfig, HarvestTrace, SolarCell,
    Weather, WeatherGenerator,
};

/// All days of one node's trace.
#[derive(Clone, Debug)]
pub struct NodeTrace {
    /// Node index in the deployment.
    pub node: usize,
    /// One trace per day, in day order.
    pub days: Vec<HarvestTrace>,
}

/// Traces for a set of nodes over consecutive days.
#[derive(Clone, Debug)]
pub struct NodeTraceSet {
    traces: Vec<NodeTrace>,
    weather: Vec<Weather>,
}

impl NodeTraceSet {
    /// Generates `days` days of traces for `nodes` node indices, starting
    /// sunny, with per-node panel efficiency jitter of ±5%.
    ///
    /// # Panics
    ///
    /// Panics if `days == 0` or `nodes` is empty.
    pub fn generate(nodes: &[usize], days: usize, seeds: SeedSequence) -> Self {
        assert!(days > 0, "need at least one day");
        assert!(!nodes.is_empty(), "need at least one node");

        // One weather sequence shared by all nodes (they share a roof).
        let mut weather_gen = WeatherGenerator::new(Weather::Sunny);
        let mut weather_rng = seeds.nth_rng(0);
        let weather: Vec<Weather> = std::iter::once(Weather::Sunny)
            .chain((1..days).map(|_| weather_gen.next_day(&mut weather_rng)))
            .collect();

        let traces = nodes
            .iter()
            .enumerate()
            .map(|(k, &node)| {
                let node_seeds = seeds.child(1 + k as u64);
                // Per-node cell: ±5% max-current spread.
                let jitter = 1.0 + 0.1 * ((node % 7) as f64 / 6.0 - 0.5);
                let cell = SolarCell::new(25.0, 0.10, 40.0 * jitter, 2.5);
                let days = weather
                    .iter()
                    .enumerate()
                    .map(|(d, &w)| {
                        let config = HarvestConfig {
                            cell,
                            weather: w,
                            ..HarvestConfig::default()
                        };
                        HarvestTrace::generate(config, &mut node_seeds.nth_rng(d as u64))
                    })
                    .collect();
                NodeTrace { node, days }
            })
            .collect();
        NodeTraceSet { traces, weather }
    }

    /// The traces, in the order of the requested nodes.
    pub fn traces(&self) -> &[NodeTrace] {
        &self.traces
    }

    /// The shared daily weather sequence.
    pub fn weather(&self) -> &[Weather] {
        &self.weather
    }

    /// Fits a charging pattern per node per day (2-hour windows, 30 mAh
    /// battery, 15-minute measured discharge), as §VI-A does to pick the
    /// day's `(T_d, T_r)`.
    pub fn fitted_patterns(&self) -> Vec<Vec<Option<ChargingPattern>>> {
        self.traces
            .iter()
            .map(|t| {
                t.days
                    .iter()
                    .map(|day| fit_pattern(&estimate_pattern(day, 120.0, 30.0), 15.0))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> NodeTraceSet {
        NodeTraceSet::generate(&[5, 6], 3, SeedSequence::new(2009))
    }

    #[test]
    fn shape_matches_request() {
        let s = set();
        assert_eq!(s.traces().len(), 2);
        assert_eq!(s.traces()[0].node, 5);
        assert_eq!(s.traces()[0].days.len(), 3);
        assert_eq!(s.weather().len(), 3);
        assert_eq!(s.weather()[0], Weather::Sunny);
    }

    #[test]
    fn nodes_share_weather_but_differ_in_noise() {
        let s = set();
        let a = &s.traces()[0].days[0];
        let b = &s.traces()[1].days[0];
        assert_eq!(a.config().weather, b.config().weather);
        assert_ne!(
            a.samples()[700].light_wm2,
            b.samples()[700].light_wm2,
            "independent flicker per node"
        );
    }

    #[test]
    fn sunny_day_fits_paper_pattern() {
        let s = set();
        let patterns = s.fitted_patterns();
        // Day 0 is sunny by construction; both nodes should fit T_r ≈ 45
        // within the per-node panel spread.
        for node_patterns in &patterns {
            let p = node_patterns[0].expect("sunny day fits");
            assert!(
                (p.recharge_minutes - 45.0).abs() < 10.0,
                "T_r ≈ 45, got {}",
                p.recharge_minutes
            );
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let a = set();
        let b = set();
        assert_eq!(a.weather(), b.weather());
        assert_eq!(
            a.traces()[1].days[2].samples()[100],
            b.traces()[1].days[2].samples()[100]
        );
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn zero_days_panics() {
        let _ = NodeTraceSet::generate(&[1], 0, SeedSequence::new(1));
    }
}
