//! Determinism contract for the rooftop testbed (cool-check satellite,
//! DESIGN.md §9): a simulation run is a pure function of its seed. The
//! same seed must reproduce the whole trace bit-for-bit — slot utilities,
//! activation counts, deliveries, and sampled radio energy — while a
//! different seed must actually change it (the randomness is real).

#![allow(clippy::unwrap_used)]

use cool_common::{SeedSequence, StableHasher};
use cool_core::greedy::greedy_schedule;
use cool_core::policy::SchedulePolicy;
use cool_core::problem::Problem;
use cool_energy::ChargeCycle;
use cool_geometry::Rect;
use cool_testbed::{LinkQuality, RooftopDeployment, SimMetrics, TestbedSim};
use cool_utility::DetectionUtility;

const SLOTS: usize = 32;

/// Runs one full simulation derived entirely from `seed` and returns its
/// metrics. Lossy links make packet delivery (not just radio energy)
/// depend on the RNG stream.
fn simulate(seed: u64) -> SimMetrics {
    let seeds = SeedSequence::new(seed);
    let mut rng = seeds.nth_rng(0);
    let deployment = RooftopDeployment::new(Rect::square(20.0), 16, 8.0, &mut rng);
    let comm_range = deployment.comm_range();
    let mut sim = TestbedSim::new(deployment, ChargeCycle::paper_sunny())
        .with_link_quality(LinkQuality::for_comm_range(comm_range));

    let utility = DetectionUtility::uniform(16, 0.4);
    let problem = Problem::new(utility.clone(), ChargeCycle::paper_sunny(), 4).unwrap();
    let schedule = greedy_schedule(&problem);

    let mut rng = seeds.nth_rng(1);
    sim.run(SchedulePolicy::new(schedule), &utility, SLOTS, &mut rng)
}

/// Stable 64-bit digest of everything a run produced.
fn trace_hash(metrics: &SimMetrics) -> u64 {
    let mut h = StableHasher::new();
    for &u in metrics.per_slot_utility() {
        h.write_u64(u.to_bits());
        h.write_sep();
    }
    h.write_u64(metrics.requested_activations());
    h.write_u64(metrics.honoured_activations());
    h.write_u64(metrics.delivered_reports());
    h.write_u64(metrics.energy_spent_mj().to_bits());
    h.finish()
}

#[test]
fn same_seed_reproduces_the_trace_hash() {
    let first = simulate(42);
    let second = simulate(42);
    assert_eq!(
        trace_hash(&first),
        trace_hash(&second),
        "same seed must reproduce the trace bit-for-bit"
    );
    // The digest covers the parts, so spot-check they really match too.
    assert_eq!(first.per_slot_utility(), second.per_slot_utility());
    assert_eq!(first.delivered_reports(), second.delivered_reports());
}

#[test]
fn different_seeds_change_the_trace_hash() {
    let base = trace_hash(&simulate(42));
    // One collision would be astronomically unlucky; requiring every seed
    // to differ also catches a stream that ignores the seed entirely.
    for seed in [43, 44, 1_000_003] {
        assert_ne!(
            base,
            trace_hash(&simulate(seed)),
            "seed {seed} produced the same trace as seed 42"
        );
    }
}

#[test]
fn trace_hash_is_sensitive_to_the_rng_stream_not_just_layout() {
    // Same deployment (stream 0), different simulation stream: with lossy
    // links the run-time randomness alone must alter the trace.
    let seeds = SeedSequence::new(7);
    let mut rng = seeds.nth_rng(0);
    let deployment = RooftopDeployment::new(Rect::square(20.0), 16, 8.0, &mut rng);
    let comm_range = deployment.comm_range();
    let utility = DetectionUtility::uniform(16, 0.4);
    let problem = Problem::new(utility.clone(), ChargeCycle::paper_sunny(), 4).unwrap();
    let schedule = greedy_schedule(&problem);

    let run = |stream: u64| {
        let mut sim = TestbedSim::new(deployment.clone(), ChargeCycle::paper_sunny())
            .with_link_quality(LinkQuality::for_comm_range(comm_range));
        let mut rng = seeds.nth_rng(stream);
        let metrics = sim.run(
            SchedulePolicy::new(schedule.clone()),
            &utility,
            SLOTS,
            &mut rng,
        );
        trace_hash(&metrics)
    };
    assert_ne!(run(1), run(2), "rng stream must influence the trace");
}
