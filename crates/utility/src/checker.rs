//! Numerical verification of the submodular-utility axioms.
//!
//! The ½-approximation of the greedy scheduler is only guaranteed for
//! normalised, monotone, submodular utilities (§II-C). [`check_utility`]
//! stress-tests a function against all three axioms on random set pairs —
//! used by the crate's own property tests and available to users shipping
//! custom utilities.

use crate::traits::UtilityFunction;
use cool_common::{SensorId, SensorSet};
use rand::Rng;

/// A detected violation of the utility axioms.
#[derive(Clone, Debug, PartialEq)]
pub enum UtilityViolation {
    /// `U(∅) ≠ 0`.
    NotNormalized {
        /// The observed `U(∅)`.
        value: f64,
    },
    /// `U(S₁) > U(S₂)` for some `S₁ ⊆ S₂`.
    NotMonotone {
        /// The smaller set.
        subset: SensorSet,
        /// The larger set.
        superset: SensorSet,
        /// `U(S₁) − U(S₂) > 0`.
        excess: f64,
    },
    /// Marginal gain increased from `S₁` to `S₂ ⊇ S₁` for some `v`.
    NotSubmodular {
        /// The smaller set.
        subset: SensorSet,
        /// The larger set.
        superset: SensorSet,
        /// The element whose gain increased.
        element: SensorId,
        /// `gain(S₂, v) − gain(S₁, v) > 0`.
        excess: f64,
    },
}

impl std::fmt::Display for UtilityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UtilityViolation::NotNormalized { value } => {
                write!(f, "U(empty set) = {value}, expected 0")
            }
            UtilityViolation::NotMonotone { excess, .. } => {
                write!(f, "monotonicity violated by {excess}")
            }
            UtilityViolation::NotSubmodular {
                element, excess, ..
            } => {
                write!(f, "submodularity violated at {element} by {excess}")
            }
        }
    }
}

/// Stress-tests `utility` against normalisation, monotonicity and
/// submodularity on `trials` random `(S₁ ⊆ S₂, v ∉ S₂)` triples.
///
/// Tolerance `1e-9 · max(1, |U|)` absorbs floating-point roundoff.
///
/// # Errors
///
/// Returns the first [`UtilityViolation`] found.
///
/// # Examples
///
/// ```
/// use cool_utility::{check_utility, DetectionUtility};
/// use cool_common::SeedSequence;
///
/// let u = DetectionUtility::uniform(6, 0.4);
/// check_utility(&u, 200, &mut SeedSequence::new(1).nth_rng(0)).unwrap();
/// ```
pub fn check_utility<U: UtilityFunction, R: Rng + ?Sized>(
    utility: &U,
    trials: usize,
    rng: &mut R,
) -> Result<(), UtilityViolation> {
    let n = utility.universe();
    let empty = SensorSet::new(n);
    let at_empty = utility.eval(&empty);
    if at_empty.abs() > 1e-9 {
        return Err(UtilityViolation::NotNormalized { value: at_empty });
    }
    if n == 0 {
        return Ok(());
    }

    for _ in 0..trials {
        // Random subset S1, then S2 ⊇ S1 by adding more elements.
        let mut s1 = SensorSet::new(n);
        let mut s2 = SensorSet::new(n);
        for i in 0..n {
            let r: f64 = rng.random_range(0.0..1.0);
            if r < 0.3 {
                s1.insert(SensorId(i));
                s2.insert(SensorId(i));
            } else if r < 0.6 {
                s2.insert(SensorId(i));
            }
        }
        let u1 = utility.eval(&s1);
        let u2 = utility.eval(&s2);
        let tol = 1e-9 * u2.abs().max(1.0);
        if u1 > u2 + tol {
            return Err(UtilityViolation::NotMonotone {
                subset: s1,
                superset: s2,
                excess: u1 - u2,
            });
        }

        // Pick v outside S2 when one exists.
        let outside: Vec<usize> = (0..n).filter(|&i| !s2.contains(SensorId(i))).collect();
        if outside.is_empty() {
            continue;
        }
        let v = SensorId(outside[rng.random_range(0..outside.len())]);
        let gain1 = utility.marginal_gain(&s1, v);
        let gain2 = utility.marginal_gain(&s2, v);
        if gain2 > gain1 + tol {
            return Err(UtilityViolation::NotSubmodular {
                subset: s1,
                superset: s2,
                element: v,
                excess: gain2 - gain1,
            });
        }
        if gain1 < -tol {
            return Err(UtilityViolation::NotMonotone {
                subset: s1.clone(),
                superset: {
                    let mut w = s1.clone();
                    w.insert(v);
                    w
                },
                excess: -gain1,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        CoverageUtility, DetectionUtility, FacilityLocationUtility, LinearUtility, LogSumUtility,
        SumUtility,
    };
    use cool_common::SeedSequence;
    use proptest::prelude::*;

    fn rng() -> rand::rngs::StdRng {
        SeedSequence::new(101).nth_rng(0)
    }

    #[test]
    fn all_builtin_utilities_pass() {
        check_utility(&DetectionUtility::uniform(8, 0.4), 300, &mut rng()).unwrap();
        check_utility(
            &LogSumUtility::new(vec![1.0, 5.0, 2.0, 0.0, 3.0]),
            300,
            &mut rng(),
        )
        .unwrap();
        check_utility(&LinearUtility::new(vec![0.5, 1.5, 2.5]), 300, &mut rng()).unwrap();
        check_utility(
            &FacilityLocationUtility::new(vec![vec![1.0, 2.0, 0.5], vec![0.1, 0.0, 3.0]]),
            300,
            &mut rng(),
        )
        .unwrap();
        check_utility(
            &CoverageUtility::from_parts(
                4,
                vec![
                    SensorSet::from_indices(4, [0, 1]),
                    SensorSet::from_indices(4, [2]),
                    SensorSet::from_indices(4, [1, 2, 3]),
                ],
                vec![2.0, 1.0, 4.0],
            ),
            300,
            &mut rng(),
        )
        .unwrap();
        check_utility(
            &SumUtility::multi_target_detection(
                &[
                    SensorSet::from_indices(5, [0, 1, 2]),
                    SensorSet::from_indices(5, [3, 4]),
                ],
                0.3,
            ),
            300,
            &mut rng(),
        )
        .unwrap();
    }

    #[test]
    fn catches_non_normalized_function() {
        // A linear function shifted away from zero, expressed by abusing the
        // checker with a wrapper.
        struct Shifted(LinearUtility);
        impl UtilityFunction for Shifted {
            type Evaluator = crate::LinearEvaluator;
            fn universe(&self) -> usize {
                self.0.universe()
            }
            fn eval(&self, set: &SensorSet) -> f64 {
                self.0.eval(set) + 1.0
            }
            fn evaluator(&self) -> Self::Evaluator {
                self.0.evaluator()
            }
        }
        let err =
            check_utility(&Shifted(LinearUtility::new(vec![1.0])), 10, &mut rng()).unwrap_err();
        assert!(matches!(err, UtilityViolation::NotNormalized { .. }));
        assert!(err.to_string().contains("expected 0"));
    }

    #[test]
    fn catches_supermodular_function() {
        // U(S) = |S|² is supermodular (increasing returns).
        struct Quadratic(usize);
        impl UtilityFunction for Quadratic {
            type Evaluator = crate::LinearEvaluator;
            fn universe(&self) -> usize {
                self.0
            }
            fn eval(&self, set: &SensorSet) -> f64 {
                (set.len() * set.len()) as f64
            }
            fn evaluator(&self) -> Self::Evaluator {
                LinearUtility::new(vec![0.0; self.0]).evaluator()
            }
        }
        let err = check_utility(&Quadratic(8), 500, &mut rng()).unwrap_err();
        assert!(matches!(err, UtilityViolation::NotSubmodular { .. }));
    }

    #[test]
    fn catches_non_monotone_function() {
        // U(S) = |S mod 2| oscillates.
        struct Parity(usize);
        impl UtilityFunction for Parity {
            type Evaluator = crate::LinearEvaluator;
            fn universe(&self) -> usize {
                self.0
            }
            fn eval(&self, set: &SensorSet) -> f64 {
                (set.len() % 2) as f64
            }
            fn evaluator(&self) -> Self::Evaluator {
                LinearUtility::new(vec![0.0; self.0]).evaluator()
            }
        }
        let err = check_utility(&Parity(8), 500, &mut rng()).unwrap_err();
        assert!(
            matches!(
                err,
                UtilityViolation::NotMonotone { .. } | UtilityViolation::NotSubmodular { .. }
            ),
            "parity violates monotonicity or submodularity, got {err:?}"
        );
    }

    #[test]
    fn empty_universe_passes() {
        check_utility(&LinearUtility::new(vec![]), 10, &mut rng()).unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Random detection/coverage instances always pass the checker.
        #[test]
        fn random_instances_pass(
            probs in proptest::collection::vec(0.0f64..=1.0, 1..8),
            seed in any::<u64>(),
        ) {
            let u = DetectionUtility::new(probs);
            let mut r = SeedSequence::new(seed).nth_rng(0);
            prop_assert!(check_utility(&u, 100, &mut r).is_ok());
        }
    }
}
