//! Composite utilities: runtime-polymorphic [`AnyUtility`] and the
//! multi-target sum `Σ_i U_i(S)` ([`SumUtility`]).
//!
//! §II-C/§II-D: the overall utility of a multi-target WSN at a slot is the
//! (symmetric) sum of per-target utilities, each evaluated on the activated
//! sensors that can monitor that target. Sums of monotone submodular
//! functions are monotone submodular, so the greedy guarantee carries over.
//!
//! # Sparse evaluation
//!
//! Marginal-gain queries against the sum only need the parts whose
//! [support](UtilityFunction::support) contains the queried sensor: every
//! other part contributes **exactly** `0.0`. [`SumUtility`] therefore builds
//! a CSR inverted index `sensor → incident part ids` ([`IncidenceIndex`]) at
//! construction, and its evaluator ([`SparseSumEvaluator`]) answers
//! `gain`/`loss`/`insert`/`remove` in O(deg(v)) work instead of O(m).
//! Incident parts are visited in increasing part-id order — the same
//! relative order as the dense walk — so sparse gains and losses are
//! *bitwise equal* to the dense ones and every scheduler produces identical
//! assignments.
//!
//! Since PR 10 the sparse evaluator runs on the struct-of-arrays engine in
//! [`soa`](crate::soa): parts are grouped by family at construction and
//! queries execute six family-batched kernels over contiguous scalar state
//! instead of enum-dispatching into per-part evaluators. Two oracles are
//! retained and checked bitwise against it: the per-part enum walk over the
//! same incidence index ([`PartWalkSumEvaluator`],
//! [`SumUtility::part_walk_evaluator`]) and the dense all-parts walk
//! ([`SumEvaluator`], [`SumUtility::dense_evaluator`], COOL-E024 in
//! `cool check`).

use crate::coverage::{CoverageEvaluator, CoverageUtility};
use crate::detection::{DetectionEvaluator, DetectionUtility};
use crate::facility::{FacilityEvaluator, FacilityLocationUtility};
use crate::kcover::{KCoverageEvaluator, KCoverageUtility};
use crate::linear::{LinearEvaluator, LinearUtility};
use crate::logsum::{LogSumEvaluator, LogSumUtility};
use crate::soa::{SoaLayout, SparseSumEvaluator};
use crate::stats;
use crate::traits::{Evaluator, UtilityFunction};
use cool_common::{SensorId, SensorSet};
use std::sync::Arc;

/// Any of the crate's built-in utilities, for heterogeneous composition.
///
/// # Examples
///
/// ```
/// use cool_utility::{AnyUtility, DetectionUtility, LinearUtility, UtilityFunction};
/// use cool_common::SensorSet;
///
/// let parts: Vec<AnyUtility> = vec![
///     DetectionUtility::uniform(3, 0.4).into(),
///     LinearUtility::new(vec![0.0, 1.0, 0.0]).into(),
/// ];
/// assert!(parts.iter().all(|u| u.universe() == 3));
/// ```
#[derive(Clone, Debug)]
pub enum AnyUtility {
    /// Detection probability `1 − Π(1−p)` (§II-C).
    Detection(DetectionUtility),
    /// Log-sum `ln(1 + Σw)` (§III gadget).
    LogSum(LogSumUtility),
    /// Modular `Σw`.
    Linear(LinearUtility),
    /// Weighted-area coverage (Eq. 2).
    Coverage(CoverageUtility),
    /// Facility location `Σ max`.
    Facility(FacilityLocationUtility),
    /// k-coverage `Σ w·min(count, k)/k`.
    KCover(KCoverageUtility),
}

macro_rules! dispatch {
    ($self:expr, $u:ident => $body:expr) => {
        match $self {
            AnyUtility::Detection($u) => $body,
            AnyUtility::LogSum($u) => $body,
            AnyUtility::Linear($u) => $body,
            AnyUtility::Coverage($u) => $body,
            AnyUtility::Facility($u) => $body,
            AnyUtility::KCover($u) => $body,
        }
    };
}

impl UtilityFunction for AnyUtility {
    type Evaluator = AnyEvaluator;

    fn universe(&self) -> usize {
        dispatch!(self, u => u.universe())
    }

    fn eval(&self, set: &SensorSet) -> f64 {
        dispatch!(self, u => u.eval(set))
    }

    fn max_value(&self) -> f64 {
        dispatch!(self, u => u.max_value())
    }

    fn evaluator(&self) -> AnyEvaluator {
        match self {
            AnyUtility::Detection(u) => AnyEvaluator::Detection(u.evaluator()),
            AnyUtility::LogSum(u) => AnyEvaluator::LogSum(u.evaluator()),
            AnyUtility::Linear(u) => AnyEvaluator::Linear(u.evaluator()),
            AnyUtility::Coverage(u) => AnyEvaluator::Coverage(u.evaluator()),
            AnyUtility::Facility(u) => AnyEvaluator::Facility(u.evaluator()),
            AnyUtility::KCover(u) => AnyEvaluator::KCover(u.evaluator()),
        }
    }

    fn support(&self) -> SensorSet {
        dispatch!(self, u => u.support())
    }
}

impl From<DetectionUtility> for AnyUtility {
    fn from(value: DetectionUtility) -> Self {
        AnyUtility::Detection(value)
    }
}

impl From<LogSumUtility> for AnyUtility {
    fn from(value: LogSumUtility) -> Self {
        AnyUtility::LogSum(value)
    }
}

impl From<LinearUtility> for AnyUtility {
    fn from(value: LinearUtility) -> Self {
        AnyUtility::Linear(value)
    }
}

impl From<CoverageUtility> for AnyUtility {
    fn from(value: CoverageUtility) -> Self {
        AnyUtility::Coverage(value)
    }
}

impl From<FacilityLocationUtility> for AnyUtility {
    fn from(value: FacilityLocationUtility) -> Self {
        AnyUtility::Facility(value)
    }
}

impl From<KCoverageUtility> for AnyUtility {
    fn from(value: KCoverageUtility) -> Self {
        AnyUtility::KCover(value)
    }
}

/// Evaluator companion of [`AnyUtility`].
#[derive(Clone, Debug)]
pub enum AnyEvaluator {
    /// Detection evaluator.
    Detection(DetectionEvaluator),
    /// Log-sum evaluator.
    LogSum(LogSumEvaluator),
    /// Linear evaluator.
    Linear(LinearEvaluator),
    /// Coverage evaluator.
    Coverage(CoverageEvaluator),
    /// Facility evaluator.
    Facility(FacilityEvaluator),
    /// k-coverage evaluator.
    KCover(KCoverageEvaluator),
}

macro_rules! dispatch_eval {
    ($self:expr, $e:ident => $body:expr) => {
        match $self {
            AnyEvaluator::Detection($e) => $body,
            AnyEvaluator::LogSum($e) => $body,
            AnyEvaluator::Linear($e) => $body,
            AnyEvaluator::Coverage($e) => $body,
            AnyEvaluator::Facility($e) => $body,
            AnyEvaluator::KCover($e) => $body,
        }
    };
}

impl Evaluator for AnyEvaluator {
    fn value(&self) -> f64 {
        dispatch_eval!(self, e => e.value())
    }

    fn gain(&self, v: SensorId) -> f64 {
        dispatch_eval!(self, e => e.gain(v))
    }

    fn loss(&self, v: SensorId) -> f64 {
        dispatch_eval!(self, e => e.loss(v))
    }

    fn insert(&mut self, v: SensorId) -> f64 {
        dispatch_eval!(self, e => e.insert(v))
    }

    fn remove(&mut self, v: SensorId) -> f64 {
        dispatch_eval!(self, e => e.remove(v))
    }

    fn contains(&self, v: SensorId) -> bool {
        dispatch_eval!(self, e => e.contains(v))
    }

    fn current_set(&self) -> SensorSet {
        dispatch_eval!(self, e => e.current_set())
    }
}

/// The multi-target overall utility `U(S) = Σ_i U_i(S)` (Eq. 1).
///
/// Per-target coverage restriction `S ∩ V(O_i)` is encoded inside each part
/// (e.g. zero detection probability outside `V(O_i)` — see
/// [`DetectionUtility::uniform_on`]).
///
/// # Examples
///
/// ```
/// use cool_common::SensorSet;
/// use cool_utility::{DetectionUtility, SumUtility, UtilityFunction};
///
/// // Two targets: V(O₀) = {0,1}, V(O₁) = {1,2}, p = 0.4 everywhere.
/// let u = SumUtility::new(vec![
///     DetectionUtility::uniform_on(&SensorSet::from_indices(3, [0, 1]), 0.4).into(),
///     DetectionUtility::uniform_on(&SensorSet::from_indices(3, [1, 2]), 0.4).into(),
/// ]);
/// let only_shared = SensorSet::from_indices(3, [1]);
/// assert!((u.eval(&only_shared) - 0.8).abs() < 1e-12); // 0.4 per target
/// ```
#[derive(Clone, Debug)]
pub struct SumUtility {
    parts: Vec<AnyUtility>,
    universe: usize,
    /// CSR inverted index `sensor → incident part ids`, shared with every
    /// evaluator.
    index: Arc<IncidenceIndex>,
    /// Struct-of-arrays layout of the parts (family grouping, per-sensor
    /// family runs, flat scalar state), shared with every evaluator.
    soa: Arc<SoaLayout>,
}

impl SumUtility {
    /// Creates the sum from its parts.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the parts disagree on universe size.
    pub fn new(parts: Vec<AnyUtility>) -> Self {
        assert!(!parts.is_empty(), "sum utility needs at least one part");
        let universe = parts[0].universe();
        assert!(
            parts.iter().all(|p| p.universe() == universe),
            "all parts must share one universe"
        );
        let index = Arc::new(IncidenceIndex::build(universe, &parts));
        let soa = Arc::new(SoaLayout::build(universe, &parts, &index));
        SumUtility {
            parts,
            universe,
            index,
            soa,
        }
    }

    /// The paper's multi-target detection instance: target `i` is watched by
    /// `coverages[i]`, every covering sensor detects with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `coverages` is empty, universes disagree, or `p ∉ [0, 1]`.
    pub fn multi_target_detection(coverages: &[SensorSet], p: f64) -> Self {
        assert!(!coverages.is_empty(), "need at least one target");
        SumUtility::new(
            coverages
                .iter()
                .map(|cov| DetectionUtility::uniform_on(cov, p).into())
                .collect(),
        )
    }

    /// The parts `U_i`.
    pub fn parts(&self) -> &[AnyUtility] {
        &self.parts
    }

    /// Number of targets (parts).
    pub fn n_targets(&self) -> usize {
        self.parts.len()
    }

    /// The CSR incidence index `sensor → incident part ids`.
    pub fn incidence(&self) -> &IncidenceIndex {
        &self.index
    }

    /// Per-part values at `set` — the per-target utility breakdown.
    ///
    /// Goes through the sparse evaluator: each member insertion touches
    /// only its incident parts, so the breakdown costs
    /// O(m + Σ_{v∈S} deg(v)) instead of O(m·eval).
    pub fn eval_parts(&self, set: &SensorSet) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.parts.len());
        self.eval_parts_into(set, &mut out);
        out
    }

    /// [`eval_parts`](SumUtility::eval_parts) into a caller-provided buffer
    /// (cleared first) — the allocation-free form for batch paths that
    /// request the breakdown repeatedly.
    pub fn eval_parts_into(&self, set: &SensorSet, out: &mut Vec<f64>) {
        assert_eq!(set.universe(), self.universe, "set universe mismatch");
        let mut e = self.evaluator();
        for v in set {
            e.insert(v);
        }
        e.part_values_into(out);
    }

    /// A dense (all-parts-per-query) evaluator — the differential oracle
    /// the sparse representation is checked against (COOL-E024).
    pub fn dense_evaluator(&self) -> SumEvaluator {
        SumEvaluator {
            parts: self.parts.iter().map(UtilityFunction::evaluator).collect(),
            members: SensorSet::new(self.universe),
        }
    }

    /// The pre-SoA sparse evaluator: a per-part enum-dispatch walk over the
    /// same incidence index. Retained as the second differential oracle and
    /// the baseline arm of the `perf_sparse` benchmark; schedulers should
    /// use [`evaluator`](UtilityFunction::evaluator).
    pub fn part_walk_evaluator(&self) -> PartWalkSumEvaluator {
        PartWalkSumEvaluator {
            parts: self.parts.iter().map(UtilityFunction::evaluator).collect(),
            index: Arc::clone(&self.index),
            members: SensorSet::new(self.universe),
            value: 0.0,
            comp: 0.0,
            mutations: 0,
            cadence: SparseSumEvaluator::REBUILD_CADENCE,
        }
    }

    /// The shared struct-of-arrays layout (crate-internal seam to the
    /// kernel engine in [`soa`](crate::soa)).
    #[cfg(test)]
    pub(crate) fn soa_layout(&self) -> &SoaLayout {
        &self.soa
    }
}

impl UtilityFunction for SumUtility {
    type Evaluator = SparseSumEvaluator;

    fn universe(&self) -> usize {
        self.universe
    }

    fn eval(&self, set: &SensorSet) -> f64 {
        assert_eq!(set.universe(), self.universe, "set universe mismatch");
        let mut e = self.evaluator();
        for v in set {
            e.insert(v);
        }
        e.value()
    }

    fn max_value(&self) -> f64 {
        self.parts.iter().map(UtilityFunction::max_value).sum()
    }

    fn target_count(&self) -> usize {
        self.parts.len()
    }

    fn evaluator(&self) -> SparseSumEvaluator {
        SparseSumEvaluator::new(
            Arc::clone(&self.soa),
            Arc::clone(&self.index),
            self.universe,
        )
    }

    fn support(&self) -> SensorSet {
        SensorSet::from_indices(
            self.universe,
            (0..self.universe).filter(|&v| self.index.degree(SensorId(v)) > 0),
        )
    }
}

/// CSR inverted index `sensor → incident part ids` over the parts of a
/// [`SumUtility`].
///
/// Built once at construction from the parts'
/// [support sets](UtilityFunction::support). For each sensor `v`,
/// [`incident`](IncidenceIndex::incident) returns the ids of the parts whose
/// support contains `v`, **in increasing part-id order** — the invariant
/// that makes sparse marginal gains bitwise equal to dense ones (the dense
/// walk visits parts in the same order, and skipped parts contribute an
/// exact `0.0`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IncidenceIndex {
    /// `offsets[v]..offsets[v+1]` brackets `v`'s slice of `part_ids`;
    /// length `universe + 1`.
    offsets: Vec<u32>,
    /// Concatenated incident part-id lists.
    part_ids: Vec<u32>,
}

impl IncidenceIndex {
    /// Builds the index from each part's support set.
    ///
    /// # Panics
    ///
    /// Panics if the number of parts or index entries exceeds `u32::MAX`.
    pub fn build(universe: usize, parts: &[AnyUtility]) -> Self {
        assert!(u32::try_from(parts.len()).is_ok(), "part count fits in u32");
        let supports: Vec<SensorSet> = parts.iter().map(UtilityFunction::support).collect();
        let mut offsets = vec![0u32; universe + 1];
        for sup in &supports {
            for v in sup {
                offsets[v.index() + 1] += 1;
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor: Vec<u32> = offsets[..universe].to_vec();
        let mut part_ids = vec![0u32; offsets[universe] as usize];
        // Parts are scanned in increasing id order, so each sensor's slice
        // comes out sorted — the order invariant documented above.
        for (i, sup) in supports.iter().enumerate() {
            let id = i as u32;
            for v in sup {
                let c = &mut cursor[v.index()];
                part_ids[*c as usize] = id;
                *c += 1;
            }
        }
        IncidenceIndex { offsets, part_ids }
    }

    /// Number of sensors the index covers.
    pub fn universe(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The part ids incident to `v`, in increasing order.
    pub fn incident(&self, v: SensorId) -> &[u32] {
        &self.part_ids[self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize]
    }

    /// `deg(v)`: number of parts whose support contains `v`.
    pub fn degree(&self, v: SensorId) -> usize {
        self.incident(v).len()
    }

    /// Total number of (sensor, part) incidences.
    pub fn n_entries(&self) -> usize {
        self.part_ids.len()
    }
}

/// The pre-SoA sparse evaluator: O(deg(v)) per-part enum-dispatch walks
/// over the incidence index, with the same Kahan-compensated running value
/// as [`SparseSumEvaluator`].
///
/// Superseded as [`SumUtility`]'s evaluator by the family-batched kernels
/// in [`soa`](crate::soa), but retained — and checked bitwise against them
/// — as the structurally-closest oracle (identical part visit order,
/// independent state representation) and as the baseline arm of the
/// `perf_sparse`/PR 10 benchmarks.
#[derive(Clone, Debug)]
pub struct PartWalkSumEvaluator {
    parts: Vec<AnyEvaluator>,
    index: Arc<IncidenceIndex>,
    members: SensorSet,
    /// Kahan-compensated running sum of realised deltas.
    value: f64,
    /// Kahan compensation term.
    comp: f64,
    /// Mutations since the last full rebuild.
    mutations: u32,
    /// Mutations between rebuilds for *this* evaluator; defaults to
    /// [`REBUILD_CADENCE`](SparseSumEvaluator::REBUILD_CADENCE).
    cadence: u32,
}

impl PartWalkSumEvaluator {
    /// The current rebuild cadence.
    #[must_use]
    pub fn rebuild_cadence(&self) -> u32 {
        self.cadence
    }

    /// Sets the rebuild cadence (clamped to at least 1). Gain/loss queries
    /// and insert/remove deltas are computed from the part evaluators, so
    /// they are bitwise independent of the cadence; only the drift bound of
    /// the O(1) running [`value`](Evaluator::value) changes. Takes effect
    /// from the next mutation.
    pub fn set_rebuild_cadence(&mut self, cadence: u32) {
        self.cadence = cadence.max(1);
    }

    /// Builder form of [`set_rebuild_cadence`](PartWalkSumEvaluator::set_rebuild_cadence).
    #[must_use]
    pub fn with_rebuild_cadence(mut self, cadence: u32) -> Self {
        self.set_rebuild_cadence(cadence);
        self
    }

    /// Per-part values of the current set — the per-target breakdown.
    pub fn part_values(&self) -> Vec<f64> {
        self.parts.iter().map(Evaluator::value).collect()
    }

    /// Writes the per-part breakdown into `out` (cleared first), reusing
    /// its capacity.
    pub fn part_values_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.parts.iter().map(Evaluator::value));
    }

    fn kahan_add(&mut self, x: f64) {
        let t = self.value + x;
        if self.value.abs() >= x.abs() {
            self.comp += (self.value - t) + x;
        } else {
            self.comp += (x - t) + self.value;
        }
        self.value = t;
    }

    fn after_mutation(&mut self) {
        self.mutations += 1;
        if self.mutations >= self.cadence {
            self.rebuild();
        }
    }

    /// Recomputes the running value from the part evaluators (same part
    /// order as the dense walk), discarding accumulated drift.
    fn rebuild(&mut self) {
        self.value = self.parts.iter().map(Evaluator::value).sum();
        self.comp = 0.0;
        self.mutations = 0;
    }
}

impl Evaluator for PartWalkSumEvaluator {
    fn value(&self) -> f64 {
        self.value + self.comp
    }

    fn gain(&self, v: SensorId) -> f64 {
        if self.members.contains(v) {
            return 0.0;
        }
        let incident = self.index.incident(v);
        stats::record_query(incident.len());
        // Seeded with +0.0 rather than `.sum()`: f64's `Sum` identity is
        // -0.0, which would leak a negative zero out of empty (or all-zero)
        // incident slices and break bitwise agreement with the dense walk.
        incident
            .iter()
            .fold(0.0, |acc, &pid| acc + self.parts[pid as usize].gain(v))
    }

    fn loss(&self, v: SensorId) -> f64 {
        if !self.members.contains(v) {
            return 0.0;
        }
        let incident = self.index.incident(v);
        stats::record_query(incident.len());
        incident
            .iter()
            .fold(0.0, |acc, &pid| acc + self.parts[pid as usize].loss(v))
    }

    fn insert(&mut self, v: SensorId) -> f64 {
        if !self.members.insert(v) {
            return 0.0;
        }
        let mut delta = 0.0;
        for &pid in self.index.incident(v) {
            delta += self.parts[pid as usize].insert(v);
        }
        self.kahan_add(delta);
        self.after_mutation();
        delta
    }

    fn remove(&mut self, v: SensorId) -> f64 {
        if !self.members.remove(v) {
            return 0.0;
        }
        let mut delta = 0.0;
        for &pid in self.index.incident(v) {
            delta += self.parts[pid as usize].remove(v);
        }
        self.kahan_add(-delta);
        self.after_mutation();
        delta
    }

    fn contains(&self, v: SensorId) -> bool {
        self.members.contains(v)
    }

    fn current_set(&self) -> SensorSet {
        self.members.clone()
    }
}

/// Dense-evaluation wrapper around a [`SumUtility`] — every query walks all
/// parts. The baseline arm of the `perf_sparse` benchmark and the oracle
/// side of the COOL-E024 differential relation; schedulers should use
/// [`SumUtility`] directly.
#[derive(Clone, Debug)]
pub struct DenseSumUtility {
    inner: SumUtility,
}

impl DenseSumUtility {
    /// Wraps the sum.
    pub fn new(inner: SumUtility) -> Self {
        DenseSumUtility { inner }
    }

    /// The wrapped sum.
    pub fn inner(&self) -> &SumUtility {
        &self.inner
    }
}

impl UtilityFunction for DenseSumUtility {
    type Evaluator = SumEvaluator;

    fn universe(&self) -> usize {
        self.inner.universe
    }

    fn eval(&self, set: &SensorSet) -> f64 {
        assert_eq!(set.universe(), self.inner.universe, "set universe mismatch");
        self.inner.parts.iter().map(|p| p.eval(set)).sum()
    }

    fn max_value(&self) -> f64 {
        self.inner.max_value()
    }

    fn target_count(&self) -> usize {
        self.inner.parts.len()
    }

    fn evaluator(&self) -> SumEvaluator {
        self.inner.dense_evaluator()
    }

    fn support(&self) -> SensorSet {
        self.inner.support()
    }
}

/// Part-walk wrapper around a [`SumUtility`] — every query goes through
/// the retained per-part enum-dispatch evaluator
/// ([`PartWalkSumEvaluator`]). The "current sparse" baseline arm of the
/// PR 10 benchmark; schedulers should use [`SumUtility`] directly.
#[derive(Clone, Debug)]
pub struct PartWalkSumUtility {
    inner: SumUtility,
}

impl PartWalkSumUtility {
    /// Wraps the sum.
    pub fn new(inner: SumUtility) -> Self {
        PartWalkSumUtility { inner }
    }

    /// The wrapped sum.
    pub fn inner(&self) -> &SumUtility {
        &self.inner
    }
}

impl UtilityFunction for PartWalkSumUtility {
    type Evaluator = PartWalkSumEvaluator;

    fn universe(&self) -> usize {
        self.inner.universe
    }

    fn eval(&self, set: &SensorSet) -> f64 {
        assert_eq!(set.universe(), self.inner.universe, "set universe mismatch");
        let mut e = self.evaluator();
        for v in set {
            e.insert(v);
        }
        e.value()
    }

    fn max_value(&self) -> f64 {
        self.inner.max_value()
    }

    fn target_count(&self) -> usize {
        self.inner.parts.len()
    }

    fn evaluator(&self) -> PartWalkSumEvaluator {
        self.inner.part_walk_evaluator()
    }

    fn support(&self) -> SensorSet {
        self.inner.support()
    }
}

/// Evaluator companion of [`SumUtility`].
#[derive(Clone, Debug)]
pub struct SumEvaluator {
    parts: Vec<AnyEvaluator>,
    members: SensorSet,
}

impl Evaluator for SumEvaluator {
    fn value(&self) -> f64 {
        self.parts.iter().map(Evaluator::value).sum()
    }

    // Delta chains are seeded with +0.0 (not `.sum()`, whose f64 identity
    // is -0.0) so that the accumulator's zero sign matches the sparse
    // evaluator's bit-for-bit: zeros folded into a +0.0-seeded accumulator
    // never flip its sign, and non-incident parts contribute exact zeros.

    fn gain(&self, v: SensorId) -> f64 {
        if self.members.contains(v) {
            return 0.0;
        }
        self.parts.iter().fold(0.0, |acc, p| acc + p.gain(v))
    }

    fn loss(&self, v: SensorId) -> f64 {
        if !self.members.contains(v) {
            return 0.0;
        }
        self.parts.iter().fold(0.0, |acc, p| acc + p.loss(v))
    }

    fn insert(&mut self, v: SensorId) -> f64 {
        if !self.members.insert(v) {
            return 0.0;
        }
        self.parts.iter_mut().fold(0.0, |acc, p| acc + p.insert(v))
    }

    fn remove(&mut self, v: SensorId) -> f64 {
        if !self.members.remove(v) {
            return 0.0;
        }
        self.parts.iter_mut().fold(0.0, |acc, p| acc + p.remove(v))
    }

    fn contains(&self, v: SensorId) -> bool {
        self.members.contains(v)
    }

    fn current_set(&self) -> SensorSet {
        self.members.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn two_target_sum() -> SumUtility {
        SumUtility::multi_target_detection(
            &[
                SensorSet::from_indices(4, [0, 1]),
                SensorSet::from_indices(4, [1, 2, 3]),
            ],
            0.4,
        )
    }

    #[test]
    fn sum_adds_per_target_values() {
        let u = two_target_sum();
        assert_eq!(u.n_targets(), 2);
        let s = SensorSet::from_indices(4, [0, 2]);
        let parts = u.eval_parts(&s);
        assert!((parts[0] - 0.4).abs() < 1e-12);
        assert!((parts[1] - 0.4).abs() < 1e-12);
        assert!((u.eval(&s) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn max_value_sums_part_maxima() {
        let u = two_target_sum();
        let expected = (1.0 - 0.6f64.powi(2)) + (1.0 - 0.6f64.powi(3));
        assert!((u.max_value() - expected).abs() < 1e-12);
    }

    #[test]
    fn any_utility_dispatch_consistency() {
        let base = DetectionUtility::uniform(3, 0.5);
        let any: AnyUtility = base.clone().into();
        let s = SensorSet::from_indices(3, [0, 2]);
        assert_eq!(any.eval(&s), base.eval(&s));
        assert_eq!(any.universe(), 3);
        let lin: AnyUtility = LinearUtility::new(vec![1.0]).into();
        assert_eq!(lin.eval(&SensorSet::full(1)), 1.0);
        let log: AnyUtility = LogSumUtility::new(vec![1.0]).into();
        assert!(log.eval(&SensorSet::full(1)) > 0.0);
        let fac: AnyUtility = FacilityLocationUtility::new(vec![vec![2.0]]).into();
        assert_eq!(fac.eval(&SensorSet::full(1)), 2.0);
    }

    #[test]
    #[should_panic(expected = "share one universe")]
    fn mixed_universes_panic() {
        let _ = SumUtility::new(vec![
            DetectionUtility::uniform(2, 0.4).into(),
            DetectionUtility::uniform(3, 0.4).into(),
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn empty_sum_panics() {
        let _ = SumUtility::new(vec![]);
    }

    #[test]
    fn incidence_index_lists_supporting_parts_in_order() {
        let u = two_target_sum();
        let idx = u.incidence();
        assert_eq!(idx.universe(), 4);
        assert_eq!(idx.incident(SensorId(0)), &[0]);
        assert_eq!(idx.incident(SensorId(1)), &[0, 1]);
        assert_eq!(idx.incident(SensorId(2)), &[1]);
        assert_eq!(idx.incident(SensorId(3)), &[1]);
        assert_eq!(idx.n_entries(), 5);
        assert_eq!(idx.degree(SensorId(1)), 2);
    }

    #[test]
    fn sum_support_is_union_of_part_supports() {
        let u = SumUtility::multi_target_detection(
            &[
                SensorSet::from_indices(5, [0, 1]),
                SensorSet::from_indices(5, [1, 3]),
            ],
            0.4,
        );
        assert_eq!(u.support(), SensorSet::from_indices(5, [0, 1, 3]));
    }

    #[test]
    fn sparse_gain_is_exactly_zero_outside_support() {
        let u = two_target_sum(); // no part's support contains... all do here
        let parts: Vec<AnyUtility> = vec![
            DetectionUtility::uniform_on(&SensorSet::from_indices(4, [0]), 0.4).into(),
            LinearUtility::new(vec![0.0, 2.0, 0.0, 0.0]).into(),
        ];
        let sparse_only = SumUtility::new(parts);
        let e = sparse_only.evaluator();
        assert_eq!(e.gain(SensorId(2)), 0.0);
        assert_eq!(e.gain(SensorId(3)), 0.0);
        assert!(e.gain(SensorId(0)) > 0.0);
        let _ = u;
    }

    /// The load-bearing property of the sparse representation: gains and
    /// losses are **bitwise** equal to both oracles' (non-incident parts
    /// contribute an exact `0.0`, incident parts are visited in the same
    /// relative order), so schedulers produce identical assignments.
    #[test]
    fn sparse_matches_dense_bitwise_on_trace() {
        let u = two_target_sum();
        let mut sparse = u.evaluator();
        let mut walk = u.part_walk_evaluator();
        let mut dense = u.dense_evaluator();
        let trace: Vec<(bool, usize)> = vec![
            (true, 1),
            (true, 0),
            (false, 1),
            (true, 3),
            (true, 2),
            (false, 0),
            (true, 1),
        ];
        for (add, raw) in trace {
            let v = SensorId(raw);
            for probe in 0..4 {
                let p = SensorId(probe);
                assert_eq!(sparse.gain(p).to_bits(), dense.gain(p).to_bits());
                assert_eq!(sparse.gain(p).to_bits(), walk.gain(p).to_bits());
                assert_eq!(sparse.loss(p).to_bits(), dense.loss(p).to_bits());
                assert_eq!(sparse.loss(p).to_bits(), walk.loss(p).to_bits());
            }
            if add {
                let d = sparse.insert(v);
                assert_eq!(d.to_bits(), dense.insert(v).to_bits());
                assert_eq!(d.to_bits(), walk.insert(v).to_bits());
            } else {
                let d = sparse.remove(v);
                assert_eq!(d.to_bits(), dense.remove(v).to_bits());
                assert_eq!(d.to_bits(), walk.remove(v).to_bits());
            }
            assert_eq!(sparse.current_set(), dense.current_set());
            assert_eq!(sparse.current_set(), walk.current_set());
            assert_eq!(sparse.value().to_bits(), walk.value().to_bits());
            assert!((sparse.value() - dense.value()).abs() < 1e-12);
        }
    }

    #[test]
    fn running_value_survives_rebuild_cadence() {
        let u = two_target_sum();
        let mut e = u.evaluator();
        // Far more mutations than the rebuild cadence.
        for round in 0..(SparseSumEvaluator::REBUILD_CADENCE + 17) {
            let v = SensorId((round % 4) as usize);
            if e.contains(v) {
                e.remove(v);
            } else {
                e.insert(v);
            }
            let direct: f64 = e.part_values().iter().sum();
            assert!((e.value() - direct).abs() < 1e-9, "round {round}");
        }
    }

    /// Satellite of the configurable-cadence change: whatever cadence an
    /// evaluator rebuilds at, the Kahan chain must stay bit-identical on
    /// families whose deltas are exact in binary (detection with `p = 0.5`:
    /// every per-part value is a dyadic rational). Cadence 1 rebuilds after
    /// every mutation; `u32::MAX` effectively never rebuilds — the running
    /// value, the realised deltas, and the gain/loss queries must agree
    /// bitwise across all of them at every trace step.
    #[test]
    fn rebuild_cadence_is_observationally_bit_identical() {
        let u = SumUtility::multi_target_detection(
            &[
                SensorSet::from_indices(5, [0, 1, 2]),
                SensorSet::from_indices(5, [1, 3]),
                SensorSet::from_indices(5, [2, 3, 4]),
            ],
            0.5,
        );
        let mut evals: Vec<SparseSumEvaluator> =
            [1, 3, SparseSumEvaluator::REBUILD_CADENCE, u32::MAX]
                .iter()
                .map(|&c| u.evaluator().with_rebuild_cadence(c))
                .collect();
        assert_eq!(evals[0].rebuild_cadence(), 1);
        for round in 0..64u32 {
            let v = SensorId((round as usize * 7 + 3) % 5);
            let deltas: Vec<u64> = evals
                .iter_mut()
                .map(|e| {
                    if e.contains(v) {
                        e.remove(v).to_bits()
                    } else {
                        e.insert(v).to_bits()
                    }
                })
                .collect();
            let values: Vec<u64> = evals.iter().map(|e| e.value().to_bits()).collect();
            let gains: Vec<u64> = evals
                .iter()
                .map(|e| e.gain(SensorId(0)).to_bits())
                .collect();
            for i in 1..evals.len() {
                assert_eq!(deltas[0], deltas[i], "delta diverged at round {round}");
                assert_eq!(values[0], values[i], "value diverged at round {round}");
                assert_eq!(gains[0], gains[i], "gain diverged at round {round}");
            }
        }
    }

    #[test]
    fn rebuild_cadence_clamps_to_one() {
        let u = two_target_sum();
        let mut e = u.evaluator();
        e.set_rebuild_cadence(0);
        assert_eq!(e.rebuild_cadence(), 1);
    }

    #[test]
    fn eval_parts_matches_per_part_eval() {
        let u = two_target_sum();
        let s = SensorSet::from_indices(4, [1, 3]);
        let via_evaluator = u.eval_parts(&s);
        let direct: Vec<f64> = u.parts().iter().map(|p| p.eval(&s)).collect();
        assert_eq!(via_evaluator.len(), direct.len());
        for (a, b) in via_evaluator.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn dense_wrapper_agrees_with_sparse_sum() {
        let u = two_target_sum();
        let dense = DenseSumUtility::new(u.clone());
        let s = SensorSet::from_indices(4, [0, 2, 3]);
        assert!((dense.eval(&s) - u.eval(&s)).abs() < 1e-12);
        assert_eq!(dense.universe(), u.universe());
        assert_eq!(dense.target_count(), u.target_count());
        assert_eq!(dense.support(), u.support());
        assert_eq!(dense.max_value(), u.max_value());
        assert_eq!(dense.inner().n_targets(), 2);
    }

    #[test]
    fn sparse_queries_advance_stats_counters() {
        let u = two_target_sum();
        let e = u.evaluator();
        let before = crate::stats::snapshot();
        let _ = e.gain(SensorId(1)); // deg 2
        let after = crate::stats::snapshot();
        assert!(after.gain_queries > before.gain_queries);
        assert!(after.parts_touched >= before.parts_touched + 2);
    }

    proptest! {
        /// Sparse and dense evaluators agree on arbitrary mixed-family
        /// traces (the in-crate twin of the COOL-E024 check relation).
        #[test]
        fn sparse_matches_dense_on_random_traces(
            cov1 in proptest::collection::vec(0usize..6, 1..5),
            weights in proptest::collection::vec(0.0f64..4.0, 6),
            p in 0.05f64..0.95,
            ops in proptest::collection::vec((any::<bool>(), 0usize..6), 0..40),
        ) {
            let u = SumUtility::new(vec![
                DetectionUtility::uniform_on(
                    &SensorSet::from_indices(6, cov1.iter().copied()), p).into(),
                LinearUtility::new(weights.clone()).into(),
                LogSumUtility::new(weights).into(),
            ]);
            let mut sparse = u.evaluator();
            let mut dense = u.dense_evaluator();
            for (add, raw) in ops {
                let v = SensorId(raw % 6);
                prop_assert_eq!(sparse.gain(v).to_bits(), dense.gain(v).to_bits());
                prop_assert_eq!(sparse.loss(v).to_bits(), dense.loss(v).to_bits());
                if add {
                    prop_assert_eq!(sparse.insert(v).to_bits(), dense.insert(v).to_bits());
                } else {
                    prop_assert_eq!(sparse.remove(v).to_bits(), dense.remove(v).to_bits());
                }
                prop_assert!((sparse.value() - dense.value()).abs() < 1e-9);
            }
        }

        #[test]
        fn sum_evaluator_matches_eval(
            cov1 in proptest::collection::vec(0usize..5, 1..5),
            cov2 in proptest::collection::vec(0usize..5, 1..5),
            p in 0.05f64..0.95,
            ops in proptest::collection::vec((any::<bool>(), 0usize..5), 0..25),
        ) {
            let u = SumUtility::multi_target_detection(
                &[
                    SensorSet::from_indices(5, cov1.iter().copied()),
                    SensorSet::from_indices(5, cov2.iter().copied()),
                ],
                p,
            );
            let mut e = u.evaluator();
            for (add, raw) in ops {
                let v = SensorId(raw % 5);
                if add {
                    let predicted = e.gain(v);
                    prop_assert!((predicted - e.insert(v)).abs() < 1e-9);
                } else {
                    let predicted = e.loss(v);
                    prop_assert!((predicted - e.remove(v)).abs() < 1e-9);
                }
                prop_assert!((e.value() - u.eval(&e.current_set())).abs() < 1e-9);
            }
        }
    }
}
