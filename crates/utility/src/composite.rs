//! Composite utilities: runtime-polymorphic [`AnyUtility`] and the
//! multi-target sum `Σ_i U_i(S)` ([`SumUtility`]).
//!
//! §II-C/§II-D: the overall utility of a multi-target WSN at a slot is the
//! (symmetric) sum of per-target utilities, each evaluated on the activated
//! sensors that can monitor that target. Sums of monotone submodular
//! functions are monotone submodular, so the greedy guarantee carries over.

use crate::coverage::{CoverageEvaluator, CoverageUtility};
use crate::detection::{DetectionEvaluator, DetectionUtility};
use crate::facility::{FacilityEvaluator, FacilityLocationUtility};
use crate::kcover::{KCoverageEvaluator, KCoverageUtility};
use crate::linear::{LinearEvaluator, LinearUtility};
use crate::logsum::{LogSumEvaluator, LogSumUtility};
use crate::traits::{Evaluator, UtilityFunction};
use cool_common::{SensorId, SensorSet};

/// Any of the crate's built-in utilities, for heterogeneous composition.
///
/// # Examples
///
/// ```
/// use cool_utility::{AnyUtility, DetectionUtility, LinearUtility, UtilityFunction};
/// use cool_common::SensorSet;
///
/// let parts: Vec<AnyUtility> = vec![
///     DetectionUtility::uniform(3, 0.4).into(),
///     LinearUtility::new(vec![0.0, 1.0, 0.0]).into(),
/// ];
/// assert!(parts.iter().all(|u| u.universe() == 3));
/// ```
#[derive(Clone, Debug)]
pub enum AnyUtility {
    /// Detection probability `1 − Π(1−p)` (§II-C).
    Detection(DetectionUtility),
    /// Log-sum `ln(1 + Σw)` (§III gadget).
    LogSum(LogSumUtility),
    /// Modular `Σw`.
    Linear(LinearUtility),
    /// Weighted-area coverage (Eq. 2).
    Coverage(CoverageUtility),
    /// Facility location `Σ max`.
    Facility(FacilityLocationUtility),
    /// k-coverage `Σ w·min(count, k)/k`.
    KCover(KCoverageUtility),
}

macro_rules! dispatch {
    ($self:expr, $u:ident => $body:expr) => {
        match $self {
            AnyUtility::Detection($u) => $body,
            AnyUtility::LogSum($u) => $body,
            AnyUtility::Linear($u) => $body,
            AnyUtility::Coverage($u) => $body,
            AnyUtility::Facility($u) => $body,
            AnyUtility::KCover($u) => $body,
        }
    };
}

impl UtilityFunction for AnyUtility {
    type Evaluator = AnyEvaluator;

    fn universe(&self) -> usize {
        dispatch!(self, u => u.universe())
    }

    fn eval(&self, set: &SensorSet) -> f64 {
        dispatch!(self, u => u.eval(set))
    }

    fn max_value(&self) -> f64 {
        dispatch!(self, u => u.max_value())
    }

    fn evaluator(&self) -> AnyEvaluator {
        match self {
            AnyUtility::Detection(u) => AnyEvaluator::Detection(u.evaluator()),
            AnyUtility::LogSum(u) => AnyEvaluator::LogSum(u.evaluator()),
            AnyUtility::Linear(u) => AnyEvaluator::Linear(u.evaluator()),
            AnyUtility::Coverage(u) => AnyEvaluator::Coverage(u.evaluator()),
            AnyUtility::Facility(u) => AnyEvaluator::Facility(u.evaluator()),
            AnyUtility::KCover(u) => AnyEvaluator::KCover(u.evaluator()),
        }
    }
}

impl From<DetectionUtility> for AnyUtility {
    fn from(value: DetectionUtility) -> Self {
        AnyUtility::Detection(value)
    }
}

impl From<LogSumUtility> for AnyUtility {
    fn from(value: LogSumUtility) -> Self {
        AnyUtility::LogSum(value)
    }
}

impl From<LinearUtility> for AnyUtility {
    fn from(value: LinearUtility) -> Self {
        AnyUtility::Linear(value)
    }
}

impl From<CoverageUtility> for AnyUtility {
    fn from(value: CoverageUtility) -> Self {
        AnyUtility::Coverage(value)
    }
}

impl From<FacilityLocationUtility> for AnyUtility {
    fn from(value: FacilityLocationUtility) -> Self {
        AnyUtility::Facility(value)
    }
}

impl From<KCoverageUtility> for AnyUtility {
    fn from(value: KCoverageUtility) -> Self {
        AnyUtility::KCover(value)
    }
}

/// Evaluator companion of [`AnyUtility`].
#[derive(Clone, Debug)]
pub enum AnyEvaluator {
    /// Detection evaluator.
    Detection(DetectionEvaluator),
    /// Log-sum evaluator.
    LogSum(LogSumEvaluator),
    /// Linear evaluator.
    Linear(LinearEvaluator),
    /// Coverage evaluator.
    Coverage(CoverageEvaluator),
    /// Facility evaluator.
    Facility(FacilityEvaluator),
    /// k-coverage evaluator.
    KCover(KCoverageEvaluator),
}

macro_rules! dispatch_eval {
    ($self:expr, $e:ident => $body:expr) => {
        match $self {
            AnyEvaluator::Detection($e) => $body,
            AnyEvaluator::LogSum($e) => $body,
            AnyEvaluator::Linear($e) => $body,
            AnyEvaluator::Coverage($e) => $body,
            AnyEvaluator::Facility($e) => $body,
            AnyEvaluator::KCover($e) => $body,
        }
    };
}

impl Evaluator for AnyEvaluator {
    fn value(&self) -> f64 {
        dispatch_eval!(self, e => e.value())
    }

    fn gain(&self, v: SensorId) -> f64 {
        dispatch_eval!(self, e => e.gain(v))
    }

    fn loss(&self, v: SensorId) -> f64 {
        dispatch_eval!(self, e => e.loss(v))
    }

    fn insert(&mut self, v: SensorId) -> f64 {
        dispatch_eval!(self, e => e.insert(v))
    }

    fn remove(&mut self, v: SensorId) -> f64 {
        dispatch_eval!(self, e => e.remove(v))
    }

    fn contains(&self, v: SensorId) -> bool {
        dispatch_eval!(self, e => e.contains(v))
    }

    fn current_set(&self) -> SensorSet {
        dispatch_eval!(self, e => e.current_set())
    }
}

/// The multi-target overall utility `U(S) = Σ_i U_i(S)` (Eq. 1).
///
/// Per-target coverage restriction `S ∩ V(O_i)` is encoded inside each part
/// (e.g. zero detection probability outside `V(O_i)` — see
/// [`DetectionUtility::uniform_on`]).
///
/// # Examples
///
/// ```
/// use cool_common::SensorSet;
/// use cool_utility::{DetectionUtility, SumUtility, UtilityFunction};
///
/// // Two targets: V(O₀) = {0,1}, V(O₁) = {1,2}, p = 0.4 everywhere.
/// let u = SumUtility::new(vec![
///     DetectionUtility::uniform_on(&SensorSet::from_indices(3, [0, 1]), 0.4).into(),
///     DetectionUtility::uniform_on(&SensorSet::from_indices(3, [1, 2]), 0.4).into(),
/// ]);
/// let only_shared = SensorSet::from_indices(3, [1]);
/// assert!((u.eval(&only_shared) - 0.8).abs() < 1e-12); // 0.4 per target
/// ```
#[derive(Clone, Debug)]
pub struct SumUtility {
    parts: Vec<AnyUtility>,
    universe: usize,
}

impl SumUtility {
    /// Creates the sum from its parts.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the parts disagree on universe size.
    pub fn new(parts: Vec<AnyUtility>) -> Self {
        assert!(!parts.is_empty(), "sum utility needs at least one part");
        let universe = parts[0].universe();
        assert!(
            parts.iter().all(|p| p.universe() == universe),
            "all parts must share one universe"
        );
        SumUtility { parts, universe }
    }

    /// The paper's multi-target detection instance: target `i` is watched by
    /// `coverages[i]`, every covering sensor detects with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `coverages` is empty, universes disagree, or `p ∉ [0, 1]`.
    pub fn multi_target_detection(coverages: &[SensorSet], p: f64) -> Self {
        assert!(!coverages.is_empty(), "need at least one target");
        SumUtility::new(
            coverages
                .iter()
                .map(|cov| DetectionUtility::uniform_on(cov, p).into())
                .collect(),
        )
    }

    /// The parts `U_i`.
    pub fn parts(&self) -> &[AnyUtility] {
        &self.parts
    }

    /// Number of targets (parts).
    pub fn n_targets(&self) -> usize {
        self.parts.len()
    }

    /// Per-part values at `set` — the per-target utility breakdown.
    pub fn eval_parts(&self, set: &SensorSet) -> Vec<f64> {
        self.parts.iter().map(|p| p.eval(set)).collect()
    }
}

impl UtilityFunction for SumUtility {
    type Evaluator = SumEvaluator;

    fn universe(&self) -> usize {
        self.universe
    }

    fn eval(&self, set: &SensorSet) -> f64 {
        self.parts.iter().map(|p| p.eval(set)).sum()
    }

    fn max_value(&self) -> f64 {
        self.parts.iter().map(UtilityFunction::max_value).sum()
    }

    fn target_count(&self) -> usize {
        self.parts.len()
    }

    fn evaluator(&self) -> SumEvaluator {
        SumEvaluator {
            parts: self.parts.iter().map(UtilityFunction::evaluator).collect(),
            members: SensorSet::new(self.universe),
        }
    }
}

/// Evaluator companion of [`SumUtility`].
#[derive(Clone, Debug)]
pub struct SumEvaluator {
    parts: Vec<AnyEvaluator>,
    members: SensorSet,
}

impl Evaluator for SumEvaluator {
    fn value(&self) -> f64 {
        self.parts.iter().map(Evaluator::value).sum()
    }

    fn gain(&self, v: SensorId) -> f64 {
        if self.members.contains(v) {
            return 0.0;
        }
        self.parts.iter().map(|p| p.gain(v)).sum()
    }

    fn loss(&self, v: SensorId) -> f64 {
        if !self.members.contains(v) {
            return 0.0;
        }
        self.parts.iter().map(|p| p.loss(v)).sum()
    }

    fn insert(&mut self, v: SensorId) -> f64 {
        if !self.members.insert(v) {
            return 0.0;
        }
        self.parts.iter_mut().map(|p| p.insert(v)).sum()
    }

    fn remove(&mut self, v: SensorId) -> f64 {
        if !self.members.remove(v) {
            return 0.0;
        }
        self.parts.iter_mut().map(|p| p.remove(v)).sum()
    }

    fn contains(&self, v: SensorId) -> bool {
        self.members.contains(v)
    }

    fn current_set(&self) -> SensorSet {
        self.members.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn two_target_sum() -> SumUtility {
        SumUtility::multi_target_detection(
            &[
                SensorSet::from_indices(4, [0, 1]),
                SensorSet::from_indices(4, [1, 2, 3]),
            ],
            0.4,
        )
    }

    #[test]
    fn sum_adds_per_target_values() {
        let u = two_target_sum();
        assert_eq!(u.n_targets(), 2);
        let s = SensorSet::from_indices(4, [0, 2]);
        let parts = u.eval_parts(&s);
        assert!((parts[0] - 0.4).abs() < 1e-12);
        assert!((parts[1] - 0.4).abs() < 1e-12);
        assert!((u.eval(&s) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn max_value_sums_part_maxima() {
        let u = two_target_sum();
        let expected = (1.0 - 0.6f64.powi(2)) + (1.0 - 0.6f64.powi(3));
        assert!((u.max_value() - expected).abs() < 1e-12);
    }

    #[test]
    fn any_utility_dispatch_consistency() {
        let base = DetectionUtility::uniform(3, 0.5);
        let any: AnyUtility = base.clone().into();
        let s = SensorSet::from_indices(3, [0, 2]);
        assert_eq!(any.eval(&s), base.eval(&s));
        assert_eq!(any.universe(), 3);
        let lin: AnyUtility = LinearUtility::new(vec![1.0]).into();
        assert_eq!(lin.eval(&SensorSet::full(1)), 1.0);
        let log: AnyUtility = LogSumUtility::new(vec![1.0]).into();
        assert!(log.eval(&SensorSet::full(1)) > 0.0);
        let fac: AnyUtility = FacilityLocationUtility::new(vec![vec![2.0]]).into();
        assert_eq!(fac.eval(&SensorSet::full(1)), 2.0);
    }

    #[test]
    #[should_panic(expected = "share one universe")]
    fn mixed_universes_panic() {
        let _ = SumUtility::new(vec![
            DetectionUtility::uniform(2, 0.4).into(),
            DetectionUtility::uniform(3, 0.4).into(),
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn empty_sum_panics() {
        let _ = SumUtility::new(vec![]);
    }

    proptest! {
        #[test]
        fn sum_evaluator_matches_eval(
            cov1 in proptest::collection::vec(0usize..5, 1..5),
            cov2 in proptest::collection::vec(0usize..5, 1..5),
            p in 0.05f64..0.95,
            ops in proptest::collection::vec((any::<bool>(), 0usize..5), 0..25),
        ) {
            let u = SumUtility::multi_target_detection(
                &[
                    SensorSet::from_indices(5, cov1.iter().copied()),
                    SensorSet::from_indices(5, cov2.iter().copied()),
                ],
                p,
            );
            let mut e = u.evaluator();
            for (add, raw) in ops {
                let v = SensorId(raw % 5);
                if add {
                    let predicted = e.gain(v);
                    prop_assert!((predicted - e.insert(v)).abs() < 1e-9);
                } else {
                    let predicted = e.loss(v);
                    prop_assert!((predicted - e.remove(v)).abs() < 1e-9);
                }
                prop_assert!((e.value() - u.eval(&e.current_set())).abs() < 1e-9);
            }
        }
    }
}
