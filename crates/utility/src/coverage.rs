//! The weighted-area region-monitoring utility of Eq. (2).
//!
//! `U(S) = Σ_i I_i(S)·w_i·|A_i|` over the subregions of the arrangement
//! (Fig. 3(b)): a subregion contributes its weighted area iff at least one
//! active sensor covers it. This is a weighted coverage function — monotone
//! and submodular.

use crate::traits::{Evaluator, UtilityFunction};
use cool_common::{SensorId, SensorSet};
use cool_geometry::Arrangement;
use std::sync::Arc;

/// Eq. (2): weighted area covered by the active set.
///
/// # Examples
///
/// ```
/// use cool_common::SensorSet;
/// use cool_geometry::{AnyRegion, Arrangement, Disk, Point, Rect};
/// use cool_utility::{CoverageUtility, UtilityFunction};
///
/// let regions: Vec<AnyRegion> = vec![
///     Disk::new(Point::new(3.0, 5.0), 2.0).into(),
///     Disk::new(Point::new(5.0, 5.0), 2.0).into(),
/// ];
/// let arr = Arrangement::build(Rect::square(10.0), &regions, 128);
/// let u = CoverageUtility::new(&arr);
/// let both = SensorSet::full(2);
/// assert!((u.eval(&both) - arr.total_coverable_weight()).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct CoverageUtility {
    universe: usize,
    /// Weighted area `w_i · |A_i|` per subregion. Shared with every
    /// evaluator (evaluators carry only mutable state, so spawning one per
    /// slot stays cheap at large part counts).
    values: Arc<Vec<f64>>,
    /// Signature per subregion.
    signatures: Vec<SensorSet>,
    /// Subregion indices covered by each sensor. Shared with evaluators.
    sensor_subregions: Arc<Vec<Vec<usize>>>,
}

impl CoverageUtility {
    /// Builds the utility from an [`Arrangement`].
    pub fn new(arrangement: &Arrangement) -> Self {
        let universe = arrangement.n_sensors();
        let subs = arrangement.subregions();
        let values: Vec<f64> = subs.iter().map(|s| s.weight * s.area).collect();
        let signatures: Vec<SensorSet> = subs.iter().map(|s| s.signature.clone()).collect();
        let mut sensor_subregions = vec![Vec::new(); universe];
        for (idx, sig) in signatures.iter().enumerate() {
            for v in sig {
                sensor_subregions[v.index()].push(idx);
            }
        }
        CoverageUtility {
            universe,
            values: Arc::new(values),
            signatures,
            sensor_subregions: Arc::new(sensor_subregions),
        }
    }

    /// Builds directly from parallel `(signature, weighted_area)` lists —
    /// for synthetic coverage instances without geometry.
    ///
    /// # Panics
    ///
    /// Panics if lists differ in length, a signature universe differs from
    /// `universe`, or a value is negative/not finite.
    pub fn from_parts(universe: usize, signatures: Vec<SensorSet>, values: Vec<f64>) -> Self {
        assert_eq!(signatures.len(), values.len(), "parallel lists must match");
        assert!(
            signatures.iter().all(|s| s.universe() == universe),
            "signature universe mismatch"
        );
        assert!(
            values.iter().all(|v| v.is_finite() && *v >= 0.0),
            "subregion values must be non-negative"
        );
        let mut sensor_subregions = vec![Vec::new(); universe];
        for (idx, sig) in signatures.iter().enumerate() {
            for v in sig {
                sensor_subregions[v.index()].push(idx);
            }
        }
        CoverageUtility {
            universe,
            values: Arc::new(values),
            signatures,
            sensor_subregions: Arc::new(sensor_subregions),
        }
    }

    /// Number of subregions.
    pub fn n_subregions(&self) -> usize {
        self.values.len()
    }

    /// Weighted area per subregion (SoA layout seam).
    pub(crate) fn subregion_values(&self) -> &[f64] {
        &self.values
    }

    /// Subregion indices covered by sensor `v` (SoA layout seam).
    pub(crate) fn subregions_of(&self, v: SensorId) -> &[usize] {
        &self.sensor_subregions[v.index()]
    }

    /// Concave-envelope LP items `(cap, per-sensor mass)` with
    /// `U(S) = Σ_k cap_k · min(1, Σ_{v∈S} q_{k,v})` **exactly** for this
    /// utility (one item per subregion, indicator masses) — consumed by the
    /// LP-relaxation scheduler.
    pub fn lp_items(&self) -> Vec<(f64, Vec<f64>)> {
        self.signatures
            .iter()
            .zip(self.values.iter())
            .filter(|(_, &value)| value > 0.0)
            .map(|(sig, &value)| {
                let mut q = vec![0.0; self.universe];
                for v in sig {
                    q[v.index()] = 1.0;
                }
                (value, q)
            })
            .collect()
    }
}

impl UtilityFunction for CoverageUtility {
    type Evaluator = CoverageEvaluator;

    fn universe(&self) -> usize {
        self.universe
    }

    fn eval(&self, set: &SensorSet) -> f64 {
        assert_eq!(set.universe(), self.universe, "set universe mismatch");
        self.signatures
            .iter()
            .zip(self.values.iter())
            .filter(|(sig, _)| !sig.is_disjoint(set))
            .map(|(_, value)| value)
            .sum()
    }

    fn max_value(&self) -> f64 {
        self.values.iter().sum()
    }

    fn evaluator(&self) -> CoverageEvaluator {
        CoverageEvaluator {
            values: Arc::clone(&self.values),
            sensor_subregions: Arc::clone(&self.sensor_subregions),
            cover_counts: vec![0; self.values.len()],
            members: SensorSet::new(self.universe),
            covered_value: 0.0,
        }
    }

    fn support(&self) -> SensorSet {
        // A sensor matters only if it covers a subregion with positive
        // weighted area (zero-area subregions contribute exactly 0.0).
        SensorSet::from_indices(
            self.universe,
            self.sensor_subregions
                .iter()
                .enumerate()
                .filter(|(_, subs)| subs.iter().any(|&s| self.values[s] > 0.0))
                .map(|(v, _)| v),
        )
    }
}

/// Incremental evaluator for [`CoverageUtility`] — per-subregion cover
/// counts.
#[derive(Clone, Debug)]
pub struct CoverageEvaluator {
    values: Arc<Vec<f64>>,
    sensor_subregions: Arc<Vec<Vec<usize>>>,
    cover_counts: Vec<u32>,
    members: SensorSet,
    covered_value: f64,
}

impl Evaluator for CoverageEvaluator {
    fn value(&self) -> f64 {
        self.covered_value
    }

    fn gain(&self, v: SensorId) -> f64 {
        if self.members.contains(v) {
            return 0.0;
        }
        self.sensor_subregions[v.index()]
            .iter()
            .filter(|&&s| self.cover_counts[s] == 0)
            .map(|&s| self.values[s])
            .sum()
    }

    fn loss(&self, v: SensorId) -> f64 {
        if !self.members.contains(v) {
            return 0.0;
        }
        self.sensor_subregions[v.index()]
            .iter()
            .filter(|&&s| self.cover_counts[s] == 1)
            .map(|&s| self.values[s])
            .sum()
    }

    fn insert(&mut self, v: SensorId) -> f64 {
        if !self.members.insert(v) {
            return 0.0;
        }
        let mut gained = 0.0;
        for &s in &self.sensor_subregions[v.index()] {
            if self.cover_counts[s] == 0 {
                gained += self.values[s];
            }
            self.cover_counts[s] += 1;
        }
        self.covered_value += gained;
        gained
    }

    fn remove(&mut self, v: SensorId) -> f64 {
        if !self.members.remove(v) {
            return 0.0;
        }
        let mut lost = 0.0;
        for &s in &self.sensor_subregions[v.index()] {
            self.cover_counts[s] -= 1;
            if self.cover_counts[s] == 0 {
                lost += self.values[s];
            }
        }
        self.covered_value -= lost;
        lost
    }

    fn contains(&self, v: SensorId) -> bool {
        self.members.contains(v)
    }

    fn current_set(&self) -> SensorSet {
        self.members.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_geometry::{AnyRegion, Disk, Point, Rect};
    use proptest::prelude::*;

    fn synthetic() -> CoverageUtility {
        // 3 sensors, 4 subregions:
        //   A0 {v0}: 2.0,  A1 {v0,v1}: 3.0,  A2 {v1,v2}: 1.0,  A3 {v2}: 5.0
        CoverageUtility::from_parts(
            3,
            vec![
                SensorSet::from_indices(3, [0]),
                SensorSet::from_indices(3, [0, 1]),
                SensorSet::from_indices(3, [1, 2]),
                SensorSet::from_indices(3, [2]),
            ],
            vec![2.0, 3.0, 1.0, 5.0],
        )
    }

    #[test]
    fn eval_counts_each_subregion_once() {
        let u = synthetic();
        assert_eq!(u.eval(&SensorSet::from_indices(3, [0])), 5.0);
        assert_eq!(u.eval(&SensorSet::from_indices(3, [1])), 4.0);
        assert_eq!(u.eval(&SensorSet::from_indices(3, [0, 1])), 6.0);
        assert_eq!(u.eval(&SensorSet::full(3)), 11.0);
        assert_eq!(u.max_value(), 11.0);
        assert_eq!(u.n_subregions(), 4);
    }

    #[test]
    fn from_arrangement_matches_covered_weighted_area() {
        let regions: Vec<AnyRegion> = vec![
            Disk::new(Point::new(3.0, 5.0), 2.0).into(),
            Disk::new(Point::new(5.0, 5.0), 2.0).into(),
            Disk::new(Point::new(8.0, 2.0), 1.5).into(),
        ];
        let arr = Arrangement::build(Rect::square(10.0), &regions, 128);
        let u = CoverageUtility::new(&arr);
        for indices in [vec![], vec![0], vec![1, 2], vec![0, 1, 2]] {
            let s = SensorSet::from_indices(3, indices.iter().copied());
            assert!(
                (u.eval(&s) - arr.covered_weighted_area(&s)).abs() < 1e-9,
                "mismatch at {indices:?}"
            );
        }
    }

    #[test]
    fn evaluator_gain_loss_roundtrip() {
        let u = synthetic();
        let mut e = u.evaluator();
        assert_eq!(e.gain(SensorId(0)), 5.0);
        assert_eq!(e.insert(SensorId(0)), 5.0);
        assert_eq!(e.gain(SensorId(1)), 1.0, "A1 already covered by v0");
        assert_eq!(e.insert(SensorId(1)), 1.0);
        assert_eq!(e.loss(SensorId(0)), 2.0, "only A0 uniquely v0's now");
        assert_eq!(e.remove(SensorId(0)), 2.0);
        assert_eq!(e.value(), 4.0);
    }

    #[test]
    #[should_panic(expected = "parallel lists")]
    fn mismatched_parts_panic() {
        let _ = CoverageUtility::from_parts(1, vec![SensorSet::new(1)], vec![]);
    }

    proptest! {
        #[test]
        fn evaluator_matches_eval(
            // Random subregions over 6 sensors.
            subs in proptest::collection::vec(
                (proptest::collection::vec(0usize..6, 1..4), 0.0f64..10.0), 1..12),
            ops in proptest::collection::vec((any::<bool>(), 0usize..6), 0..30),
        ) {
            let signatures: Vec<SensorSet> = subs
                .iter()
                .map(|(ids, _)| SensorSet::from_indices(6, ids.iter().copied()))
                .collect();
            let values: Vec<f64> = subs.iter().map(|&(_, v)| v).collect();
            let u = CoverageUtility::from_parts(6, signatures, values);
            let mut e = u.evaluator();
            for (add, raw) in ops {
                let v = SensorId(raw % 6);
                if add {
                    let predicted = e.gain(v);
                    prop_assert!((predicted - e.insert(v)).abs() < 1e-9);
                } else {
                    let predicted = e.loss(v);
                    prop_assert!((predicted - e.remove(v)).abs() < 1e-9);
                }
                prop_assert!((e.value() - u.eval(&e.current_set())).abs() < 1e-9);
            }
        }
    }
}
