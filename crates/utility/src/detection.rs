//! The detection-probability utility of §II-C.
//!
//! "For each sensor `v_j` that can monitor `O_i`, let `p_j` be the
//! probability that the sensor `v_j` will detect a certain event happened at
//! target `O_i`. Then the utility `U_i(S) = 1 − Π_{v_j∈S}(1 − p_j)` denotes
//! the probability that the event happened at the target `O_i` will be
//! detected by these `S` sensors."
//!
//! A sensor outside `V(O_i)` has `p_j = 0` and contributes nothing, so the
//! coverage restriction `S ∩ V(O_i)` is encoded directly in the probability
//! vector.

use crate::traits::{Evaluator, UtilityFunction};
use cool_common::{SensorId, SensorSet};
use std::sync::Arc;

/// `U(S) = 1 − Π_{v∈S}(1 − p_v)` for one target.
///
/// # Examples
///
/// ```
/// use cool_common::SensorSet;
/// use cool_utility::{DetectionUtility, UtilityFunction};
///
/// let u = DetectionUtility::new(vec![0.4, 0.0, 0.9]); // sensor 1 can't see the target
/// let all = SensorSet::full(3);
/// assert!((u.eval(&all) - (1.0 - 0.6 * 1.0 * 0.1)).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DetectionUtility {
    /// Shared with every evaluator (evaluators carry only mutable state,
    /// so spawning one per slot stays cheap at large part counts).
    probs: Arc<Vec<f64>>,
}

impl DetectionUtility {
    /// Creates the utility from per-sensor detection probabilities
    /// (`0` for sensors that cannot monitor the target).
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or not finite.
    pub fn new(probs: Vec<f64>) -> Self {
        assert!(
            probs
                .iter()
                .all(|p| p.is_finite() && (0.0..=1.0).contains(p)),
            "detection probabilities must lie in [0, 1]"
        );
        DetectionUtility {
            probs: Arc::new(probs),
        }
    }

    /// All `n` sensors monitor the target with the same probability `p` —
    /// the paper's single-target evaluation setting (`p = 0.4`, §VI-B).
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    pub fn uniform(n: usize, p: f64) -> Self {
        DetectionUtility::new(vec![p; n])
    }

    /// Restricts a uniform probability to the sensors in `coverage` —
    /// `V(O_i)` with identical per-sensor quality.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    pub fn uniform_on(coverage: &SensorSet, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        let mut probs = vec![0.0; coverage.universe()];
        for v in coverage {
            probs[v.index()] = p;
        }
        DetectionUtility::new(probs)
    }

    /// Per-sensor probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// The set of sensors with a positive detection probability — `V(O_i)`.
    pub fn coverage(&self) -> SensorSet {
        SensorSet::from_indices(
            self.probs.len(),
            self.probs
                .iter()
                .enumerate()
                .filter(|(_, &p)| p > 0.0)
                .map(|(i, _)| i),
        )
    }
}

impl UtilityFunction for DetectionUtility {
    type Evaluator = DetectionEvaluator;

    fn universe(&self) -> usize {
        self.probs.len()
    }

    fn eval(&self, set: &SensorSet) -> f64 {
        assert_eq!(set.universe(), self.universe(), "set universe mismatch");
        let miss: f64 = set.iter().map(|v| 1.0 - self.probs[v.index()]).product();
        1.0 - miss
    }

    fn max_value(&self) -> f64 {
        let miss: f64 = self.probs.iter().map(|p| 1.0 - p).product();
        1.0 - miss
    }

    fn evaluator(&self) -> DetectionEvaluator {
        DetectionEvaluator {
            probs: Arc::clone(&self.probs),
            members: SensorSet::new(self.probs.len()),
            miss_product: 1.0,
            certain_members: 0,
        }
    }

    fn support(&self) -> SensorSet {
        self.coverage()
    }
}

/// Incremental evaluator for [`DetectionUtility`].
///
/// Maintains `Π(1−p_v)` over the members with `p_v < 1` plus a count of
/// members with `p_v = 1` (whose factor is exactly zero and cannot be
/// divided back out on removal).
#[derive(Clone, Debug)]
pub struct DetectionEvaluator {
    probs: Arc<Vec<f64>>,
    members: SensorSet,
    /// Product of `(1 − p_v)` over members with `p_v < 1`.
    miss_product: f64,
    /// Number of members with `p_v = 1`.
    certain_members: usize,
}

impl DetectionEvaluator {
    fn effective_miss(&self) -> f64 {
        if self.certain_members > 0 {
            0.0
        } else {
            self.miss_product
        }
    }
}

impl Evaluator for DetectionEvaluator {
    fn value(&self) -> f64 {
        1.0 - self.effective_miss()
    }

    fn gain(&self, v: SensorId) -> f64 {
        if self.members.contains(v) {
            return 0.0;
        }
        self.effective_miss() * self.probs[v.index()]
    }

    fn loss(&self, v: SensorId) -> f64 {
        if !self.members.contains(v) {
            return 0.0;
        }
        let p = self.probs[v.index()];
        if p >= 1.0 {
            if self.certain_members > 1 {
                0.0
            } else {
                // v was the only certain member; removing it restores the
                // finite product.
                self.miss_product
            }
        } else if self.certain_members > 0 {
            0.0
        } else {
            // miss without v = miss_product / (1−p); loss = miss_without·p.
            self.miss_product / (1.0 - p) * p
        }
    }

    fn insert(&mut self, v: SensorId) -> f64 {
        if !self.members.insert(v) {
            return 0.0;
        }
        let gain = self.effective_miss() * self.probs[v.index()];
        let p = self.probs[v.index()];
        if p >= 1.0 {
            self.certain_members += 1;
        } else {
            self.miss_product *= 1.0 - p;
        }
        gain
    }

    fn remove(&mut self, v: SensorId) -> f64 {
        if !self.members.remove(v) {
            return 0.0;
        }
        // Single pass: the state update *is* the loss computation (the
        // same `p ≥ 1` / certain-member branches `loss` walks), so the
        // branch work is not done twice. Arithmetic is kept identical to
        // `loss(v)` — a regression test pins `remove == prior loss`
        // bit-for-bit.
        let p = self.probs[v.index()];
        if p >= 1.0 {
            self.certain_members -= 1;
            if self.certain_members > 0 {
                0.0
            } else {
                // v was the only certain member; removing it restores the
                // finite product.
                self.miss_product
            }
        } else {
            let miss_without = self.miss_product / (1.0 - p);
            let had_certain = self.certain_members > 0;
            self.miss_product = miss_without;
            if had_certain {
                0.0
            } else {
                miss_without * p
            }
        }
    }

    fn contains(&self, v: SensorId) -> bool {
        self.members.contains(v)
    }

    fn current_set(&self) -> SensorSet {
        self.members.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matches_closed_form() {
        let u = DetectionUtility::uniform(5, 0.4);
        for k in 0..=5usize {
            let s = SensorSet::from_indices(5, 0..k);
            let expected = 1.0 - 0.6f64.powi(i32::try_from(k).unwrap());
            assert!((u.eval(&s) - expected).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn empty_set_is_zero() {
        let u = DetectionUtility::uniform(4, 0.7);
        assert_eq!(u.eval(&SensorSet::new(4)), 0.0);
    }

    #[test]
    fn zero_probability_sensor_contributes_nothing() {
        let u = DetectionUtility::new(vec![0.5, 0.0]);
        let one = SensorSet::from_indices(2, [0]);
        let both = SensorSet::full(2);
        assert_eq!(u.eval(&one), u.eval(&both));
        assert_eq!(u.coverage().len(), 1);
    }

    #[test]
    fn uniform_on_restricts_coverage() {
        let cov = SensorSet::from_indices(5, [1, 3]);
        let u = DetectionUtility::uniform_on(&cov, 0.4);
        assert_eq!(u.coverage(), cov);
        assert_eq!(u.probs()[0], 0.0);
        assert_eq!(u.probs()[1], 0.4);
    }

    #[test]
    #[should_panic(expected = "detection probabilities")]
    fn invalid_probability_panics() {
        let _ = DetectionUtility::new(vec![1.5]);
    }

    #[test]
    fn evaluator_handles_certain_sensor() {
        let u = DetectionUtility::new(vec![1.0, 0.5]);
        let mut e = u.evaluator();
        assert_eq!(e.insert(SensorId(0)), 1.0);
        assert_eq!(e.value(), 1.0);
        assert_eq!(e.gain(SensorId(1)), 0.0, "already certain");
        assert_eq!(e.insert(SensorId(1)), 0.0);
        // Removing the certain sensor leaves the 0.5 one.
        let loss = e.remove(SensorId(0));
        assert!((e.value() - 0.5).abs() < 1e-12);
        assert!((loss - 0.5).abs() < 1e-12);
    }

    /// Regression for the single-pass `remove`: its return value must be
    /// bit-for-bit the `loss(v)` observed immediately before, across
    /// certain (`p = 1`) and fractional members in every order.
    #[test]
    fn remove_returns_exactly_prior_loss() {
        let u = DetectionUtility::new(vec![1.0, 1.0, 0.5, 0.25, 0.0]);
        for removal_order in [[0, 1, 2, 3, 4], [4, 3, 2, 1, 0], [2, 0, 3, 1, 4]] {
            let mut e = u.evaluator();
            for v in 0..5 {
                e.insert(SensorId(v));
            }
            for v in removal_order {
                let prior_loss = e.loss(SensorId(v));
                let removed = e.remove(SensorId(v));
                assert_eq!(
                    removed.to_bits(),
                    prior_loss.to_bits(),
                    "remove({v}) diverged from prior loss"
                );
            }
            assert_eq!(e.value(), 0.0);
        }
    }

    #[test]
    fn evaluator_noop_on_duplicate_ops() {
        let u = DetectionUtility::uniform(3, 0.4);
        let mut e = u.evaluator();
        assert!(e.insert(SensorId(1)) > 0.0);
        assert_eq!(e.insert(SensorId(1)), 0.0);
        assert_eq!(e.remove(SensorId(2)), 0.0);
        assert!(e.contains(SensorId(1)));
        assert!(!e.contains(SensorId(0)));
    }

    proptest! {
        /// Evaluator value/gain/loss agree with from-scratch evaluation
        /// under arbitrary insert/remove sequences.
        #[test]
        fn evaluator_matches_eval(
            probs in proptest::collection::vec(0.0f64..=1.0, 1..10),
            ops in proptest::collection::vec((any::<bool>(), 0usize..10), 0..40),
        ) {
            let n = probs.len();
            let u = DetectionUtility::new(probs);
            let mut e = u.evaluator();
            for (add, raw) in ops {
                let v = SensorId(raw % n);
                let before = e.current_set();
                if add {
                    let predicted = e.gain(v);
                    let got = e.insert(v);
                    prop_assert!((predicted - got).abs() < 1e-9);
                } else {
                    let predicted = e.loss(v);
                    let got = e.remove(v);
                    prop_assert!((predicted - got).abs() < 1e-9);
                }
                let _ = before;
                prop_assert!((e.value() - u.eval(&e.current_set())).abs() < 1e-9);
            }
        }

        /// The function is submodular and monotone (checker-based test lives
        /// in checker.rs; this is a direct spot check).
        #[test]
        fn diminishing_returns(
            p in 0.0f64..=1.0,
            k1 in 0usize..4,
            k2 in 4usize..8,
        ) {
            let u = DetectionUtility::uniform(10, p);
            let s1 = SensorSet::from_indices(10, 0..k1);
            let s2 = SensorSet::from_indices(10, 0..k2);
            let v = SensorId(9);
            prop_assert!(
                u.marginal_gain(&s1, v) + 1e-12 >= u.marginal_gain(&s2, v)
            );
        }
    }
}
