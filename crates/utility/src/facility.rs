//! Facility-location utility `U(S) = Σ_i max_{v∈S} b_{iv}`.
//!
//! A classic monotone submodular function: each target takes the benefit of
//! the *best* active sensor watching it (e.g. highest-resolution camera,
//! closest microphone). Not used in the paper's evaluation but squarely
//! inside its utility model — included as an extension instance and for
//! scheduler stress-testing with heterogeneous per-sensor quality.

use crate::traits::{Evaluator, UtilityFunction};
use cool_common::{SensorId, SensorSet};
use std::sync::Arc;

/// `U(S) = Σ_i max_{v∈S} b_{iv}` (with `max over ∅ = 0`), benefits
/// non-negative.
///
/// # Examples
///
/// ```
/// use cool_common::SensorSet;
/// use cool_utility::{FacilityLocationUtility, UtilityFunction};
///
/// // Two targets, three sensors; rows are targets.
/// let u = FacilityLocationUtility::new(vec![
///     vec![0.9, 0.4, 0.0],
///     vec![0.1, 0.8, 0.5],
/// ]);
/// let s = SensorSet::from_indices(3, [1, 2]);
/// assert!((u.eval(&s) - (0.4 + 0.8)).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FacilityLocationUtility {
    /// `benefits[i][v]`: value target `i` receives from sensor `v`. Shared
    /// with every evaluator (evaluators carry only mutable state, so
    /// spawning one per slot stays cheap at large part counts).
    benefits: Arc<Vec<Vec<f64>>>,
    universe: usize,
}

impl FacilityLocationUtility {
    /// Creates the utility from a targets × sensors benefit matrix.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged or contain negative/non-finite entries, or
    /// if the matrix is empty (universe undeterminable).
    pub fn new(benefits: Vec<Vec<f64>>) -> Self {
        assert!(!benefits.is_empty(), "need at least one target row");
        let universe = benefits[0].len();
        assert!(
            benefits.iter().all(|row| row.len() == universe),
            "benefit rows must have equal length"
        );
        assert!(
            benefits
                .iter()
                .flatten()
                .all(|b| b.is_finite() && *b >= 0.0),
            "benefits must be non-negative"
        );
        FacilityLocationUtility {
            benefits: Arc::new(benefits),
            universe,
        }
    }

    /// Number of targets (rows).
    pub fn n_targets(&self) -> usize {
        self.benefits.len()
    }

    /// The benefit matrix rows (SoA layout seam).
    pub(crate) fn benefit_rows(&self) -> &[Vec<f64>] {
        &self.benefits
    }

    /// The shared benefit matrix (SoA layout seam).
    pub(crate) fn benefit_rows_arc(&self) -> &Arc<Vec<Vec<f64>>> {
        &self.benefits
    }

    /// Concave-envelope LP items `(cap, per-sensor mass)` with
    /// `U(S) ≤ Σ_k cap_k · min(1, Σ_{v∈S} q_{k,v})`: per target,
    /// `cap = max_v b_v` and `q_v = b_v / cap` (valid because
    /// `max_{v∈S} b_v ≤ min(cap, Σ_{v∈S} b_v)` for non-negative benefits).
    pub fn lp_items(&self) -> Vec<(f64, Vec<f64>)> {
        self.benefits
            .iter()
            .filter_map(|row| {
                let cap = row.iter().copied().fold(0.0, f64::max);
                if cap <= 0.0 {
                    return None;
                }
                Some((cap, row.iter().map(|b| b / cap).collect()))
            })
            .collect()
    }
}

impl UtilityFunction for FacilityLocationUtility {
    type Evaluator = FacilityEvaluator;

    fn universe(&self) -> usize {
        self.universe
    }

    fn eval(&self, set: &SensorSet) -> f64 {
        assert_eq!(set.universe(), self.universe, "set universe mismatch");
        self.benefits
            .iter()
            .map(|row| set.iter().map(|v| row[v.index()]).fold(0.0, f64::max))
            .sum()
    }

    fn evaluator(&self) -> FacilityEvaluator {
        FacilityEvaluator {
            benefits: Arc::clone(&self.benefits),
            members: SensorSet::new(self.universe),
            best: vec![0.0; self.benefits.len()],
        }
    }

    fn support(&self) -> SensorSet {
        // A sensor matters only if some target receives a positive benefit
        // from it (an all-zero column can never raise any per-target max).
        SensorSet::from_indices(
            self.universe,
            (0..self.universe).filter(|&v| self.benefits.iter().any(|row| row[v] > 0.0)),
        )
    }
}

/// Incremental evaluator for [`FacilityLocationUtility`] — per-target
/// current best benefit. Insertion is O(m); removal recomputes the max over
/// remaining members for the targets `v` was best at, O(m·|S|) worst case.
#[derive(Clone, Debug)]
pub struct FacilityEvaluator {
    benefits: Arc<Vec<Vec<f64>>>,
    members: SensorSet,
    best: Vec<f64>,
}

impl Evaluator for FacilityEvaluator {
    fn value(&self) -> f64 {
        self.best.iter().sum()
    }

    fn gain(&self, v: SensorId) -> f64 {
        if self.members.contains(v) {
            return 0.0;
        }
        self.benefits
            .iter()
            .zip(&self.best)
            .map(|(row, &b)| (row[v.index()] - b).max(0.0))
            .sum()
    }

    fn loss(&self, v: SensorId) -> f64 {
        if !self.members.contains(v) {
            return 0.0;
        }
        let mut lost = 0.0;
        for (i, row) in self.benefits.iter().enumerate() {
            if row[v.index()] >= self.best[i] && self.best[i] > 0.0 {
                let next_best = self
                    .members
                    .iter()
                    .filter(|&u| u != v)
                    .map(|u| row[u.index()])
                    .fold(0.0, f64::max);
                lost += self.best[i] - next_best;
            }
        }
        lost
    }

    fn insert(&mut self, v: SensorId) -> f64 {
        if !self.members.insert(v) {
            return 0.0;
        }
        let mut gained = 0.0;
        for (i, row) in self.benefits.iter().enumerate() {
            let b = row[v.index()];
            if b > self.best[i] {
                gained += b - self.best[i];
                self.best[i] = b;
            }
        }
        gained
    }

    fn remove(&mut self, v: SensorId) -> f64 {
        if !self.members.contains(v) {
            return 0.0;
        }
        self.members.remove(v);
        let mut lost = 0.0;
        for (i, row) in self.benefits.iter().enumerate() {
            if row[v.index()] >= self.best[i] && self.best[i] > 0.0 {
                let next_best = self
                    .members
                    .iter()
                    .map(|u| row[u.index()])
                    .fold(0.0, f64::max);
                lost += self.best[i] - next_best;
                self.best[i] = next_best;
            }
        }
        lost
    }

    fn contains(&self, v: SensorId) -> bool {
        self.members.contains(v)
    }

    fn current_set(&self) -> SensorSet {
        self.members.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> FacilityLocationUtility {
        FacilityLocationUtility::new(vec![vec![0.9, 0.4, 0.0], vec![0.1, 0.8, 0.5]])
    }

    #[test]
    fn eval_takes_best_per_target() {
        let u = sample();
        assert_eq!(u.eval(&SensorSet::new(3)), 0.0);
        assert!((u.eval(&SensorSet::full(3)) - 1.7).abs() < 1e-12);
        assert_eq!(u.n_targets(), 2);
    }

    #[test]
    fn insertion_gain_is_improvement_only() {
        let u = sample();
        let mut e = u.evaluator();
        assert!((e.insert(SensorId(1)) - 1.2).abs() < 1e-12); // 0.4 + 0.8
        assert!((e.gain(SensorId(0)) - 0.5).abs() < 1e-12); // only target 0 improves
        assert!((e.gain(SensorId(2)) - 0.0).abs() < 1e-12); // strictly worse everywhere
    }

    #[test]
    fn removal_falls_back_to_next_best() {
        let u = sample();
        let mut e = u.evaluator();
        e.insert(SensorId(0));
        e.insert(SensorId(1));
        // Removing v0: target 0 falls back from 0.9 to 0.4.
        assert!((e.loss(SensorId(0)) - 0.5).abs() < 1e-12);
        assert!((e.remove(SensorId(0)) - 0.5).abs() < 1e-12);
        assert!((e.value() - 1.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_matrix_panics() {
        let _ = FacilityLocationUtility::new(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    proptest! {
        #[test]
        fn evaluator_matches_eval(
            rows in proptest::collection::vec(
                proptest::collection::vec(0.0f64..5.0, 4), 1..5),
            ops in proptest::collection::vec((any::<bool>(), 0usize..4), 0..25),
        ) {
            let u = FacilityLocationUtility::new(rows);
            let mut e = u.evaluator();
            for (add, raw) in ops {
                let v = SensorId(raw % 4);
                if add {
                    let predicted = e.gain(v);
                    prop_assert!((predicted - e.insert(v)).abs() < 1e-9);
                } else {
                    let predicted = e.loss(v);
                    prop_assert!((predicted - e.remove(v)).abs() < 1e-9);
                }
                prop_assert!((e.value() - u.eval(&e.current_set())).abs() < 1e-9);
            }
        }
    }
}
