//! k-coverage utility: targets want `k` *simultaneous* observers.
//!
//! Triangulation, localisation and fault-tolerant sensing applications
//! value a target by how close it is to being `k`-covered:
//!
//! ```text
//! U(S) = Σ_i w_i · min(|S ∩ V(O_i)|, k_i) / k_i
//! ```
//!
//! Each target's term is a concave function of its active-coverer count,
//! so the sum is monotone submodular and slots directly into the paper's
//! scheduling machinery. This instance is not in the paper's evaluation —
//! it is an extension exercising the framework with "hard" (piecewise
//! linear) diminishing returns instead of the detection utility's smooth
//! geometric ones.

use crate::traits::{Evaluator, UtilityFunction};
use cool_common::{SensorId, SensorSet};
use std::sync::Arc;

/// `U(S) = Σ_i w_i · min(|S ∩ V(O_i)|, k_i)/k_i`.
///
/// # Examples
///
/// ```
/// use cool_common::SensorSet;
/// use cool_utility::{KCoverageUtility, UtilityFunction};
///
/// // One target wanting 2-of-{0,1,2} coverage.
/// let u = KCoverageUtility::new(
///     vec![SensorSet::from_indices(3, [0, 1, 2])],
///     vec![2],
///     vec![1.0],
/// );
/// assert_eq!(u.eval(&SensorSet::from_indices(3, [0])), 0.5);
/// assert_eq!(u.eval(&SensorSet::from_indices(3, [0, 1])), 1.0);
/// assert_eq!(u.eval(&SensorSet::full(3)), 1.0, "third coverer is surplus");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct KCoverageUtility {
    coverages: Vec<SensorSet>,
    /// Shared with every evaluator (evaluators carry only mutable state,
    /// so spawning one per slot stays cheap at large part counts).
    k: Arc<Vec<u32>>,
    weights: Arc<Vec<f64>>,
    /// Per-sensor target lists (inverted coverage index), built once here
    /// rather than on every `evaluator()` call.
    sensor_targets: Arc<Vec<Vec<usize>>>,
    universe: usize,
}

impl KCoverageUtility {
    /// Creates the utility from per-target coverage sets `V(O_i)`,
    /// requirements `k_i ≥ 1` and weights `w_i ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if the lists are empty or of unequal length, universes
    /// disagree, any `k_i == 0`, or any weight is negative/not finite.
    pub fn new(coverages: Vec<SensorSet>, k: Vec<u32>, weights: Vec<f64>) -> Self {
        assert!(!coverages.is_empty(), "need at least one target");
        assert_eq!(coverages.len(), k.len(), "one k per target");
        assert_eq!(coverages.len(), weights.len(), "one weight per target");
        let universe = coverages[0].universe();
        assert!(
            coverages.iter().all(|c| c.universe() == universe),
            "coverage sets must share one universe"
        );
        assert!(k.iter().all(|&ki| ki >= 1), "k must be at least 1");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be non-negative"
        );
        let mut sensor_targets = vec![Vec::new(); universe];
        for (i, cov) in coverages.iter().enumerate() {
            for v in cov {
                sensor_targets[v.index()].push(i);
            }
        }
        KCoverageUtility {
            coverages,
            k: Arc::new(k),
            weights: Arc::new(weights),
            sensor_targets: Arc::new(sensor_targets),
            universe,
        }
    }

    /// Uniform variant: every target requires `k` coverers at weight 1.
    ///
    /// # Panics
    ///
    /// As [`KCoverageUtility::new`].
    pub fn uniform(coverages: Vec<SensorSet>, k: u32) -> Self {
        let m = coverages.len();
        KCoverageUtility::new(coverages, vec![k; m], vec![1.0; m])
    }

    /// Number of targets.
    pub fn n_targets(&self) -> usize {
        self.coverages.len()
    }

    /// Per-target requirements `k_i` (SoA layout seam).
    pub(crate) fn requirements(&self) -> &[u32] {
        &self.k
    }

    /// Per-target weights `w_i` (SoA layout seam).
    pub(crate) fn target_weights(&self) -> &[f64] {
        &self.weights
    }

    /// Target indices covered by sensor `v` (SoA layout seam).
    pub(crate) fn targets_of(&self, v: SensorId) -> &[usize] {
        &self.sensor_targets[v.index()]
    }

    /// Concave-envelope LP items `(cap, per-sensor mass)`: per target,
    /// `cap = w_i` and `q_v = 1/k_i` for covering sensors — **exact** for
    /// this utility, since `w·min(count, k)/k = cap·min(1, Σ q)`.
    pub fn lp_items(&self) -> Vec<(f64, Vec<f64>)> {
        self.coverages
            .iter()
            .zip(self.k.iter())
            .zip(self.weights.iter())
            .filter(|(_, &w)| w > 0.0)
            .map(|((cov, &k), &w)| {
                let mut q = vec![0.0; self.universe];
                for v in cov {
                    q[v.index()] = 1.0 / f64::from(k);
                }
                (w, q)
            })
            .collect()
    }
}

impl UtilityFunction for KCoverageUtility {
    type Evaluator = KCoverageEvaluator;

    fn universe(&self) -> usize {
        self.universe
    }

    fn eval(&self, set: &SensorSet) -> f64 {
        assert_eq!(set.universe(), self.universe, "set universe mismatch");
        self.coverages
            .iter()
            .zip(self.k.iter())
            .zip(self.weights.iter())
            .map(|((cov, &k), &w)| {
                let count = cov.intersection_len(set) as u32;
                w * f64::from(count.min(k)) / f64::from(k)
            })
            .sum()
    }

    fn target_count(&self) -> usize {
        self.coverages.len()
    }

    fn evaluator(&self) -> KCoverageEvaluator {
        KCoverageEvaluator {
            k: Arc::clone(&self.k),
            weights: Arc::clone(&self.weights),
            sensor_targets: Arc::clone(&self.sensor_targets),
            counts: vec![0; self.coverages.len()],
            members: SensorSet::new(self.universe),
            value: 0.0,
        }
    }

    fn support(&self) -> SensorSet {
        // A sensor matters only if it covers a positively-weighted target.
        SensorSet::from_indices(
            self.universe,
            self.sensor_targets
                .iter()
                .enumerate()
                .filter(|(_, targets)| targets.iter().any(|&i| self.weights[i] > 0.0))
                .map(|(v, _)| v),
        )
    }
}

/// Incremental evaluator for [`KCoverageUtility`] — per-target coverer
/// counts.
#[derive(Clone, Debug)]
pub struct KCoverageEvaluator {
    k: Arc<Vec<u32>>,
    weights: Arc<Vec<f64>>,
    sensor_targets: Arc<Vec<Vec<usize>>>,
    counts: Vec<u32>,
    members: SensorSet,
    value: f64,
}

impl Evaluator for KCoverageEvaluator {
    fn value(&self) -> f64 {
        self.value
    }

    fn gain(&self, v: SensorId) -> f64 {
        if self.members.contains(v) {
            return 0.0;
        }
        self.sensor_targets[v.index()]
            .iter()
            .filter(|&&i| self.counts[i] < self.k[i])
            .map(|&i| self.weights[i] / f64::from(self.k[i]))
            .sum()
    }

    fn loss(&self, v: SensorId) -> f64 {
        if !self.members.contains(v) {
            return 0.0;
        }
        self.sensor_targets[v.index()]
            .iter()
            .filter(|&&i| self.counts[i] <= self.k[i])
            .map(|&i| self.weights[i] / f64::from(self.k[i]))
            .sum()
    }

    fn insert(&mut self, v: SensorId) -> f64 {
        if !self.members.insert(v) {
            return 0.0;
        }
        let mut gained = 0.0;
        for &i in &self.sensor_targets[v.index()] {
            if self.counts[i] < self.k[i] {
                gained += self.weights[i] / f64::from(self.k[i]);
            }
            self.counts[i] += 1;
        }
        self.value += gained;
        gained
    }

    fn remove(&mut self, v: SensorId) -> f64 {
        if !self.members.remove(v) {
            return 0.0;
        }
        let mut lost = 0.0;
        for &i in &self.sensor_targets[v.index()] {
            self.counts[i] -= 1;
            if self.counts[i] < self.k[i] {
                lost += self.weights[i] / f64::from(self.k[i]);
            }
        }
        self.value -= lost;
        lost
    }

    fn contains(&self, v: SensorId) -> bool {
        self.members.contains(v)
    }

    fn current_set(&self) -> SensorSet {
        self.members.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_utility;
    use cool_common::SeedSequence;
    use proptest::prelude::*;

    fn two_targets() -> KCoverageUtility {
        KCoverageUtility::new(
            vec![
                SensorSet::from_indices(4, [0, 1, 2]),
                SensorSet::from_indices(4, [2, 3]),
            ],
            vec![2, 1],
            vec![1.0, 3.0],
        )
    }

    #[test]
    fn eval_counts_capped_coverage() {
        let u = two_targets();
        assert_eq!(u.eval(&SensorSet::new(4)), 0.0);
        assert_eq!(u.eval(&SensorSet::from_indices(4, [0])), 0.5);
        assert_eq!(u.eval(&SensorSet::from_indices(4, [0, 1])), 1.0);
        assert_eq!(u.eval(&SensorSet::from_indices(4, [0, 1, 2])), 4.0);
        assert_eq!(u.eval(&SensorSet::full(4)), 4.0);
        assert_eq!(u.max_value(), 4.0);
        assert_eq!(u.target_count(), 2);
    }

    #[test]
    fn surplus_coverers_add_nothing() {
        let u = KCoverageUtility::uniform(vec![SensorSet::full(5)], 2);
        let two = SensorSet::from_indices(5, [0, 1]);
        let five = SensorSet::full(5);
        assert_eq!(u.eval(&two), u.eval(&five));
    }

    #[test]
    fn axioms_hold() {
        let mut rng = SeedSequence::new(61).nth_rng(0);
        check_utility(&two_targets(), 300, &mut rng).unwrap();
        check_utility(
            &KCoverageUtility::uniform(
                vec![
                    SensorSet::from_indices(6, [0, 2, 4]),
                    SensorSet::from_indices(6, [1, 3, 5]),
                ],
                3,
            ),
            300,
            &mut rng,
        )
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let _ = KCoverageUtility::new(vec![SensorSet::new(1)], vec![0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "one k per target")]
    fn mismatched_lengths_panic() {
        let _ = KCoverageUtility::new(vec![SensorSet::new(1)], vec![], vec![1.0]);
    }

    proptest! {
        #[test]
        fn evaluator_matches_eval(
            cov1 in proptest::collection::vec(0usize..6, 1..6),
            cov2 in proptest::collection::vec(0usize..6, 1..6),
            k1 in 1u32..4, k2 in 1u32..4,
            ops in proptest::collection::vec((any::<bool>(), 0usize..6), 0..30),
        ) {
            let u = KCoverageUtility::new(
                vec![
                    SensorSet::from_indices(6, cov1.iter().copied()),
                    SensorSet::from_indices(6, cov2.iter().copied()),
                ],
                vec![k1, k2],
                vec![1.0, 2.0],
            );
            let mut e = u.evaluator();
            for (add, raw) in ops {
                let v = SensorId(raw % 6);
                if add {
                    let predicted = e.gain(v);
                    prop_assert!((predicted - e.insert(v)).abs() < 1e-9);
                } else {
                    let predicted = e.loss(v);
                    prop_assert!((predicted - e.remove(v)).abs() < 1e-9);
                }
                prop_assert!((e.value() - u.eval(&e.current_set())).abs() < 1e-9);
            }
        }
    }
}
