//! Submodular utility functions over sensor sets.
//!
//! §II-C of the paper assumes the quality of coverage service delivered by a
//! set `S` of activated sensors is a **non-decreasing submodular** function
//! `U(S)` with `U(∅) = 0`:
//!
//! ```text
//! U(S₁) ≤ U(S₂)                         for S₁ ⊆ S₂          (monotone)
//! U(S₁∪A) − U(S₁) ≥ U(S₂∪A) − U(S₂)     for S₁ ⊆ S₂          (diminishing returns)
//! ```
//!
//! This crate provides:
//!
//! * the [`UtilityFunction`] trait and its incremental [`Evaluator`]
//!   companion — exact O(1)-ish marginal gains/losses, the workhorse of the
//!   greedy scheduler ([`traits`]);
//! * the paper's concrete utilities:
//!   [`DetectionUtility`] (`U_i(S) = 1 − Π(1−p_j)`, §II-C),
//!   [`LogSumUtility`] (`log(1 + Σ I_i)`, the NP-hardness gadget of §III),
//!   [`CoverageUtility`] (Eq. 2 weighted-area region monitoring),
//!   [`LinearUtility`] (the modular special case, where LP rounding is
//!   exact), and [`FacilityLocationUtility`] (a further classic submodular
//!   instance);
//! * [`SumUtility`] / [`AnyUtility`] — the multi-target composite
//!   `Σᵢ U_i(S ∩ V(O_i))` ([`composite`]), evaluated sparsely: a CSR
//!   incidence index over the parts' [support
//!   sets](UtilityFunction::support) makes each marginal-gain query
//!   O(deg(v)) instead of O(m), and the struct-of-arrays engine in [`soa`]
//!   answers it with family-batched kernels over contiguous scalar state
//!   ([`SparseSumEvaluator`]). The per-part enum walk
//!   ([`PartWalkSumEvaluator`]) and the dense [`SumEvaluator`] are kept as
//!   bitwise differential oracles, with query counters in [`stats`];
//! * a numerical submodularity/monotonicity checker used by the property
//!   tests ([`checker`]).
//!
//! # Examples
//!
//! ```
//! use cool_common::{SensorId, SensorSet};
//! use cool_utility::{DetectionUtility, Evaluator, UtilityFunction};
//!
//! // Three sensors watch a target, each detecting with probability 0.4.
//! let u = DetectionUtility::uniform(3, 0.4);
//! let two = SensorSet::from_indices(3, [0, 1]);
//! assert!((u.eval(&two) - (1.0 - 0.6 * 0.6)).abs() < 1e-12);
//!
//! // Incremental evaluator: marginal gain of the third sensor.
//! let mut eval = u.evaluator();
//! eval.insert(cool_common::SensorId(0));
//! eval.insert(cool_common::SensorId(1));
//! assert!((eval.gain(cool_common::SensorId(2)) - 0.36 * 0.4).abs() < 1e-12);
//! ```

pub mod checker;
pub mod composite;
pub mod coverage;
pub mod detection;
pub mod facility;
pub mod kcover;
pub mod linear;
pub mod logsum;
pub mod soa;
pub mod stats;
pub mod traits;

pub use checker::{check_utility, UtilityViolation};
pub use composite::{
    AnyEvaluator, AnyUtility, DenseSumUtility, IncidenceIndex, PartWalkSumEvaluator,
    PartWalkSumUtility, SumEvaluator, SumUtility,
};
pub use coverage::{CoverageEvaluator, CoverageUtility};
pub use detection::{DetectionEvaluator, DetectionUtility};
pub use facility::{FacilityEvaluator, FacilityLocationUtility};
pub use kcover::{KCoverageEvaluator, KCoverageUtility};
pub use linear::{LinearEvaluator, LinearUtility};
pub use logsum::{LogSumEvaluator, LogSumUtility};
pub use soa::{Family, SparseSumEvaluator};
pub use traits::{Evaluator, UtilityFunction};
