//! The linear (modular) utility `U(S) = Σ_{v∈S} w_v`.
//!
//! The degenerate boundary of the submodular family: marginal gains are
//! constant, so LP relaxation + rounding is exact and the greedy is optimal
//! per slot. Used as a baseline and to validate the LP pipeline.

use crate::traits::{Evaluator, UtilityFunction};
use cool_common::{SensorId, SensorSet};
use std::sync::Arc;

/// `U(S) = Σ_{v∈S} w_v` with non-negative weights.
///
/// # Examples
///
/// ```
/// use cool_common::SensorSet;
/// use cool_utility::{LinearUtility, UtilityFunction};
///
/// let u = LinearUtility::new(vec![1.0, 2.0, 4.0]);
/// assert_eq!(u.eval(&SensorSet::from_indices(3, [0, 2])), 5.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LinearUtility {
    /// Shared with every evaluator (evaluators carry only mutable state,
    /// so spawning one per slot stays cheap at large part counts).
    weights: Arc<Vec<f64>>,
}

impl LinearUtility {
    /// Creates the utility from per-sensor weights.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or not finite.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "linear weights must be non-negative"
        );
        LinearUtility {
            weights: Arc::new(weights),
        }
    }

    /// Per-sensor weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl UtilityFunction for LinearUtility {
    type Evaluator = LinearEvaluator;

    fn universe(&self) -> usize {
        self.weights.len()
    }

    fn eval(&self, set: &SensorSet) -> f64 {
        assert_eq!(set.universe(), self.universe(), "set universe mismatch");
        set.iter().map(|v| self.weights[v.index()]).sum()
    }

    fn evaluator(&self) -> LinearEvaluator {
        LinearEvaluator {
            weights: Arc::clone(&self.weights),
            members: SensorSet::new(self.weights.len()),
            sum: 0.0,
        }
    }

    fn support(&self) -> SensorSet {
        SensorSet::from_indices(
            self.weights.len(),
            self.weights
                .iter()
                .enumerate()
                .filter(|(_, &w)| w > 0.0)
                .map(|(i, _)| i),
        )
    }
}

/// Incremental evaluator for [`LinearUtility`].
#[derive(Clone, Debug)]
pub struct LinearEvaluator {
    weights: Arc<Vec<f64>>,
    members: SensorSet,
    sum: f64,
}

impl Evaluator for LinearEvaluator {
    fn value(&self) -> f64 {
        self.sum
    }

    fn gain(&self, v: SensorId) -> f64 {
        if self.members.contains(v) {
            0.0
        } else {
            self.weights[v.index()]
        }
    }

    fn loss(&self, v: SensorId) -> f64 {
        if self.members.contains(v) {
            self.weights[v.index()]
        } else {
            0.0
        }
    }

    fn insert(&mut self, v: SensorId) -> f64 {
        if !self.members.insert(v) {
            return 0.0;
        }
        self.sum += self.weights[v.index()];
        self.weights[v.index()]
    }

    fn remove(&mut self, v: SensorId) -> f64 {
        if !self.members.remove(v) {
            return 0.0;
        }
        self.sum -= self.weights[v.index()];
        self.weights[v.index()]
    }

    fn contains(&self, v: SensorId) -> bool {
        self.members.contains(v)
    }

    fn current_set(&self) -> SensorSet {
        self.members.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eval_sums_member_weights() {
        let u = LinearUtility::new(vec![1.0, 10.0, 100.0]);
        assert_eq!(u.eval(&SensorSet::new(3)), 0.0);
        assert_eq!(u.eval(&SensorSet::full(3)), 111.0);
        assert_eq!(u.max_value(), 111.0);
    }

    #[test]
    fn marginal_gain_is_constant_in_set() {
        let u = LinearUtility::new(vec![1.0, 10.0, 100.0]);
        let empty = SensorSet::new(3);
        let some = SensorSet::from_indices(3, [0]);
        assert_eq!(u.marginal_gain(&empty, SensorId(2)), 100.0);
        assert_eq!(u.marginal_gain(&some, SensorId(2)), 100.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn nan_weight_panics() {
        let _ = LinearUtility::new(vec![f64::NAN]);
    }

    proptest! {
        #[test]
        fn evaluator_matches_eval(
            weights in proptest::collection::vec(0.0f64..100.0, 1..8),
            ops in proptest::collection::vec((any::<bool>(), 0usize..8), 0..30),
        ) {
            let n = weights.len();
            let u = LinearUtility::new(weights);
            let mut e = u.evaluator();
            for (add, raw) in ops {
                let v = SensorId(raw % n);
                if add { e.insert(v); } else { e.remove(v); }
                prop_assert!((e.value() - u.eval(&e.current_set())).abs() < 1e-9);
            }
        }
    }
}
