//! The log-sum utility `U(S) = log(1 + Σ_{v∈S} w_v)`.
//!
//! §III uses exactly this function to reduce Subset-Sum to the scheduling
//! problem: with `T = 2` slots, the total two-slot utility
//! `log(1+Σ_A w) + log(1+Σ_{A^c} w)` is maximised when the weights split in
//! half — deciding the split decides Subset-Sum. It is also a natural
//! "information value" model with hard diminishing returns.

use crate::traits::{Evaluator, UtilityFunction};
use cool_common::{SensorId, SensorSet};
use std::sync::Arc;

/// `U(S) = ln(1 + Σ_{v∈S} w_v)` with non-negative weights.
///
/// # Examples
///
/// ```
/// use cool_common::SensorSet;
/// use cool_utility::{LogSumUtility, UtilityFunction};
///
/// let u = LogSumUtility::new(vec![1.0, 2.0, 4.0]);
/// let s = SensorSet::from_indices(3, [0, 2]);
/// assert!((u.eval(&s) - (1.0f64 + 5.0).ln()).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LogSumUtility {
    /// Shared with every evaluator (evaluators carry only mutable state,
    /// so spawning one per slot stays cheap at large part counts).
    weights: Arc<Vec<f64>>,
}

impl LogSumUtility {
    /// Creates the utility from per-sensor weights.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or not finite.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "log-sum weights must be non-negative"
        );
        LogSumUtility {
            weights: Arc::new(weights),
        }
    }

    /// Creates the §III hardness gadget from Subset-Sum integers.
    pub fn from_integers(integers: &[u64]) -> Self {
        LogSumUtility::new(integers.iter().map(|&x| x as f64).collect())
    }

    /// Per-sensor weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Sum of all weights.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }
}

impl UtilityFunction for LogSumUtility {
    type Evaluator = LogSumEvaluator;

    fn universe(&self) -> usize {
        self.weights.len()
    }

    fn eval(&self, set: &SensorSet) -> f64 {
        assert_eq!(set.universe(), self.universe(), "set universe mismatch");
        let sum: f64 = set.iter().map(|v| self.weights[v.index()]).sum();
        (1.0 + sum).ln()
    }

    fn evaluator(&self) -> LogSumEvaluator {
        LogSumEvaluator {
            weights: Arc::clone(&self.weights),
            members: SensorSet::new(self.weights.len()),
            sum: 0.0,
        }
    }

    fn support(&self) -> SensorSet {
        SensorSet::from_indices(
            self.weights.len(),
            self.weights
                .iter()
                .enumerate()
                .filter(|(_, &w)| w > 0.0)
                .map(|(i, _)| i),
        )
    }
}

/// Incremental evaluator for [`LogSumUtility`] — tracks the running weight
/// sum.
#[derive(Clone, Debug)]
pub struct LogSumEvaluator {
    weights: Arc<Vec<f64>>,
    members: SensorSet,
    sum: f64,
}

impl Evaluator for LogSumEvaluator {
    fn value(&self) -> f64 {
        (1.0 + self.sum).ln()
    }

    fn gain(&self, v: SensorId) -> f64 {
        if self.members.contains(v) {
            return 0.0;
        }
        (1.0 + self.sum + self.weights[v.index()]).ln() - self.value()
    }

    fn loss(&self, v: SensorId) -> f64 {
        if !self.members.contains(v) {
            return 0.0;
        }
        self.value() - (1.0 + self.sum - self.weights[v.index()]).max(1.0).ln()
    }

    fn insert(&mut self, v: SensorId) -> f64 {
        if !self.members.insert(v) {
            return 0.0;
        }
        let before = self.value();
        self.sum += self.weights[v.index()];
        self.value() - before
    }

    fn remove(&mut self, v: SensorId) -> f64 {
        if !self.members.remove(v) {
            return 0.0;
        }
        let before = self.value();
        self.sum = (self.sum - self.weights[v.index()]).max(0.0);
        before - self.value()
    }

    fn contains(&self, v: SensorId) -> bool {
        self.members.contains(v)
    }

    fn current_set(&self) -> SensorSet {
        self.members.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_is_zero() {
        let u = LogSumUtility::new(vec![3.0, 5.0]);
        assert_eq!(u.eval(&SensorSet::new(2)), 0.0);
    }

    #[test]
    fn from_integers_matches() {
        let u = LogSumUtility::from_integers(&[1, 2, 3]);
        assert_eq!(u.total_weight(), 6.0);
        assert!((u.eval(&SensorSet::full(3)) - 7.0f64.ln()).abs() < 1e-12);
    }

    /// The §III reduction property: a balanced split of the weights across
    /// two slots maximises the two-slot utility.
    #[test]
    fn balanced_split_maximizes_two_slot_utility() {
        // Weights 3,1,2,2: total 8, balanced split 4/4 exists.
        let u = LogSumUtility::from_integers(&[3, 1, 2, 2]);
        let total = u.total_weight();
        let balanced_value = 2.0 * (1.0 + total / 2.0).ln();

        let mut best = f64::NEG_INFINITY;
        for mask in 0u32..16 {
            let a = SensorSet::from_indices(4, (0..4).filter(|i| mask >> i & 1 == 1));
            let b = SensorSet::from_indices(4, (0..4).filter(|i| mask >> i & 1 == 0));
            best = best.max(u.eval(&a) + u.eval(&b));
        }
        assert!(
            (best - balanced_value).abs() < 1e-12,
            "optimum {best} equals balanced bound {balanced_value}"
        );
    }

    /// With weights that cannot split evenly, the optimum stays strictly
    /// below the balanced bound — the other direction of the reduction.
    #[test]
    fn unbalanced_instance_stays_below_bound() {
        let u = LogSumUtility::from_integers(&[1, 1, 5]);
        let total = u.total_weight();
        let balanced_value = 2.0 * (1.0 + total / 2.0).ln();
        let mut best = f64::NEG_INFINITY;
        for mask in 0u32..8 {
            let a = SensorSet::from_indices(3, (0..3).filter(|i| mask >> i & 1 == 1));
            let b = SensorSet::from_indices(3, (0..3).filter(|i| mask >> i & 1 == 0));
            best = best.max(u.eval(&a) + u.eval(&b));
        }
        assert!(best < balanced_value - 1e-9, "{best} < {balanced_value}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        let _ = LogSumUtility::new(vec![-1.0]);
    }

    proptest! {
        #[test]
        fn evaluator_matches_eval(
            weights in proptest::collection::vec(0.0f64..100.0, 1..8),
            ops in proptest::collection::vec((any::<bool>(), 0usize..8), 0..30),
        ) {
            let n = weights.len();
            let u = LogSumUtility::new(weights);
            let mut e = u.evaluator();
            for (add, raw) in ops {
                let v = SensorId(raw % n);
                if add {
                    let predicted = e.gain(v);
                    prop_assert!((predicted - e.insert(v)).abs() < 1e-9);
                } else {
                    let predicted = e.loss(v);
                    prop_assert!((predicted - e.remove(v)).abs() < 1e-9);
                }
                prop_assert!((e.value() - u.eval(&e.current_set())).abs() < 1e-9);
            }
        }
    }
}
