//! Struct-of-arrays engine behind [`SparseSumEvaluator`]: family-batched
//! marginal-gain kernels over contiguous scalar state.
//!
//! The part-walk evaluator
//! ([`PartWalkSumEvaluator`](crate::PartWalkSumEvaluator)) answers each
//! query by dispatching into a `Vec<AnyEvaluator>` one part at a time:
//! every visit is an enum `match`, an `Arc` deref, and a pointer chase
//! into that part's own heap allocations. At large part counts the memory
//! layout — not the O(deg) algorithm — dominates the query cost.
//!
//! [`SoaLayout`] regroups the same parts **by family** at construction:
//!
//! * a stable permutation `part id → (family, family slot)` keeps part
//!   identities (`eval_parts`, `support()`, COOL-E024 traces and check
//!   output are unchanged);
//! * each family's immutable per-part scalars live in flat arrays with
//!   CSR-style per-part offsets (detection probabilities, linear/log-sum
//!   weights, coverage subregion values, k-cover `k` and `w/k`, facility
//!   benefit rows);
//! * per-sensor incidence is pre-resolved into **family runs**: the
//!   incident parts of a sensor, in increasing part-id order, split into
//!   maximal runs of consecutive same-family parts. A query loops over the
//!   runs and does **one `match` per run** (one per family in the common
//!   grouped case) instead of one per part, streaming through contiguous
//!   entry slices the autovectorizer can chew on;
//! * all mutable scalar state (miss products, weight sums, cover counts,
//!   facility bests, …) lives in one arena — a single `Vec<f64>` plus a
//!   single `Vec<u32>` — allocated once per evaluator and reused across
//!   every `gain`/`loss`/`insert`/`remove`, so hot-path queries are
//!   allocation-free and a reset never reallocates.
//!
//! # Bitwise equality with the oracles
//!
//! The kernels replicate the exact floating-point expressions, operand
//! order and accumulator seeds of the per-part evaluators, and runs are
//! visited in the original increasing part-id order, so every `gain`,
//! `loss`, `insert` and `remove` is **bit-for-bit** equal to both the
//! part-walk evaluator and the dense [`SumEvaluator`](crate::SumEvaluator)
//! oracle (the COOL-E024 relation in `cool check`). Per-part subtotals are
//! folded into the +0.0-seeded composite chain exactly as before, and the
//! running value keeps the same Kahan-compensated accumulation and rebuild
//! cadence.

use crate::composite::{AnyUtility, IncidenceIndex};
use crate::stats;
use crate::traits::{Evaluator, UtilityFunction};
use cool_common::{invariant, SensorId, SensorSet};
use std::sync::Arc;

/// The six part families of [`AnyUtility`], in variant order.
///
/// The discriminant doubles as the bit index of the per-family query
/// counters in [`stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Family {
    /// Detection probability `1 − Π(1−p)`.
    Detection = 0,
    /// Log-sum `ln(1 + Σw)`.
    LogSum = 1,
    /// Modular `Σw`.
    Linear = 2,
    /// Weighted-area coverage.
    Coverage = 3,
    /// Facility location `Σ max`.
    Facility = 4,
    /// k-coverage `Σ w·min(count, k)/k`.
    KCover = 5,
}

impl Family {
    /// Classifies a part.
    pub fn of(part: &AnyUtility) -> Family {
        match part {
            AnyUtility::Detection(_) => Family::Detection,
            AnyUtility::LogSum(_) => Family::LogSum,
            AnyUtility::Linear(_) => Family::Linear,
            AnyUtility::Coverage(_) => Family::Coverage,
            AnyUtility::Facility(_) => Family::Facility,
            AnyUtility::KCover(_) => Family::KCover,
        }
    }

    /// Prometheus label of the family (shared with `cool-serve`).
    pub fn label(self) -> &'static str {
        stats::FAMILY_LABELS[self as usize]
    }
}

/// A section of the scratch arena: `off..off + len` into the `f64` or
/// `u32` backing vector.
#[derive(Clone, Copy, Debug, Default)]
struct Sect {
    off: usize,
    len: usize,
}

impl Sect {
    fn of<T>(self, backing: &[T]) -> &[T] {
        &backing[self.off..self.off + self.len]
    }

    fn of_mut<T>(self, backing: &mut [T]) -> &mut [T] {
        &mut backing[self.off..self.off + self.len]
    }
}

/// One maximal run of consecutive same-family incident parts of a sensor;
/// `start..start + len` indexes that family's entry array.
#[derive(Clone, Copy, Debug)]
struct Run {
    family: Family,
    start: u32,
    len: u32,
}

/// A scalar incidence entry: the part's family slot plus the per-sensor
/// scalar (detection probability or linear/log-sum weight).
#[derive(Clone, Copy, Debug)]
struct ScalarEntry {
    slot: u32,
    x: f64,
}

/// A list incidence entry: the part's family slot plus `start..start+len`
/// into the family's flat per-sensor id list.
#[derive(Clone, Copy, Debug)]
struct ListEntry {
    slot: u32,
    start: u32,
    len: u32,
}

/// A facility incidence item: the global benefit-row id and the queried
/// sensor's (positive) benefit in that row.
#[derive(Clone, Copy, Debug)]
struct FacInc {
    row: u32,
    benefit: f64,
}

/// Per-part facility data kept for the loss/removal member scans (the only
/// kernel that must look beyond the incident slices).
#[derive(Clone, Debug)]
struct FacPart {
    benefits: Arc<Vec<Vec<f64>>>,
    support: SensorSet,
}

/// The immutable struct-of-arrays layout of a
/// [`SumUtility`](crate::SumUtility)'s parts, shared (via `Arc`) by every
/// [`SparseSumEvaluator`] spawned from it.
#[derive(Clone, Debug)]
pub(crate) struct SoaLayout {
    n_parts: usize,
    /// Stable permutation: part id → (family, family slot). Family slots
    /// are assigned in increasing part-id order, so the grouping is a
    /// stable sort by family.
    part_map: Vec<(Family, u32)>,

    /// `run_off[v]..run_off[v+1]` brackets sensor `v`'s runs.
    run_off: Vec<u32>,
    runs: Vec<Run>,

    /// Family incidence entries, sensor-major (a run's entries are
    /// contiguous).
    det: Vec<ScalarEntry>,
    log: Vec<ScalarEntry>,
    lin: Vec<ScalarEntry>,
    cov: Vec<ListEntry>,
    /// Global subregion ids covered by (sensor, coverage-part) pairs.
    cov_inc: Vec<u32>,
    kc: Vec<ListEntry>,
    /// Global target ids covered by (sensor, k-cover-part) pairs.
    kc_inc: Vec<u32>,
    fac: Vec<ListEntry>,
    /// Positive-benefit rows of (sensor, facility-part) pairs.
    fac_inc: Vec<FacInc>,

    /// Flat weighted subregion areas, concatenated in part order (global
    /// subregion ids index directly into it).
    cov_values: Vec<f64>,
    /// Flat per-target `k` and precomputed `w/k` (the same division the
    /// part-walk evaluator performs per query, hoisted to construction).
    kc_k: Vec<u32>,
    kc_wk: Vec<f64>,
    /// Per-part facility data plus global benefit-row offsets.
    fac_parts: Vec<FacPart>,
    fac_part_off: Vec<u32>,

    /// Arena sections into the `f64` scratch vector.
    f_len: usize,
    det_miss: Sect,
    log_sum: Sect,
    lin_sum: Sect,
    cov_value: Sect,
    kc_value: Sect,
    fac_best: Sect,
    /// Arena sections into the `u32` scratch vector.
    u_len: usize,
    det_cert: Sect,
    cov_counts: Sect,
    kc_counts: Sect,
}

impl SoaLayout {
    /// Groups `parts` by family and pre-resolves the per-sensor family
    /// runs from the incidence index.
    ///
    /// # Panics
    ///
    /// Panics if any entry count overflows `u32` (the incidence index
    /// already guarantees the part count fits).
    #[allow(clippy::too_many_lines)] // two linear passes: group parts by family, then lay out per-sensor runs
    pub(crate) fn build(
        universe: usize,
        parts: &[AnyUtility],
        index: &IncidenceIndex,
    ) -> SoaLayout {
        // Pass 1: the stable family permutation plus per-family immutable
        // part data.
        let mut part_map = Vec::with_capacity(parts.len());
        let (mut n_det, mut n_log, mut n_lin) = (0u32, 0u32, 0u32);
        let mut cov_values = Vec::new();
        let mut cov_part_off = vec![0u32];
        let mut kc_k = Vec::new();
        let mut kc_wk = Vec::new();
        let mut kc_part_off = vec![0u32];
        let mut fac_parts: Vec<FacPart> = Vec::new();
        let mut fac_part_off = vec![0u32];
        for part in parts {
            match part {
                AnyUtility::Detection(_) => {
                    part_map.push((Family::Detection, n_det));
                    n_det += 1;
                }
                AnyUtility::LogSum(_) => {
                    part_map.push((Family::LogSum, n_log));
                    n_log += 1;
                }
                AnyUtility::Linear(_) => {
                    part_map.push((Family::Linear, n_lin));
                    n_lin += 1;
                }
                AnyUtility::Coverage(c) => {
                    part_map.push((Family::Coverage, cov_part_off.len() as u32 - 1));
                    cov_values.extend_from_slice(c.subregion_values());
                    cov_part_off.push(as_u32(cov_values.len()));
                }
                AnyUtility::Facility(f) => {
                    part_map.push((Family::Facility, fac_part_off.len() as u32 - 1));
                    let rows = as_u32(f.benefit_rows().len());
                    fac_part_off.push(fac_part_off.last().copied().unwrap_or(0) + rows);
                    fac_parts.push(FacPart {
                        benefits: Arc::clone(f.benefit_rows_arc()),
                        support: f.support(),
                    });
                }
                AnyUtility::KCover(k) => {
                    part_map.push((Family::KCover, kc_part_off.len() as u32 - 1));
                    kc_k.extend_from_slice(k.requirements());
                    kc_wk.extend(
                        k.target_weights()
                            .iter()
                            .zip(k.requirements())
                            .map(|(&w, &ki)| w / f64::from(ki)),
                    );
                    kc_part_off.push(as_u32(kc_k.len()));
                }
            }
        }

        // Pass 2: per-sensor family runs and the per-family incidence
        // entries, sensor-major so a run's entries stream contiguously.
        let mut run_off = Vec::with_capacity(universe + 1);
        run_off.push(0u32);
        let mut runs = Vec::new();
        let mut det = Vec::new();
        let mut log = Vec::new();
        let mut lin = Vec::new();
        let mut cov = Vec::new();
        let mut cov_inc = Vec::new();
        let mut kc = Vec::new();
        let mut kc_inc = Vec::new();
        let mut fac = Vec::new();
        let mut fac_inc = Vec::new();
        for raw in 0..universe {
            let mut last: Option<Family> = None;
            for &pid in index.incident(SensorId(raw)) {
                let (family, slot) = part_map[pid as usize];
                if last != Some(family) {
                    let start = match family {
                        Family::Detection => det.len(),
                        Family::LogSum => log.len(),
                        Family::Linear => lin.len(),
                        Family::Coverage => cov.len(),
                        Family::Facility => fac.len(),
                        Family::KCover => kc.len(),
                    };
                    runs.push(Run {
                        family,
                        start: as_u32(start),
                        len: 0,
                    });
                    last = Some(family);
                }
                if let Some(run) = runs.last_mut() {
                    run.len += 1;
                }
                match &parts[pid as usize] {
                    AnyUtility::Detection(d) => det.push(ScalarEntry {
                        slot,
                        x: d.probs()[raw],
                    }),
                    AnyUtility::LogSum(u) => log.push(ScalarEntry {
                        slot,
                        x: u.weights()[raw],
                    }),
                    AnyUtility::Linear(u) => lin.push(ScalarEntry {
                        slot,
                        x: u.weights()[raw],
                    }),
                    AnyUtility::Coverage(c) => {
                        let base = cov_part_off[slot as usize];
                        let start = as_u32(cov_inc.len());
                        cov_inc.extend(
                            c.subregions_of(SensorId(raw))
                                .iter()
                                .map(|&s| base + as_u32(s)),
                        );
                        cov.push(ListEntry {
                            slot,
                            start,
                            len: as_u32(cov_inc.len()) - start,
                        });
                    }
                    AnyUtility::Facility(f) => {
                        let base = fac_part_off[slot as usize];
                        let start = as_u32(fac_inc.len());
                        for (i, row) in f.benefit_rows().iter().enumerate() {
                            let benefit = row[raw];
                            if benefit > 0.0 {
                                fac_inc.push(FacInc {
                                    row: base + as_u32(i),
                                    benefit,
                                });
                            }
                        }
                        fac.push(ListEntry {
                            slot,
                            start,
                            len: as_u32(fac_inc.len()) - start,
                        });
                    }
                    AnyUtility::KCover(k) => {
                        let base = kc_part_off[slot as usize];
                        let start = as_u32(kc_inc.len());
                        kc_inc.extend(
                            k.targets_of(SensorId(raw))
                                .iter()
                                .map(|&i| base + as_u32(i)),
                        );
                        kc.push(ListEntry {
                            slot,
                            start,
                            len: as_u32(kc_inc.len()) - start,
                        });
                    }
                }
            }
            run_off.push(as_u32(runs.len()));
        }
        invariant!(
            det.len() + log.len() + lin.len() + cov.len() + fac.len() + kc.len()
                == index.n_entries(),
            "family runs must cover every incidence entry exactly once"
        );

        // The arena: one f64 section and one u32 section per family state.
        let mut f_len = 0usize;
        let mut fsect = |len: usize| {
            let s = Sect { off: f_len, len };
            f_len += len;
            s
        };
        let det_miss = fsect(n_det as usize);
        let log_sum = fsect(n_log as usize);
        let lin_sum = fsect(n_lin as usize);
        let cov_value = fsect(cov_part_off.len() - 1);
        let kc_value = fsect(kc_part_off.len() - 1);
        let fac_best = fsect(fac_part_off.last().copied().unwrap_or(0) as usize);
        let mut u_len = 0usize;
        let mut usect = |len: usize| {
            let s = Sect { off: u_len, len };
            u_len += len;
            s
        };
        let det_cert = usect(n_det as usize);
        let cov_counts = usect(cov_values.len());
        let kc_counts = usect(kc_k.len());

        SoaLayout {
            n_parts: parts.len(),
            part_map,
            run_off,
            runs,
            det,
            log,
            lin,
            cov,
            cov_inc,
            kc,
            kc_inc,
            fac,
            fac_inc,
            cov_values,
            kc_k,
            kc_wk,
            fac_parts,
            fac_part_off,
            f_len,
            det_miss,
            log_sum,
            lin_sum,
            cov_value,
            kc_value,
            fac_best,
            u_len,
            det_cert,
            cov_counts,
            kc_counts,
        }
    }

    /// The stable part-id permutation: part id → (family, family slot).
    #[cfg(test)]
    pub(crate) fn family_of(&self, pid: usize) -> (Family, u32) {
        self.part_map[pid]
    }

    fn runs_for(&self, v: SensorId) -> &[Run] {
        &self.runs[self.run_off[v.index()] as usize..self.run_off[v.index() + 1] as usize]
    }

    /// A freshly initialised scratch arena (detection miss products start
    /// at 1.0, everything else at zero).
    fn fresh_arena(&self) -> Arena {
        let mut arena = Arena {
            f: vec![0.0; self.f_len],
            u: vec![0; self.u_len],
        };
        self.det_miss.of_mut(&mut arena.f).fill(1.0);
        arena
    }

    /// Re-initialises an existing arena without reallocating.
    fn reset_arena(&self, arena: &mut Arena) {
        arena.f.fill(0.0);
        self.det_miss.of_mut(&mut arena.f).fill(1.0);
        arena.u.fill(0);
    }

    /// The current value of part `pid` — bitwise the per-part evaluator's
    /// `value()`.
    fn part_value(&self, pid: usize, arena: &Arena) -> f64 {
        let (family, slot) = self.part_map[pid];
        let s = slot as usize;
        match family {
            Family::Detection => {
                let eff = if self.det_cert.of(&arena.u)[s] > 0 {
                    0.0
                } else {
                    self.det_miss.of(&arena.f)[s]
                };
                1.0 - eff
            }
            Family::LogSum => (1.0 + self.log_sum.of(&arena.f)[s]).ln(),
            Family::Linear => self.lin_sum.of(&arena.f)[s],
            Family::Coverage => self.cov_value.of(&arena.f)[s],
            Family::KCover => self.kc_value.of(&arena.f)[s],
            Family::Facility => {
                let best = self.fac_best.of(&arena.f);
                best[self.fac_part_off[s] as usize..self.fac_part_off[s + 1] as usize]
                    .iter()
                    .sum()
            }
        }
    }
}

#[allow(clippy::expect_used)] // entry counts are bounded by the incidence index, already u32-sized
fn as_u32(x: usize) -> u32 {
    u32::try_from(x).expect("SoA layout size fits in u32")
}

/// The scratch buffer of one evaluator: every family's mutable scalar
/// state, packed into one `f64` and one `u32` vector. Allocated once and
/// reused across all queries and mutations.
#[derive(Clone, Debug)]
struct Arena {
    f: Vec<f64>,
    u: Vec<u32>,
}

/// Sparse evaluator companion of [`SumUtility`](crate::SumUtility):
/// O(deg(v)) marginal-gain queries answered by family-batched kernels over
/// the struct-of-arrays layout, plus an O(1) running
/// [`value`](Evaluator::value).
///
/// Queries walk the sensor's pre-resolved family runs — one `match` per
/// run instead of one per part — and stream through contiguous entry
/// slices; all mutable state lives in a per-evaluator arena, so the hot
/// path never allocates. Results are bit-for-bit equal to the part-walk
/// evaluator ([`PartWalkSumEvaluator`](crate::PartWalkSumEvaluator)) and
/// the dense [`SumEvaluator`](crate::SumEvaluator) oracle.
///
/// The running value uses Kahan-compensated summation of insert/remove
/// deltas and is rebuilt from the per-part state every
/// [`REBUILD_CADENCE`](SparseSumEvaluator::REBUILD_CADENCE) mutations, so
/// it tracks the dense from-scratch value to well under the pinned `1e-9`
/// differential tolerance (and exactly on integer-weight families, where
/// every delta is exact).
#[derive(Clone, Debug)]
pub struct SparseSumEvaluator {
    layout: Arc<SoaLayout>,
    index: Arc<IncidenceIndex>,
    members: SensorSet,
    arena: Arena,
    /// Kahan-compensated running sum of realised deltas.
    value: f64,
    /// Kahan compensation term.
    comp: f64,
    /// Mutations since the last full rebuild.
    mutations: u32,
    /// Mutations between rebuilds for *this* evaluator; defaults to
    /// [`REBUILD_CADENCE`](SparseSumEvaluator::REBUILD_CADENCE).
    cadence: u32,
}

impl SparseSumEvaluator {
    /// Default mutations between full accumulator rebuilds — bounds
    /// worst-case drift at roughly `CADENCE · ulp(value)` between rebuilds.
    /// Long-lived evaluators (e.g. `cool-session` state that survives many
    /// patches) should lower it with
    /// [`set_rebuild_cadence`](SparseSumEvaluator::set_rebuild_cadence).
    pub const REBUILD_CADENCE: u32 = 4096;

    pub(crate) fn new(
        layout: Arc<SoaLayout>,
        index: Arc<IncidenceIndex>,
        universe: usize,
    ) -> SparseSumEvaluator {
        let arena = layout.fresh_arena();
        SparseSumEvaluator {
            layout,
            index,
            members: SensorSet::new(universe),
            arena,
            value: 0.0,
            comp: 0.0,
            mutations: 0,
            cadence: SparseSumEvaluator::REBUILD_CADENCE,
        }
    }

    /// The current rebuild cadence.
    #[must_use]
    pub fn rebuild_cadence(&self) -> u32 {
        self.cadence
    }

    /// Sets the rebuild cadence (clamped to at least 1). Gain/loss queries
    /// and insert/remove deltas are computed from the per-part state, so
    /// they are bitwise independent of the cadence; only the drift bound of
    /// the O(1) running [`value`](Evaluator::value) changes. Takes effect
    /// from the next mutation.
    pub fn set_rebuild_cadence(&mut self, cadence: u32) {
        self.cadence = cadence.max(1);
    }

    /// Builder form of [`set_rebuild_cadence`](SparseSumEvaluator::set_rebuild_cadence).
    #[must_use]
    pub fn with_rebuild_cadence(mut self, cadence: u32) -> Self {
        self.set_rebuild_cadence(cadence);
        self
    }

    /// Per-part values of the current set — the per-target breakdown, in
    /// part-id order.
    pub fn part_values(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.layout.n_parts);
        self.part_values_into(&mut out);
        out
    }

    /// Writes the per-part breakdown into `out` (cleared first), reusing
    /// its capacity — the allocation-free form for batch paths that read
    /// the breakdown repeatedly.
    pub fn part_values_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.layout.n_parts).map(|pid| self.layout.part_value(pid, &self.arena)));
    }

    /// Returns the evaluator to `S = ∅` without reallocating: the arena,
    /// the member set and the running value are cleared in place. The
    /// rebuild cadence is preserved.
    pub fn reset(&mut self) {
        self.members.clear();
        self.layout.reset_arena(&mut self.arena);
        self.value = 0.0;
        self.comp = 0.0;
        self.mutations = 0;
    }

    fn kahan_add(&mut self, x: f64) {
        let t = self.value + x;
        if self.value.abs() >= x.abs() {
            self.comp += (self.value - t) + x;
        } else {
            self.comp += (x - t) + self.value;
        }
        self.value = t;
    }

    fn after_mutation(&mut self) {
        self.mutations += 1;
        if self.mutations >= self.cadence {
            self.rebuild();
        }
    }

    /// Recomputes the running value from the per-part state (same part
    /// order as the dense walk), discarding accumulated drift.
    fn rebuild(&mut self) {
        self.value = (0..self.layout.n_parts)
            .map(|pid| self.layout.part_value(pid, &self.arena))
            .sum();
        self.comp = 0.0;
        self.mutations = 0;
    }
}

impl Evaluator for SparseSumEvaluator {
    fn value(&self) -> f64 {
        self.value + self.comp
    }

    fn gain(&self, v: SensorId) -> f64 {
        if self.members.contains(v) {
            return 0.0;
        }
        let l = &*self.layout;
        stats::record_query(self.index.degree(v));
        let mut families = 0u8;
        // Seeded with +0.0 rather than `.sum()`: f64's `Sum` identity is
        // -0.0, which would leak a negative zero out of empty (or all-zero)
        // incident slices and break bitwise agreement with the dense walk.
        let mut acc = 0.0f64;
        for run in l.runs_for(v) {
            families |= 1 << run.family as u8;
            let (s, e) = (run.start as usize, (run.start + run.len) as usize);
            match run.family {
                Family::Detection => {
                    let miss = l.det_miss.of(&self.arena.f);
                    let cert = l.det_cert.of(&self.arena.u);
                    for ent in &l.det[s..e] {
                        let i = ent.slot as usize;
                        let eff = if cert[i] > 0 { 0.0 } else { miss[i] };
                        acc += eff * ent.x;
                    }
                }
                Family::LogSum => {
                    let sum = l.log_sum.of(&self.arena.f);
                    for ent in &l.log[s..e] {
                        let ws = sum[ent.slot as usize];
                        acc += (1.0 + ws + ent.x).ln() - (1.0 + ws).ln();
                    }
                }
                Family::Linear => {
                    for ent in &l.lin[s..e] {
                        acc += ent.x;
                    }
                }
                Family::Coverage => {
                    let counts = l.cov_counts.of(&self.arena.u);
                    for ent in &l.cov[s..e] {
                        let subs = &l.cov_inc[ent.start as usize..(ent.start + ent.len) as usize];
                        let part: f64 = subs
                            .iter()
                            .filter(|&&sub| counts[sub as usize] == 0)
                            .map(|&sub| l.cov_values[sub as usize])
                            .sum();
                        acc += part;
                    }
                }
                Family::Facility => {
                    let best = l.fac_best.of(&self.arena.f);
                    for ent in &l.fac[s..e] {
                        let rows = &l.fac_inc[ent.start as usize..(ent.start + ent.len) as usize];
                        let mut part = 0.0f64;
                        for inc in rows {
                            part += (inc.benefit - best[inc.row as usize]).max(0.0);
                        }
                        acc += part;
                    }
                }
                Family::KCover => {
                    let counts = l.kc_counts.of(&self.arena.u);
                    for ent in &l.kc[s..e] {
                        let tgts = &l.kc_inc[ent.start as usize..(ent.start + ent.len) as usize];
                        let part: f64 = tgts
                            .iter()
                            .filter(|&&i| counts[i as usize] < l.kc_k[i as usize])
                            .map(|&i| l.kc_wk[i as usize])
                            .sum();
                        acc += part;
                    }
                }
            }
        }
        stats::record_family_queries(families);
        acc
    }

    fn loss(&self, v: SensorId) -> f64 {
        if !self.members.contains(v) {
            return 0.0;
        }
        let l = &*self.layout;
        stats::record_query(self.index.degree(v));
        let mut families = 0u8;
        let mut acc = 0.0f64;
        for run in l.runs_for(v) {
            families |= 1 << run.family as u8;
            let (s, e) = (run.start as usize, (run.start + run.len) as usize);
            match run.family {
                Family::Detection => {
                    let miss = l.det_miss.of(&self.arena.f);
                    let cert = l.det_cert.of(&self.arena.u);
                    for ent in &l.det[s..e] {
                        let i = ent.slot as usize;
                        let p = ent.x;
                        acc += if p >= 1.0 {
                            if cert[i] > 1 {
                                0.0
                            } else {
                                miss[i]
                            }
                        } else if cert[i] > 0 {
                            0.0
                        } else {
                            miss[i] / (1.0 - p) * p
                        };
                    }
                }
                Family::LogSum => {
                    let sum = l.log_sum.of(&self.arena.f);
                    for ent in &l.log[s..e] {
                        let ws = sum[ent.slot as usize];
                        acc += (1.0 + ws).ln() - (1.0 + ws - ent.x).max(1.0).ln();
                    }
                }
                Family::Linear => {
                    for ent in &l.lin[s..e] {
                        acc += ent.x;
                    }
                }
                Family::Coverage => {
                    let counts = l.cov_counts.of(&self.arena.u);
                    for ent in &l.cov[s..e] {
                        let subs = &l.cov_inc[ent.start as usize..(ent.start + ent.len) as usize];
                        let part: f64 = subs
                            .iter()
                            .filter(|&&sub| counts[sub as usize] == 1)
                            .map(|&sub| l.cov_values[sub as usize])
                            .sum();
                        acc += part;
                    }
                }
                Family::Facility => {
                    let best = l.fac_best.of(&self.arena.f);
                    for ent in &l.fac[s..e] {
                        let fp = &l.fac_parts[ent.slot as usize];
                        let base = l.fac_part_off[ent.slot as usize] as usize;
                        let rows = &l.fac_inc[ent.start as usize..(ent.start + ent.len) as usize];
                        let mut part = 0.0f64;
                        for inc in rows {
                            let i = inc.row as usize;
                            if inc.benefit >= best[i] && best[i] > 0.0 {
                                let row = &fp.benefits[i - base];
                                let next = self
                                    .members
                                    .iter()
                                    .filter(|&u| u != v && fp.support.contains(u))
                                    .map(|u| row[u.index()])
                                    .fold(0.0, f64::max);
                                part += best[i] - next;
                            }
                        }
                        acc += part;
                    }
                }
                Family::KCover => {
                    let counts = l.kc_counts.of(&self.arena.u);
                    for ent in &l.kc[s..e] {
                        let tgts = &l.kc_inc[ent.start as usize..(ent.start + ent.len) as usize];
                        let part: f64 = tgts
                            .iter()
                            .filter(|&&i| counts[i as usize] <= l.kc_k[i as usize])
                            .map(|&i| l.kc_wk[i as usize])
                            .sum();
                        acc += part;
                    }
                }
            }
        }
        stats::record_family_queries(families);
        acc
    }

    fn insert(&mut self, v: SensorId) -> f64 {
        if !self.members.insert(v) {
            return 0.0;
        }
        let SparseSumEvaluator { layout, arena, .. } = self;
        let l = &**layout;
        let mut delta = 0.0;
        for run in l.runs_for(v) {
            let (s, e) = (run.start as usize, (run.start + run.len) as usize);
            match run.family {
                Family::Detection => {
                    let miss = l.det_miss.of_mut(&mut arena.f);
                    let cert = l.det_cert.of_mut(&mut arena.u);
                    for ent in &l.det[s..e] {
                        let i = ent.slot as usize;
                        let p = ent.x;
                        let eff = if cert[i] > 0 { 0.0 } else { miss[i] };
                        delta += eff * p;
                        if p >= 1.0 {
                            cert[i] += 1;
                        } else {
                            miss[i] *= 1.0 - p;
                        }
                    }
                }
                Family::LogSum => {
                    let sum = l.log_sum.of_mut(&mut arena.f);
                    for ent in &l.log[s..e] {
                        let i = ent.slot as usize;
                        let before = (1.0 + sum[i]).ln();
                        sum[i] += ent.x;
                        delta += (1.0 + sum[i]).ln() - before;
                    }
                }
                Family::Linear => {
                    let sum = l.lin_sum.of_mut(&mut arena.f);
                    for ent in &l.lin[s..e] {
                        sum[ent.slot as usize] += ent.x;
                        delta += ent.x;
                    }
                }
                Family::Coverage => {
                    let value = l.cov_value.of_mut(&mut arena.f);
                    let counts = l.cov_counts.of_mut(&mut arena.u);
                    for ent in &l.cov[s..e] {
                        let subs = &l.cov_inc[ent.start as usize..(ent.start + ent.len) as usize];
                        let mut gained = 0.0;
                        for &sub in subs {
                            let j = sub as usize;
                            if counts[j] == 0 {
                                gained += l.cov_values[j];
                            }
                            counts[j] += 1;
                        }
                        value[ent.slot as usize] += gained;
                        delta += gained;
                    }
                }
                Family::Facility => {
                    let best = l.fac_best.of_mut(&mut arena.f);
                    for ent in &l.fac[s..e] {
                        let rows = &l.fac_inc[ent.start as usize..(ent.start + ent.len) as usize];
                        let mut gained = 0.0;
                        for inc in rows {
                            let i = inc.row as usize;
                            if inc.benefit > best[i] {
                                gained += inc.benefit - best[i];
                                best[i] = inc.benefit;
                            }
                        }
                        delta += gained;
                    }
                }
                Family::KCover => {
                    let value = l.kc_value.of_mut(&mut arena.f);
                    let counts = l.kc_counts.of_mut(&mut arena.u);
                    for ent in &l.kc[s..e] {
                        let tgts = &l.kc_inc[ent.start as usize..(ent.start + ent.len) as usize];
                        let mut gained = 0.0;
                        for &t in tgts {
                            let j = t as usize;
                            if counts[j] < l.kc_k[j] {
                                gained += l.kc_wk[j];
                            }
                            counts[j] += 1;
                        }
                        value[ent.slot as usize] += gained;
                        delta += gained;
                    }
                }
            }
        }
        invariant!(
            delta >= 0.0,
            "insert delta must be non-negative (monotone utility)"
        );
        self.kahan_add(delta);
        self.after_mutation();
        delta
    }

    #[allow(clippy::too_many_lines)] // one kernel per family, linear and flat
    fn remove(&mut self, v: SensorId) -> f64 {
        if !self.members.remove(v) {
            return 0.0;
        }
        let SparseSumEvaluator {
            layout,
            arena,
            members,
            ..
        } = self;
        let l = &**layout;
        let mut delta = 0.0;
        for run in l.runs_for(v) {
            let (s, e) = (run.start as usize, (run.start + run.len) as usize);
            match run.family {
                Family::Detection => {
                    let miss = l.det_miss.of_mut(&mut arena.f);
                    let cert = l.det_cert.of_mut(&mut arena.u);
                    for ent in &l.det[s..e] {
                        let i = ent.slot as usize;
                        let p = ent.x;
                        delta += if p >= 1.0 {
                            invariant!(cert[i] > 0, "certain-member count must not underflow");
                            cert[i] -= 1;
                            if cert[i] > 0 {
                                0.0
                            } else {
                                miss[i]
                            }
                        } else {
                            let miss_without = miss[i] / (1.0 - p);
                            let had_certain = cert[i] > 0;
                            miss[i] = miss_without;
                            if had_certain {
                                0.0
                            } else {
                                miss_without * p
                            }
                        };
                    }
                }
                Family::LogSum => {
                    let sum = l.log_sum.of_mut(&mut arena.f);
                    for ent in &l.log[s..e] {
                        let i = ent.slot as usize;
                        let before = (1.0 + sum[i]).ln();
                        sum[i] = (sum[i] - ent.x).max(0.0);
                        delta += before - (1.0 + sum[i]).ln();
                    }
                }
                Family::Linear => {
                    let sum = l.lin_sum.of_mut(&mut arena.f);
                    for ent in &l.lin[s..e] {
                        sum[ent.slot as usize] -= ent.x;
                        delta += ent.x;
                    }
                }
                Family::Coverage => {
                    let value = l.cov_value.of_mut(&mut arena.f);
                    let counts = l.cov_counts.of_mut(&mut arena.u);
                    for ent in &l.cov[s..e] {
                        let subs = &l.cov_inc[ent.start as usize..(ent.start + ent.len) as usize];
                        let mut lost = 0.0;
                        for &sub in subs {
                            let j = sub as usize;
                            invariant!(counts[j] > 0, "cover count must not underflow");
                            counts[j] -= 1;
                            if counts[j] == 0 {
                                lost += l.cov_values[j];
                            }
                        }
                        value[ent.slot as usize] -= lost;
                        delta += lost;
                    }
                }
                Family::Facility => {
                    let best = l.fac_best.of_mut(&mut arena.f);
                    for ent in &l.fac[s..e] {
                        let fp = &l.fac_parts[ent.slot as usize];
                        let base = l.fac_part_off[ent.slot as usize] as usize;
                        let rows = &l.fac_inc[ent.start as usize..(ent.start + ent.len) as usize];
                        let mut lost = 0.0;
                        for inc in rows {
                            let i = inc.row as usize;
                            if inc.benefit >= best[i] && best[i] > 0.0 {
                                let row = &fp.benefits[i - base];
                                // `v` is already out of the member set, so
                                // the scan needs no `u != v` filter — the
                                // same shape as the part-walk removal.
                                let next = members
                                    .iter()
                                    .filter(|&u| fp.support.contains(u))
                                    .map(|u| row[u.index()])
                                    .fold(0.0, f64::max);
                                lost += best[i] - next;
                                best[i] = next;
                            }
                        }
                        delta += lost;
                    }
                }
                Family::KCover => {
                    let value = l.kc_value.of_mut(&mut arena.f);
                    let counts = l.kc_counts.of_mut(&mut arena.u);
                    for ent in &l.kc[s..e] {
                        let tgts = &l.kc_inc[ent.start as usize..(ent.start + ent.len) as usize];
                        let mut lost = 0.0;
                        for &t in tgts {
                            let j = t as usize;
                            invariant!(counts[j] > 0, "coverer count must not underflow");
                            counts[j] -= 1;
                            if counts[j] < l.kc_k[j] {
                                lost += l.kc_wk[j];
                            }
                        }
                        value[ent.slot as usize] -= lost;
                        delta += lost;
                    }
                }
            }
        }
        invariant!(
            delta >= 0.0,
            "remove delta must be non-negative (monotone utility)"
        );
        self.kahan_add(-delta);
        self.after_mutation();
        delta
    }

    fn contains(&self, v: SensorId) -> bool {
        self.members.contains(v)
    }

    fn current_set(&self) -> SensorSet {
        self.members.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        CoverageUtility, DetectionUtility, FacilityLocationUtility, KCoverageUtility,
        LinearUtility, LogSumUtility, SumUtility,
    };

    fn six_family_sum() -> SumUtility {
        SumUtility::new(vec![
            DetectionUtility::new(vec![0.4, 0.0, 0.9, 0.0, 0.25]).into(),
            LogSumUtility::new(vec![0.0, 2.0, 0.0, 1.0, 0.0]).into(),
            LinearUtility::new(vec![1.0, 0.0, 0.0, 0.5, 0.0]).into(),
            CoverageUtility::from_parts(
                5,
                vec![
                    SensorSet::from_indices(5, [0, 1]),
                    SensorSet::from_indices(5, [1, 4]),
                    SensorSet::from_indices(5, [2]),
                ],
                vec![2.0, 0.0, 3.0],
            )
            .into(),
            FacilityLocationUtility::new(vec![
                vec![0.9, 0.0, 0.4, 0.0, 0.0],
                vec![0.0, 0.8, 0.0, 0.0, 0.5],
            ])
            .into(),
            KCoverageUtility::new(
                vec![
                    SensorSet::from_indices(5, [0, 2, 3]),
                    SensorSet::from_indices(5, [3, 4]),
                ],
                vec![2, 1],
                vec![1.0, 3.0],
            )
            .into(),
            DetectionUtility::new(vec![0.0, 0.3, 0.0, 0.3, 0.0]).into(),
        ])
    }

    #[test]
    fn permutation_is_stable_within_each_family() {
        let u = six_family_sum();
        let l = u.soa_layout();
        assert_eq!(l.family_of(0), (Family::Detection, 0));
        assert_eq!(l.family_of(1), (Family::LogSum, 0));
        assert_eq!(l.family_of(2), (Family::Linear, 0));
        assert_eq!(l.family_of(3), (Family::Coverage, 0));
        assert_eq!(l.family_of(4), (Family::Facility, 0));
        assert_eq!(l.family_of(5), (Family::KCover, 0));
        // The second detection part keeps part-id order within the family.
        assert_eq!(l.family_of(6), (Family::Detection, 1));
    }

    #[test]
    fn runs_split_on_family_change_and_cover_all_entries() {
        let u = six_family_sum();
        let l = u.soa_layout();
        let total: u32 = l.runs.iter().map(|r| r.len).sum();
        assert_eq!(total as usize, u.incidence().n_entries());
        // Sensor 3 is incident to LogSum(1), Linear(2), KCover(5), Det(6):
        // four single-part runs (families alternate along the id order).
        let runs = l.runs_for(SensorId(3));
        let fams: Vec<Family> = runs.iter().map(|r| r.family).collect();
        assert_eq!(
            fams,
            vec![
                Family::LogSum,
                Family::Linear,
                Family::KCover,
                Family::Detection
            ]
        );
        assert!(runs.iter().all(|r| r.len == 1));
    }

    #[test]
    fn kernels_match_part_walk_bitwise_on_a_trace() {
        let u = six_family_sum();
        let mut soa = u.evaluator();
        let mut walk = u.part_walk_evaluator();
        let trace = [
            (true, 1),
            (true, 3),
            (true, 0),
            (false, 3),
            (true, 4),
            (true, 2),
            (false, 1),
            (true, 3),
            (false, 0),
        ];
        for (step, (add, raw)) in trace.into_iter().enumerate() {
            let v = SensorId(raw);
            for probe in 0..5 {
                let p = SensorId(probe);
                assert_eq!(
                    soa.gain(p).to_bits(),
                    walk.gain(p).to_bits(),
                    "gain({probe}) diverged at step {step}"
                );
                assert_eq!(
                    soa.loss(p).to_bits(),
                    walk.loss(p).to_bits(),
                    "loss({probe}) diverged at step {step}"
                );
            }
            let (a, b) = if add {
                (soa.insert(v), walk.insert(v))
            } else {
                (soa.remove(v), walk.remove(v))
            };
            assert_eq!(a.to_bits(), b.to_bits(), "delta diverged at step {step}");
            assert_eq!(soa.value().to_bits(), walk.value().to_bits());
            let pv_soa = soa.part_values();
            let pv_walk = walk.part_values();
            for (pid, (x, y)) in pv_soa.iter().zip(&pv_walk).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "part {pid} value diverged at step {step}"
                );
            }
        }
    }

    #[test]
    fn reset_restores_a_fresh_evaluator_without_reallocating() {
        let u = six_family_sum();
        let mut e = u.evaluator().with_rebuild_cadence(2);
        for v in 0..5 {
            e.insert(SensorId(v));
        }
        let f_ptr = e.arena.f.as_ptr();
        let u_ptr = e.arena.u.as_ptr();
        e.reset();
        assert_eq!(e.arena.f.as_ptr(), f_ptr, "f64 arena must not reallocate");
        assert_eq!(e.arena.u.as_ptr(), u_ptr, "u32 arena must not reallocate");
        assert_eq!(e.rebuild_cadence(), 2, "cadence survives reset");
        assert_eq!(e.value().to_bits(), 0.0f64.to_bits());
        assert_eq!(e.current_set(), SensorSet::new(5));
        let fresh = u.evaluator();
        for v in 0..5 {
            let p = SensorId(v);
            assert_eq!(e.gain(p).to_bits(), fresh.gain(p).to_bits());
        }
    }

    #[test]
    fn part_values_into_reuses_the_buffer() {
        let u = six_family_sum();
        let mut e = u.evaluator();
        e.insert(SensorId(1));
        let mut buf = Vec::new();
        e.part_values_into(&mut buf);
        assert_eq!(buf.len(), 7);
        let cap_ptr = buf.as_ptr();
        e.insert(SensorId(0));
        e.part_values_into(&mut buf);
        assert_eq!(buf.as_ptr(), cap_ptr, "buffer must be reused, not regrown");
        assert_eq!(buf, e.part_values());
    }

    #[test]
    fn family_labels_line_up_with_discriminants() {
        for (i, fam) in [
            Family::Detection,
            Family::LogSum,
            Family::Linear,
            Family::Coverage,
            Family::Facility,
            Family::KCover,
        ]
        .into_iter()
        .enumerate()
        {
            assert_eq!(fam as usize, i);
            assert_eq!(fam.label(), stats::FAMILY_LABELS[i]);
        }
    }

    #[test]
    fn gain_records_per_family_counters() {
        let u = six_family_sum();
        let e = u.evaluator();
        let before = stats::snapshot();
        // Sensor 3 touches LogSum, Linear, KCover and Detection parts.
        let _ = e.gain(SensorId(3));
        let after = stats::snapshot();
        for fam in [
            Family::LogSum,
            Family::Linear,
            Family::KCover,
            Family::Detection,
        ] {
            assert!(
                after.family_queries[fam as usize] > before.family_queries[fam as usize],
                "{} counter did not advance",
                fam.label()
            );
        }
    }
}
