//! Process-wide counters for sparse-evaluation observability.
//!
//! [`SparseSumEvaluator`](crate::SparseSumEvaluator) records every
//! marginal-gain/loss query and the number of incident parts it touched.
//! `cool-serve` exposes the totals as `cool_gain_queries_total` /
//! `cool_parts_touched_total` in `/metrics`, making the O(deg) win (ratio
//! `parts_touched / gain_queries` = average degree, vs. `m` for the dense
//! walk) observable in production.
//!
//! Since PR 10 queries are additionally attributed to the utility families
//! they touched (`cool_gain_queries_total{family="..."}`): the SoA kernels
//! know each query's family set for free from its run list, and the
//! breakdown shows which kernels a workload actually exercises.
//!
//! Counters are global, relaxed, and monotone — cheap enough for the query
//! hot path and race-free to scrape.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of utility families ([`Family`](crate::Family) variants).
pub const N_FAMILIES: usize = 6;

/// Prometheus `family` label values, indexed by
/// [`Family`](crate::Family) discriminant.
pub const FAMILY_LABELS: [&str; N_FAMILIES] = [
    "detection",
    "logsum",
    "linear",
    "coverage",
    "facility",
    "kcover",
];

static GAIN_QUERIES: AtomicU64 = AtomicU64::new(0);
static PARTS_TOUCHED: AtomicU64 = AtomicU64::new(0);
static FAMILY_QUERIES: [AtomicU64; N_FAMILIES] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// A consistent-enough snapshot of the counters (individually atomic reads).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total marginal-gain/loss queries answered by sparse evaluators.
    pub gain_queries: u64,
    /// Total incident parts visited by those queries.
    pub parts_touched: u64,
    /// Queries per family touched (a mixed-family query counts once per
    /// family it reached), indexed like [`FAMILY_LABELS`].
    pub family_queries: [u64; N_FAMILIES],
}

/// Records one gain/loss query that touched `parts` incident parts.
#[inline]
pub fn record_query(parts: usize) {
    GAIN_QUERIES.fetch_add(1, Ordering::Relaxed);
    PARTS_TOUCHED.fetch_add(parts as u64, Ordering::Relaxed);
}

/// Records which families one query touched, as a bitmask of
/// [`Family`](crate::Family) discriminants (bit `f` set ⇒ one count for
/// family `f`).
#[inline]
pub fn record_family_queries(mut families: u8) {
    while families != 0 {
        let f = families.trailing_zeros() as usize;
        FAMILY_QUERIES[f].fetch_add(1, Ordering::Relaxed);
        families &= families - 1;
    }
}

/// Current counter totals.
pub fn snapshot() -> StatsSnapshot {
    let mut family_queries = [0u64; N_FAMILIES];
    for (out, counter) in family_queries.iter_mut().zip(&FAMILY_QUERIES) {
        *out = counter.load(Ordering::Relaxed);
    }
    StatsSnapshot {
        gain_queries: GAIN_QUERIES.load(Ordering::Relaxed),
        parts_touched: PARTS_TOUCHED.load(Ordering::Relaxed),
        family_queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_advances_both_counters() {
        // Counters are global and other tests run concurrently, so assert
        // on deltas being *at least* what we contributed.
        let before = snapshot();
        record_query(7);
        record_query(0);
        let after = snapshot();
        assert!(after.gain_queries >= before.gain_queries + 2);
        assert!(after.parts_touched >= before.parts_touched + 7);
    }

    #[test]
    fn family_mask_attributes_each_set_bit_once() {
        let before = snapshot();
        record_family_queries(0b10_0101); // detection, linear, kcover
        record_family_queries(0b00_0001); // detection again
        let after = snapshot();
        assert!(after.family_queries[0] >= before.family_queries[0] + 2);
        assert!(after.family_queries[2] > before.family_queries[2]);
        assert!(after.family_queries[5] > before.family_queries[5]);
        // An empty mask records nothing and terminates.
        record_family_queries(0);
    }

    #[test]
    fn labels_cover_all_families() {
        assert_eq!(FAMILY_LABELS.len(), N_FAMILIES);
        let mut sorted: Vec<&str> = FAMILY_LABELS.to_vec();
        sorted.dedup();
        assert_eq!(sorted.len(), N_FAMILIES, "labels must be distinct");
    }
}
