//! Process-wide counters for sparse-evaluation observability.
//!
//! [`SparseSumEvaluator`](crate::SparseSumEvaluator) records every
//! marginal-gain/loss query and the number of incident parts it touched.
//! `cool-serve` exposes the totals as `cool_gain_queries_total` /
//! `cool_parts_touched_total` in `/metrics`, making the O(deg) win (ratio
//! `parts_touched / gain_queries` = average degree, vs. `m` for the dense
//! walk) observable in production.
//!
//! Counters are global, relaxed, and monotone — cheap enough for the query
//! hot path and race-free to scrape.

use std::sync::atomic::{AtomicU64, Ordering};

static GAIN_QUERIES: AtomicU64 = AtomicU64::new(0);
static PARTS_TOUCHED: AtomicU64 = AtomicU64::new(0);

/// A consistent-enough snapshot of the counters (individually atomic reads).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total marginal-gain/loss queries answered by sparse evaluators.
    pub gain_queries: u64,
    /// Total incident parts visited by those queries.
    pub parts_touched: u64,
}

/// Records one gain/loss query that touched `parts` incident parts.
#[inline]
pub fn record_query(parts: usize) {
    GAIN_QUERIES.fetch_add(1, Ordering::Relaxed);
    PARTS_TOUCHED.fetch_add(parts as u64, Ordering::Relaxed);
}

/// Current counter totals.
pub fn snapshot() -> StatsSnapshot {
    StatsSnapshot {
        gain_queries: GAIN_QUERIES.load(Ordering::Relaxed),
        parts_touched: PARTS_TOUCHED.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_advances_both_counters() {
        // Counters are global and other tests run concurrently, so assert
        // on deltas being *at least* what we contributed.
        let before = snapshot();
        record_query(7);
        record_query(0);
        let after = snapshot();
        assert!(after.gain_queries >= before.gain_queries + 2);
        assert!(after.parts_touched >= before.parts_touched + 7);
    }
}
