//! The [`UtilityFunction`] and [`Evaluator`] traits.

use cool_common::{SensorId, SensorSet};

/// A non-decreasing submodular set function `U : 2^V → ℝ≥0` with
/// `U(∅) = 0`, over a universe of `universe()` sensors.
///
/// Implementors must satisfy (and the crate's property tests verify
/// numerically via [`check_utility`](crate::check_utility)):
///
/// * normalisation: `eval(∅) == 0`;
/// * monotonicity: `S₁ ⊆ S₂ ⇒ eval(S₁) ≤ eval(S₂)`;
/// * submodularity: `S₁ ⊆ S₂, v ∉ S₂ ⇒`
///   `eval(S₁∪{v}) − eval(S₁) ≥ eval(S₂∪{v}) − eval(S₂)`.
///
/// The greedy scheduler's ½-approximation guarantee (Lemma 4.1 of the
/// paper) relies on exactly these properties.
pub trait UtilityFunction {
    /// The incremental evaluator companion type.
    type Evaluator: Evaluator;

    /// Number of sensors in the universe `V`.
    fn universe(&self) -> usize;

    /// Evaluates `U(S)` from scratch.
    ///
    /// # Panics
    ///
    /// Implementations panic when `set.universe() != self.universe()`.
    fn eval(&self, set: &SensorSet) -> f64;

    /// The largest value the function can attain, `U(V)`.
    fn max_value(&self) -> f64 {
        self.eval(&SensorSet::full(self.universe()))
    }

    /// Number of monitored targets this utility aggregates over — used to
    /// normalise "average utility per target per time-slot" (§VI-B).
    /// Defaults to 1; composites such as
    /// [`SumUtility`](crate::SumUtility) override it with their part count.
    fn target_count(&self) -> usize {
        1
    }

    /// Marginal gain `U(S ∪ {v}) − U(S)` computed from scratch; prefer an
    /// [`Evaluator`] in hot loops.
    fn marginal_gain(&self, set: &SensorSet, v: SensorId) -> f64 {
        let mut with_v = set.clone();
        if !with_v.insert(v) {
            return 0.0;
        }
        self.eval(&with_v) - self.eval(set)
    }

    /// The **support set**: the sensors that can have a nonzero effect on
    /// the function's value. For every `v` outside the support and every
    /// set `S`, `U(S ∪ {v}) = U(S)` **exactly** (no tolerance) — the
    /// contract the sparse incidence index in
    /// [`SumUtility`](crate::SumUtility) is built on.
    ///
    /// The default is the full universe (always sound); concrete utilities
    /// override it with the minimal set (sensors with positive probability,
    /// weight, subregion value, or benefit).
    fn support(&self) -> SensorSet {
        SensorSet::full(self.universe())
    }

    /// Creates a fresh incremental evaluator positioned at `S = ∅`.
    fn evaluator(&self) -> Self::Evaluator;
}

/// Incremental evaluation state for one [`UtilityFunction`]: tracks a
/// current set `S` and answers marginal-gain/loss queries without
/// re-evaluating from scratch.
///
/// The greedy hill-climbing scheduler (Algorithm 1) performs `O(n²·T)`
/// marginal-gain queries naively; exact incremental state turns each query
/// from `O(eval)` into `O(1)`–`O(#touched-targets)`.
///
/// Implementations must agree exactly (up to floating-point roundoff) with
/// the owning function: after any sequence of `insert`/`remove`,
/// `value() == U(S)` and `gain(v) == U(S∪{v}) − U(S)`.
pub trait Evaluator {
    /// Current value `U(S)`.
    fn value(&self) -> f64;

    /// Marginal gain `U(S ∪ {v}) − U(S)`; `0` if `v ∈ S`.
    fn gain(&self, v: SensorId) -> f64;

    /// Marginal loss `U(S) − U(S \ {v})`; `0` if `v ∉ S`.
    ///
    /// Used by the `ρ ≤ 1` scheduler, which greedily allocates **passive**
    /// slots by minimum decremental utility (§IV-B).
    fn loss(&self, v: SensorId) -> f64;

    /// Adds `v` to `S`; returns the realised gain. No-op (returning `0`)
    /// if already present.
    fn insert(&mut self, v: SensorId) -> f64;

    /// Removes `v` from `S`; returns the realised loss. No-op (returning
    /// `0`) if absent.
    fn remove(&mut self, v: SensorId) -> f64;

    /// `true` if `v ∈ S`.
    fn contains(&self, v: SensorId) -> bool;

    /// The current set `S` (materialised).
    fn current_set(&self) -> SensorSet;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearUtility;

    #[test]
    fn default_marginal_gain_matches_eval_difference() {
        let u = LinearUtility::new(vec![1.0, 2.0, 3.0]);
        let s = SensorSet::from_indices(3, [0]);
        assert_eq!(u.marginal_gain(&s, SensorId(2)), 3.0);
        assert_eq!(u.marginal_gain(&s, SensorId(0)), 0.0, "already present");
    }

    #[test]
    fn max_value_is_full_set() {
        let u = LinearUtility::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(u.max_value(), 6.0);
    }
}
