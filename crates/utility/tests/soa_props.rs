//! PR 10 satellite: the struct-of-arrays grouping permutation round-trips.
//!
//! [`SumUtility`] reorders its parts by family internally (stable
//! permutation, family-batched kernels); these properties pin that the
//! reordering is observationally invisible — `eval`, `eval_parts`, and
//! `support()` are **bit-identical** to the part-order construction (the
//! retained [`PartWalkSumUtility`] enum walk) across random mixes of all
//! six families, as are marginal gains/losses/deltas along random traces.

use cool_common::{SensorId, SensorSet};
use cool_utility::{
    AnyUtility, CoverageUtility, DenseSumUtility, DetectionUtility, Evaluator,
    FacilityLocationUtility, KCoverageUtility, LinearUtility, LogSumUtility, PartWalkSumUtility,
    SumUtility, UtilityFunction,
};
use proptest::prelude::*;

const N: usize = 7;

/// One random part of any of the six families over `N` sensors (the first
/// tuple element selects the family; the vendored proptest shim has no
/// `prop_oneof`, so the unused payloads are simply discarded).
fn any_part() -> impl Strategy<Value = AnyUtility> {
    let probs = proptest::collection::vec(0.0f64..0.95, N);
    let weights = proptest::collection::vec(0.0f64..4.0, N);
    let subregions = proptest::collection::vec(
        (proptest::collection::vec(0usize..N, 1..4), 0.0f64..5.0),
        1..6,
    );
    let rows = proptest::collection::vec(proptest::collection::vec(0.0f64..3.0, N), 1..4);
    let targets = proptest::collection::vec(
        (
            proptest::collection::vec(0usize..N, 1..5),
            1u32..4,
            0.0f64..3.0,
        ),
        1..4,
    );
    (0u8..6, probs, weights, subregions, rows, targets).prop_map(
        |(kind, p, w, subs, rows, tgts)| match kind {
            0 => DetectionUtility::new(p).into(),
            1 => LogSumUtility::new(w).into(),
            2 => LinearUtility::new(w).into(),
            3 => {
                let signatures = subs
                    .iter()
                    .map(|(ids, _)| SensorSet::from_indices(N, ids.iter().copied()))
                    .collect();
                let values = subs.iter().map(|&(_, v)| v).collect();
                CoverageUtility::from_parts(N, signatures, values).into()
            }
            4 => FacilityLocationUtility::new(rows).into(),
            _ => {
                let coverages = tgts
                    .iter()
                    .map(|(ids, _, _)| SensorSet::from_indices(N, ids.iter().copied()))
                    .collect();
                let k = tgts.iter().map(|&(_, ki, _)| ki).collect();
                let wt = tgts.iter().map(|&(_, _, wi)| wi).collect();
                KCoverageUtility::new(coverages, k, wt).into()
            }
        },
    )
}

fn mixed_sum() -> impl Strategy<Value = SumUtility> {
    proptest::collection::vec(any_part(), 1..10).prop_map(SumUtility::new)
}

fn sensor_sets() -> impl Strategy<Value = SensorSet> {
    proptest::collection::vec(any::<bool>(), N).prop_map(|bits| {
        SensorSet::from_indices(
            N,
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i),
        )
    })
}

proptest! {
    /// `eval` is bit-identical to the part-order walk and agrees with the
    /// dense from-scratch sum to the pinned tolerance.
    #[test]
    fn eval_round_trips_through_the_grouping(u in mixed_sum(), set in sensor_sets()) {
        let walk = PartWalkSumUtility::new(u.clone());
        prop_assert_eq!(u.eval(&set).to_bits(), walk.eval(&set).to_bits());
        let dense = DenseSumUtility::new(u.clone());
        prop_assert!((u.eval(&set) - dense.eval(&set)).abs() < 1e-9);
    }

    /// `eval_parts` (the per-target breakdown, in part-id order) is
    /// bit-identical to the part evaluators' own values.
    #[test]
    fn eval_parts_round_trips_through_the_grouping(u in mixed_sum(), set in sensor_sets()) {
        let soa = u.eval_parts(&set);
        let mut walk = u.part_walk_evaluator();
        for v in &set {
            walk.insert(v);
        }
        let expected = walk.part_values();
        prop_assert_eq!(soa.len(), expected.len());
        for (pid, (a, b)) in soa.iter().zip(&expected).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "part {} diverged", pid);
        }
        // The reusable-buffer form returns the same bits.
        let mut buf = vec![f64::NAN; 3];
        u.eval_parts_into(&set, &mut buf);
        prop_assert_eq!(buf.len(), soa.len());
        for (a, b) in buf.iter().zip(&soa) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// `support()` is unchanged by the grouping.
    #[test]
    fn support_round_trips_through_the_grouping(u in mixed_sum()) {
        let walk = PartWalkSumUtility::new(u.clone());
        prop_assert_eq!(u.support(), walk.support());
        let dense = DenseSumUtility::new(u.clone());
        prop_assert_eq!(u.support(), dense.support());
    }

    /// Gains, losses, insert/remove deltas and the running value are
    /// bit-identical to both oracles along random mixed-family traces.
    #[test]
    fn kernels_match_both_oracles_on_random_traces(
        u in mixed_sum(),
        ops in proptest::collection::vec((any::<bool>(), 0usize..N), 0..30),
    ) {
        let mut soa = u.evaluator();
        let mut walk = u.part_walk_evaluator();
        let mut dense = u.dense_evaluator();
        for (add, raw) in ops {
            let v = SensorId(raw);
            prop_assert_eq!(soa.gain(v).to_bits(), walk.gain(v).to_bits());
            prop_assert_eq!(soa.gain(v).to_bits(), dense.gain(v).to_bits());
            prop_assert_eq!(soa.loss(v).to_bits(), walk.loss(v).to_bits());
            prop_assert_eq!(soa.loss(v).to_bits(), dense.loss(v).to_bits());
            if add {
                let d = soa.insert(v);
                prop_assert_eq!(d.to_bits(), walk.insert(v).to_bits());
                prop_assert_eq!(d.to_bits(), dense.insert(v).to_bits());
            } else {
                let d = soa.remove(v);
                prop_assert_eq!(d.to_bits(), walk.remove(v).to_bits());
                prop_assert_eq!(d.to_bits(), dense.remove(v).to_bits());
            }
            prop_assert_eq!(soa.value().to_bits(), walk.value().to_bits());
            prop_assert_eq!(soa.current_set(), dense.current_set());
        }
    }
}
