//! Property tests for the sparse incidence-indexed evaluation engine:
//! support-set soundness and minimality, and CSR index round-trips under
//! sensor relabeling.

use cool_common::{SensorId, SensorSet};
use cool_utility::{
    AnyUtility, CoverageUtility, DetectionUtility, Evaluator, FacilityLocationUtility,
    KCoverageUtility, LinearUtility, LogSumUtility, SumUtility, UtilityFunction,
};
use proptest::prelude::*;

const N: usize = 8;

/// One instance of every family over `N` sensors, parameterised by a
/// sensor subset that carries all the "mass" (probability, weight, value,
/// benefit) — sensors outside `active` must fall outside every support.
fn family_instances(active: &SensorSet, level: f64) -> Vec<AnyUtility> {
    let weights: Vec<f64> = (0..N)
        .map(|v| {
            if active.contains(SensorId(v)) {
                level
            } else {
                0.0
            }
        })
        .collect();
    let p = (level / 10.0).clamp(0.0, 1.0);
    vec![
        DetectionUtility::uniform_on(active, p).into(),
        LinearUtility::new(weights.clone()).into(),
        LogSumUtility::new(weights.clone()).into(),
        CoverageUtility::from_parts(N, vec![active.clone()], vec![level]).into(),
        KCoverageUtility::new(vec![active.clone()], vec![2], vec![level]).into(),
        FacilityLocationUtility::new(vec![weights]).into(),
    ]
}

fn set_from_bits(bits: &[bool]) -> SensorSet {
    SensorSet::from_indices(
        bits.len(),
        bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i),
    )
}

proptest! {
    /// Soundness: a sensor outside the reported support never changes the
    /// value — `U(S ∪ {v}) == U(S)` **exactly**, for every family and
    /// every set.
    #[test]
    fn support_is_sound(
        active_bits in proptest::collection::vec(any::<bool>(), N),
        s_bits in proptest::collection::vec(any::<bool>(), N),
        level in 0.5f64..9.5,
    ) {
        let active = set_from_bits(&active_bits);
        let s = set_from_bits(&s_bits);
        for u in family_instances(&active, level) {
            let support = u.support();
            for raw in 0..N {
                let v = SensorId(raw);
                if support.contains(v) {
                    continue;
                }
                let mut with_v = s.clone();
                with_v.insert(v);
                prop_assert_eq!(
                    u.eval(&with_v).to_bits(),
                    u.eval(&s).to_bits(),
                    "family {:?} moved on out-of-support sensor {}",
                    std::mem::discriminant(&u),
                    raw
                );
                prop_assert_eq!(u.marginal_gain(&s, v), 0.0);
            }
        }
    }

    /// Minimality on exactly-representable (quantised) weights: every
    /// sensor in the reported support has a strictly positive gain at the
    /// empty set — the support contains no dead sensors.
    #[test]
    fn support_is_minimal_at_empty_set(
        active_bits in proptest::collection::vec(any::<bool>(), N),
        quarter_steps in 2u32..40,
    ) {
        let active = set_from_bits(&active_bits);
        let level = f64::from(quarter_steps) * 0.25;
        for u in family_instances(&active, level) {
            let empty = SensorSet::new(N);
            for v in &u.support() {
                prop_assert!(
                    u.marginal_gain(&empty, v) > 0.0,
                    "family {:?} support contains dead sensor {}",
                    std::mem::discriminant(&u),
                    v.index()
                );
            }
        }
    }

    /// The CSR index round-trips under sensor relabeling: relabeling the
    /// sensors of every part by a permutation `π` relabels the index, with
    /// `incident(π(v))` after == `incident(v)` before (same part ids, same
    /// order).
    #[test]
    fn csr_round_trips_under_relabeling(
        covs in proptest::collection::vec(
            proptest::collection::vec(0usize..N, 1..4), 1..6),
        seed_shuffle in proptest::collection::vec(0u32..1000, N),
        p in 0.05f64..0.95,
    ) {
        // Build a permutation by sorting sensor ids by random keys.
        let mut perm: Vec<usize> = (0..N).collect();
        perm.sort_by_key(|&v| (seed_shuffle[v], v));

        let coverages: Vec<SensorSet> = covs
            .iter()
            .map(|ids| SensorSet::from_indices(N, ids.iter().copied()))
            .collect();
        let relabeled: Vec<SensorSet> = coverages
            .iter()
            .map(|cov| SensorSet::from_indices(N, cov.iter().map(|v| perm[v.index()])))
            .collect();

        let u = SumUtility::multi_target_detection(&coverages, p);
        let u_perm = SumUtility::multi_target_detection(&relabeled, p);

        prop_assert_eq!(u.incidence().n_entries(), u_perm.incidence().n_entries());
        for (v, &pv) in perm.iter().enumerate() {
            prop_assert_eq!(
                u.incidence().incident(SensorId(v)),
                u_perm.incidence().incident(SensorId(pv)),
                "sensor {} vs relabeled {}", v, pv
            );
        }

        // And the relabeled sparse evaluator computes relabeled gains.
        let mut e = u.evaluator();
        let mut e_perm = u_perm.evaluator();
        for (v, &pv) in perm.iter().enumerate() {
            prop_assert_eq!(
                e.gain(SensorId(v)).to_bits(),
                e_perm.gain(SensorId(pv)).to_bits()
            );
        }
        e.insert(SensorId(0));
        e_perm.insert(SensorId(perm[0]));
        for (v, &pv) in perm.iter().enumerate().skip(1) {
            prop_assert_eq!(
                e.gain(SensorId(v)).to_bits(),
                e_perm.gain(SensorId(pv)).to_bits()
            );
        }
    }
}
