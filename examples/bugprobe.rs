// Examples favour brevity: unwrap keeps the algorithmic story readable.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use cool_common::{SeedSequence, SensorSet};
use cool_core::lp::LpScheduler;
use cool_core::problem::Problem;
use cool_energy::ChargeCycle;
use cool_utility::SumUtility;

fn main() {
    // Probe 1: LpScheduler on a rho <= 1 problem.
    let u = SumUtility::multi_target_detection(&[SensorSet::full(6)], 0.4);
    let cycle = ChargeCycle::from_rho(0.5, 10.0).unwrap();
    let p = Problem::new(u.clone(), cycle, 1).unwrap();
    let mut rng = SeedSequence::new(1).nth_rng(0);
    let out = LpScheduler::new(4).schedule(&p, &mut rng).unwrap();
    println!(
        "probe1: rho={} mode={:?} feasible={}",
        cycle.rho(),
        out.schedule.mode(),
        out.schedule.is_feasible(p.cycle())
    );

    // Probe 2: stochastic rho' in (1, 1.5) -> quantised to 1 -> FastRecharge?
    // T_d_cont=15, lambda_a=0.2, mean event=2 -> T_d_bar = 37.5; T_r_bar=48.75 -> rho'=1.3
    let m = cool_energy::RandomChargeModel::new(15.0, 0.2, 2.0, 48.75, 1.0).unwrap();
    println!("probe2: rho'={}", m.rho_prime());
    let r = cool_core::stochastic::stochastic_lp(&u, &m, 2, &mut rng);
    match r {
        Ok((c, _)) => println!("probe2: ok cycle rho={}", c.rho()),
        Err(e) => println!("probe2: err {e}"),
    }

    // Probe 3: LP value claim as upper bound with greedy completion overshoot?
    // (rounded_value <= lp_value?) on a rho>1 instance
    let p2 = Problem::new(u.clone(), ChargeCycle::paper_sunny(), 1).unwrap();
    let out2 = LpScheduler::new(16).schedule(&p2, &mut rng).unwrap();
    println!(
        "probe3: lp={} rounded={} ok={}",
        out2.lp_value,
        out2.rounded_value,
        out2.rounded_value <= out2.lp_value + 1e-9
    );
}
