//! Forest monitoring with the region utility of Eq. (2): sensors with
//! heterogeneous sensing shapes cover a forest block; a fire-prone ridge is
//! weighted 3× the valley floor. The arrangement subdivides the region into
//! signature subregions (Fig. 3(b) of the paper), the greedy spreads the
//! sensors so weighted covered area stays high every slot.
//!
//! ```sh
//! cargo run --example forest_monitoring
//! ```

use cool::common::SeedSequence;
use cool::core::baselines::round_robin_schedule;
use cool::core::greedy::greedy_schedule;
use cool::core::problem::Problem;
use cool::energy::Weather;
use cool::geometry::{AnyRegion, Arrangement, Disk, Point, Rect, Sector};
use cool::utility::{CoverageUtility, UtilityFunction};
use rand::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SeedSequence::new(7).nth_rng(0);

    // A 1 km × 1 km forest block. 40 ground sensors (disks) plus 8 ridge
    // cameras (directional sectors facing downhill).
    let omega = Rect::square(1000.0);
    let mut regions: Vec<AnyRegion> = Vec::new();
    for _ in 0..40 {
        let p = Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0));
        regions.push(Disk::new(p, rng.random_range(80.0..140.0)).into());
    }
    for k in 0..8 {
        let x = 60.0 + 120.0 * f64::from(k);
        regions.push(
            Sector::new(
                Point::new(x, 950.0),
                260.0,
                -std::f64::consts::FRAC_PI_2,
                0.6,
            )
            .into(),
        );
    }

    // The ridge (top fifth of the block) is fire-prone: weight 3.
    let arrangement =
        Arrangement::build(omega, &regions, 256)
            .with_weights(|p| if p.y > 800.0 { 3.0 } else { 1.0 });
    println!(
        "arrangement: {} subregions, {:.0} m² coverable ({:.0} weighted)",
        arrangement.subregions().len(),
        arrangement.total_coverable_area(),
        arrangement.total_coverable_weight()
    );

    let utility = CoverageUtility::new(&arrangement);
    let max = utility.max_value();

    // Overcast week: recharge is slow (ρ = 12 ⇒ 13 slots/period).
    let cycle = Weather::Overcast.charge_cycle()?;
    let problem = Problem::new(utility, cycle, cycle.periods_in_hours(12.0).max(1))?;
    println!("cycle: {cycle}");

    let greedy = greedy_schedule(&problem);
    let rr = round_robin_schedule(&problem);
    println!("\nweighted-area utility per slot (fraction of max {max:.0}):");
    println!(
        "  greedy      = {:.1}%",
        problem.average_utility_per_slot(&greedy) / max * 100.0
    );
    println!(
        "  round-robin = {:.1}%",
        problem.average_utility_per_slot(&rr) / max * 100.0
    );

    // Where do the ridge cameras land? The greedy staggers them so the
    // weighted ridge keeps coverage in as many slots as possible.
    let camera_slots: Vec<usize> = (40..48)
        .map(|v| greedy.assigned_slot(cool::common::SensorId(v)).index())
        .collect();
    println!("\nridge-camera active slots: {camera_slots:?}");
    let distinct: std::collections::BTreeSet<_> = camera_slots.iter().collect();
    println!(
        "cameras spread over {} distinct slots of {}",
        distinct.len(),
        cycle.slots_per_period()
    );
    Ok(())
}
