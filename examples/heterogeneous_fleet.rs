//! The paper's §VIII future work in action: a heterogeneous fleet (sunny
//! vs shaded panels → different ρ per sensor) with partially-recharged
//! activation, scheduled over the whole horizon by `greedy_horizon`, and a
//! k-coverage utility (each zone wants two simultaneous observers).
//!
//! ```sh
//! cargo run --release --example heterogeneous_fleet
//! ```

// Examples favour brevity: unwrap keeps the algorithmic story readable.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use cool::common::{SensorId, SensorSet};
use cool::core::greedy::greedy_active_naive;
use cool::core::horizon::{greedy_horizon, HorizonSchedule};
use cool::energy::ChargeCycle;
use cool::utility::{KCoverageUtility, UtilityFunction};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 12 sensors: 0–5 in full sun (ρ = 3), 6–9 half-shaded (ρ = 7),
    // 10–11 with a big panel that recharges fast (ρ = 1: active every
    // other slot).
    let mut cycles = Vec::new();
    cycles.extend(std::iter::repeat_n(ChargeCycle::from_rho(3.0, 15.0)?, 6));
    cycles.extend(std::iter::repeat_n(ChargeCycle::from_rho(7.0, 15.0)?, 4));
    cycles.extend(std::iter::repeat_n(ChargeCycle::from_rho(1.0, 15.0)?, 2));

    // Three zones, each wanting 2 simultaneous observers.
    let utility = KCoverageUtility::uniform(
        vec![
            SensorSet::from_indices(12, [0, 1, 2, 6, 10]),
            SensorSet::from_indices(12, [3, 4, 7, 8, 11]),
            SensorSet::from_indices(12, [5, 6, 9, 10, 11]),
        ],
        2,
    );

    let horizon = 24; // six hours of 15-minute slots
    let schedule = greedy_horizon(&utility, &cycles, horizon);
    assert!(schedule.is_feasible(&cycles));

    println!("horizon greedy (per-sensor cycles, partial-recharge activation):");
    println!(
        "  average 2-coverage per slot = {:.4} of {:.0} zones",
        schedule.average_utility(&utility),
        utility.max_value()
    );
    println!("\nactivations per sensor over {horizon} slots:");
    for (v, cycle) in cycles.iter().enumerate() {
        let rho = cycle.rho();
        println!(
            "  v{v:<2} (rho={rho:>2.0})  {:>2} activations  {}",
            schedule.activation_count(SensorId(v)),
            bars(&schedule, v)
        );
    }

    // Contrast: force everyone onto the *worst* sensor's period (the only
    // way to use the homogeneous scheduler) — the fleet's fast rechargers
    // are wasted.
    let worst = ChargeCycle::from_rho(7.0, 15.0)?;
    let homogeneous = greedy_active_naive(&utility, worst.slots_per_period()).unwrap();
    let unrolled = HorizonSchedule::from_period(&homogeneous, horizon / worst.slots_per_period());
    println!(
        "\nhomogeneous fallback (everyone at rho=7): {:.4} per slot → horizon greedy wins by {:.1}%",
        unrolled.average_utility(&utility),
        (schedule.average_utility(&utility) / unrolled.average_utility(&utility) - 1.0) * 100.0
    );
    Ok(())
}

fn bars(schedule: &cool::core::horizon::HorizonSchedule, v: usize) -> String {
    (0..schedule.horizon())
        .map(|t| {
            if schedule.active_set(t).contains(SensorId(v)) {
                '#'
            } else {
                '.'
            }
        })
        .collect()
}
