//! Multi-target surveillance at Fig. 9 scale: 300 sensors and 25 targets
//! deployed geometrically; greedy vs LP-relaxation (on a subsampled
//! instance) vs baselines, plus the exact optimum on a small cut-down copy.
//!
//! ```sh
//! cargo run --release --example multi_target
//! ```

use cool::common::SeedSequence;
use cool::core::baselines::{random_schedule, round_robin_schedule};
use cool::core::greedy::{greedy_schedule, greedy_schedule_lazy};
use cool::core::instances::{geometric_multi_target, random_multi_target};
use cool::core::lp::LpScheduler;
use cool::core::optimal::branch_and_bound;
use cool::core::problem::Problem;
use cool::energy::ChargeCycle;
use cool::geometry::Rect;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seeds = SeedSequence::new(2011);
    let mut rng = seeds.nth_rng(0);
    let cycle = ChargeCycle::paper_sunny();

    // Large geometric instance.
    let (utility, positions, targets) =
        geometric_multi_target(Rect::square(800.0), 300, 25, 100.0, 0.4, &mut rng);
    println!(
        "{} sensors, {} targets; first target at {} covered by {} sensors",
        positions.len(),
        targets.len(),
        targets[0],
        match &utility.parts()[0] {
            cool::utility::AnyUtility::Detection(d) => d.coverage().len(),
            _ => unreachable!(),
        }
    );

    let problem = Problem::new(utility, cycle, cycle.periods_in_hours(12.0))?;
    let greedy = greedy_schedule_lazy(&problem);
    println!("\naverage utility per target per slot:");
    println!(
        "  greedy (lazy)  = {:.4}",
        problem.average_utility_per_target_slot(&greedy)
    );
    println!(
        "  round-robin    = {:.4}",
        problem.average_utility_per_target_slot(&round_robin_schedule(&problem))
    );
    println!(
        "  random         = {:.4}",
        problem.average_utility_per_target_slot(&random_schedule(&problem, &mut rng))
    );

    // LP pipeline + exact optimum are exponential/heavier — demonstrate on a
    // small instance of the same flavour.
    let small = random_multi_target(10, 3, 0.5, 0.4, &mut rng);
    let small_problem = Problem::new(small.clone(), cycle, 1)?;
    let lp = LpScheduler::new(32).schedule(&small_problem, &mut rng)?;
    let greedy_small = greedy_schedule(&small_problem).period_utility(&small);
    let optimal = branch_and_bound(&small, cycle.slots_per_period()).period_utility(&small);
    println!("\nsmall instance (n=10, m=3), one period:");
    println!("  LP relaxation value (upper bound) = {:.4}", lp.lp_value);
    println!(
        "  LP + randomized rounding          = {:.4}",
        lp.rounded_value
    );
    println!("  greedy                            = {greedy_small:.4}");
    println!("  exact optimum (branch & bound)    = {optimal:.4}");
    println!(
        "  greedy/optimal                    = {:.4}",
        greedy_small / optimal
    );
    Ok(())
}
