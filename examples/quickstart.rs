//! Quickstart: schedule 100 solar-powered sensors watching one target and
//! compare the greedy schedule against the paper's closed-form upper bound.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cool::core::baselines::{round_robin_schedule, static_schedule};
use cool::core::bounds::single_target_upper_bound;
use cool::core::greedy::greedy_schedule;
use cool::core::problem::Problem;
use cool::energy::ChargeCycle;
use cool::utility::DetectionUtility;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's testbed setting: sunny weather (discharge 15 min,
    // recharge 45 min → ρ = 3, T = 4 slots), 100 sensors, each detecting an
    // event at the target with probability 0.4, working a 12-hour day.
    let cycle = ChargeCycle::paper_sunny();
    let utility = DetectionUtility::uniform(100, 0.4);
    let problem = Problem::new(utility, cycle, cycle.periods_in_hours(12.0))?;

    println!("cycle: {cycle}");
    println!(
        "horizon: {} slots over {} periods\n",
        problem.horizon_slots(),
        problem.periods()
    );

    let greedy = greedy_schedule(&problem);
    assert!(greedy.is_feasible(problem.cycle()));

    let bound = single_target_upper_bound(problem.n_sensors(), problem.slots_per_period(), 0.4);
    println!("greedy hill-climbing (Algorithm 1):");
    println!(
        "  average utility  = {:.6}",
        problem.average_utility_per_target_slot(&greedy)
    );
    println!("  optimum is below = {bound:.6}  (1 − (1−p)^⌈n/T⌉)");

    for (name, schedule) in [
        ("round-robin", round_robin_schedule(&problem)),
        ("static (all in slot 0)", static_schedule(&problem)),
    ] {
        println!(
            "  {name:<22} = {:.6}",
            problem.average_utility_per_target_slot(&schedule)
        );
    }

    // Peek at one period of the plan.
    println!("\nfirst period of the greedy schedule:");
    for t in 0..problem.slots_per_period() {
        println!("  slot {t}: {} sensors active", greedy.active_set(t).len());
    }
    Ok(())
}
