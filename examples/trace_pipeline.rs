//! The full §VI measurement-to-schedule pipeline as a library user would
//! run it on real data: export (or receive) a harvest-trace CSV, estimate
//! the charging pattern per 2-hour window, quantise it into a charge
//! cycle, and schedule the day with the greedy.
//!
//! ```sh
//! cargo run --example trace_pipeline
//! ```

use cool::common::SeedSequence;
use cool::core::{greedy::greedy_schedule, problem::Problem};
use cool::energy::{
    core_window_stability, estimate_pattern, fit_pattern, HarvestConfig, HarvestTrace, Weather,
};
use cool::utility::DetectionUtility;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A day of measurements lands as CSV (here: synthesised overcast
    //    weather, but `HarvestTrace::from_csv` accepts any logger output in
    //    the same format).
    let measured = HarvestTrace::generate(
        HarvestConfig {
            weather: Weather::Overcast,
            ..HarvestConfig::default()
        },
        &mut SeedSequence::new(77).nth_rng(0),
    );
    let csv = measured.to_csv();
    println!(
        "received {} samples ({} bytes of CSV)",
        measured.samples().len(),
        csv.len()
    );

    // 2. Parse it back (the adopter path) and estimate the pattern.
    let trace = HarvestTrace::from_csv(HarvestConfig::default(), &csv)?;
    let windows = estimate_pattern(&trace, 120.0, 30.0);
    for w in &windows {
        println!(
            "  window {:>4.0}–{:<4.0}: {:5.2} mA → T_r ≈ {:6.1} min",
            w.start_minute, w.end_minute, w.mean_current_ma, w.recharge_minutes
        );
    }
    if let Some(cv) = core_window_stability(&windows) {
        println!("pattern stability across core windows: CV = {cv:.3}");
    }

    // 3. Quantise into a scheduler-ready cycle.
    let pattern = fit_pattern(&windows, 15.0).ok_or("no usable charging window")?;
    let cycle = pattern.quantize()?;
    println!("fitted {pattern} → cycle {cycle}");

    // 4. Schedule the day against it.
    let utility = DetectionUtility::uniform(60, 0.4);
    let problem = Problem::new(utility, cycle, cycle.periods_in_hours(12.0).max(1))?;
    let schedule = greedy_schedule(&problem);
    assert!(schedule.is_feasible(cycle));
    println!(
        "greedy schedule: {:.4} average utility over a {}-slot day",
        problem.average_utility_per_target_slot(&schedule),
        problem.horizon_slots()
    );
    Ok(())
}
