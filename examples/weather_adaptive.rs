//! A simulated week on the rooftop testbed with weather-adaptive
//! re-planning: each morning the charging pattern is estimated from a
//! harvest trace (§VI-A pipeline) and the greedy re-plans for the new ρ;
//! the day then runs on the simulated 100-node testbed.
//!
//! ```sh
//! cargo run --release --example weather_adaptive
//! ```

use cool::common::SeedSequence;
use cool::core::policy::{ActivationPolicy, AdaptivePolicy};
use cool::energy::{
    estimate_pattern, fit_pattern, ChargeCycle, HarvestConfig, HarvestTrace, Weather,
    WeatherGenerator,
};
use cool::testbed::{RooftopDeployment, TestbedSim};
use cool::utility::DetectionUtility;

struct DayPolicy<'a>(&'a mut AdaptivePolicy<DetectionUtility>);

impl ActivationPolicy for DayPolicy<'_> {
    fn decide(&mut self, slot: usize, ready: &cool::common::SensorSet) -> cool::common::SensorSet {
        self.0.decide(slot, ready)
    }
    fn slots_per_period(&self) -> usize {
        self.0.slots_per_period()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seeds = SeedSequence::new(5);
    let mut rng = seeds.nth_rng(0);

    let deployment = RooftopDeployment::paper_layout(&mut rng);
    let utility = DetectionUtility::uniform(deployment.n_nodes(), 0.4);
    let mut policy = AdaptivePolicy::new(utility.clone(), ChargeCycle::paper_sunny());
    let mut weather_gen = WeatherGenerator::new(Weather::Sunny);

    println!("day  weather        estimated pattern        rho  slots  avg utility");
    for day in 0..7 {
        let weather = if day == 0 {
            Weather::Sunny
        } else {
            weather_gen.next_day(&mut rng)
        };

        // Morning measurement: trace → 2-hour windows → fitted pattern.
        let trace = HarvestTrace::generate(
            HarvestConfig {
                weather,
                ..HarvestConfig::default()
            },
            &mut seeds.child(1).nth_rng(day),
        );
        let pattern = fit_pattern(&estimate_pattern(&trace, 120.0, 30.0), 15.0);
        let cycle = pattern
            .and_then(|p| p.quantize().ok())
            .unwrap_or(weather.charge_cycle()?);
        policy.update_cycle(cycle);

        // Daytime execution.
        let slots = cycle.slots_in_hours(12.0).max(1);
        let mut sim = TestbedSim::new(deployment.clone(), cycle);
        let metrics = sim.run(
            DayPolicy(&mut policy),
            &utility,
            slots,
            &mut seeds.child(2).nth_rng(day),
        );

        println!(
            "{:>3}  {:<13}  {:<23}  {:>3.0}  {:>5}  {:.4}",
            day + 1,
            weather.to_string(),
            pattern.map_or("n/a".into(), |p| p.to_string()),
            cycle.rho(),
            slots,
            metrics.average_utility(),
        );
    }
    println!("\nre-planned {} times across the week", policy.replans());
    Ok(())
}
