//! `cool` — schedule solar-powered sensor coverage from a scenario file,
//! and run the charging-pattern measurement pipeline on harvest traces.
//!
//! ```text
//! cool run [scenario.txt] [--set key=value]...   # run a scenario (mixed fleets
//!                                                # and rsc/set-once/hef go to
//!                                                # the LCM tick grid)
//! cool lint <scenario.txt>... [--format text|json|sarif]
//!                                                # static checks, COOL-coded diagnostics
//! cool audit <scenario.txt>... [--format text|json|sarif] [--initial-charge LO[:HI]]
//!                                                # deep static analysis: abstract energy
//!                                                # proofs, dominance, connectivity
//! cool template                                  # print a scenario template
//! cool trace [--weather W] [--seed N] [--out F]  # synthesize a day's harvest trace (CSV)
//! cool estimate <trace.csv> [--discharge M] [--capacity MAH]
//!                                                # fit (T_d, T_r, rho) from a trace
//! cool serve [--addr A] [--threads N] [--queue-cap N] [--cache-cap N]
//!            [--timeout-ms N] [--session-cap N] [--repair-threshold R]
//!            [--mode event|threaded] [--shards N] [--keep-alive-max N]
//!            [--idle-timeout-ms N]
//!            [--smoke scenario.txt] [--session-smoke scenario.txt]
//!                                                # HTTP scheduling daemon
//! cool loadgen [--addr A] [--duration-ms N] [--concurrency N] [--rate R]
//!              [--session-ratio F] [--distinct N] [--seed N]
//!              [--no-keep-alive] [--shutdown] [--json]
//!                                                # drive load at a daemon,
//!                                                # report throughput + latency
//! cool session --replay <deltas.txt> [scenario.txt] [--set key=value]...
//!              [--threshold R]                    # replay a delta script with
//!                                                # warm-start schedule repair
//! cool check [--seed N] [--cases N] [--lp-trials N] [--ratio R]
//!            [--no-serve] [--out DIR] [--replay FILE]
//!                                                # differential-testing harness
//! cool --version                                 # print the version
//! ```
//!
//! `cool lint` and `cool audit` exit 0 when every file is clean (warnings
//! allowed), 1 when any carries errors, and 2 on usage or I/O problems.
//! Malformed flag values (a non-numeric `--threads`, a `--set` without
//! `key=value`, …) exit 2 with a message naming the offending flag.

use cool::check::CheckConfig;
use cool::common::SeedSequence;
use cool::core::RepairConfig;
use cool::energy::{
    core_window_stability, estimate_pattern, fit_pattern, HarvestConfig, HarvestTrace, Weather,
};
use cool::scenario::Scenario;
use cool::serve::{
    run_loadgen, run_session_smoke, run_smoke, LoadgenConfig, ServeMode, Server, ServerConfig,
};
use cool::session::{parse_deltas, SessionEntry, SessionInstance};
use std::process::ExitCode;

/// Writes to stdout, exiting quietly if the reader closed the pipe early
/// (`cool ... | head` must not panic).
fn emit(text: &str) {
    use std::io::Write;
    if std::io::stdout().write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

/// Reports a malformed flag value: exit 2 with a message that names the
/// offending flag instead of dumping the whole usage text.
fn flag_error(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {message}");
    eprintln!("run `cool` without arguments for usage");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--version" | "-V" | "version") => {
            emit(concat!("cool ", env!("CARGO_PKG_VERSION"), "\n"));
            ExitCode::SUCCESS
        }
        Some("template") => {
            emit(&Scenario::template());
            ExitCode::SUCCESS
        }
        Some("run") => run(&args[1..]),
        Some("lint") => lint(&args[1..]),
        Some("audit") => audit(&args[1..]),
        Some("trace") => trace(&args[1..]),
        Some("estimate") => estimate(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("loadgen") => loadgen(&args[1..]),
        Some("session") => session(&args[1..]),
        Some("check") => check(&args[1..]),
        _ => usage(),
    }
}

/// Rendering for `cool lint` / `cool audit` reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OutputFormat {
    /// Human-readable text (the `Report` `Display` impl).
    Text,
    /// The stable JSON diagnostics contract.
    Json,
    /// SARIF v2.1.0 for CI code-scanning pipelines.
    Sarif,
}

impl OutputFormat {
    fn parse(s: &str) -> Option<OutputFormat> {
        match s {
            "text" => Some(OutputFormat::Text),
            "json" => Some(OutputFormat::Json),
            "sarif" => Some(OutputFormat::Sarif),
            _ => None,
        }
    }

    /// Renders one report (text ends with its own newline already).
    fn render(self, report: &cool::lint::Report) {
        match self {
            OutputFormat::Text => emit(&report.to_string()),
            OutputFormat::Json => {
                emit(&report.to_json());
                emit("\n");
            }
            OutputFormat::Sarif => {
                emit(&cool::lint::to_sarif(report));
                emit("\n");
            }
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut format = OutputFormat::Text;
    let mut paths: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => format = OutputFormat::Json, // legacy alias
            "--format" => {
                let Some(f) = iter
                    .next()
                    .map(String::as_str)
                    .and_then(OutputFormat::parse)
                else {
                    return flag_error("--format needs text | json | sarif");
                };
                format = f;
            }
            path if !path.starts_with('-') => paths.push(arg),
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    if paths.is_empty() {
        eprintln!("lint needs at least one scenario file");
        return usage();
    }
    let mut worst = ExitCode::SUCCESS;
    for path in paths {
        match cool::lint::lint_scenario_path(path) {
            Ok(report) => {
                format.render(&report);
                if !report.is_clean() {
                    worst = ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    worst
}

/// Parses `--initial-charge LO[:HI]` into a battery-fraction interval.
fn parse_charge_interval(spec: &str) -> Result<cool::common::Interval, String> {
    let (lo_text, hi_text) = match spec.split_once(':') {
        Some((lo, hi)) => (lo, hi),
        None => (spec, spec),
    };
    let parse = |s: &str| -> Result<f64, String> {
        s.trim()
            .parse::<f64>()
            .map_err(|_| format!("--initial-charge: `{s}` is not a number"))
    };
    let (lo, hi) = (parse(lo_text)?, parse(hi_text)?);
    if !(lo.is_finite() && hi.is_finite() && (0.0..=1.0).contains(&lo) && lo <= hi && hi <= 1.0) {
        return Err(format!(
            "--initial-charge: need 0 <= LO <= HI <= 1, got `{spec}`"
        ));
    }
    Ok(cool::common::Interval::new(lo, hi))
}

/// `cool audit` — the whole-scenario static-analysis bundle: scenario lint
/// plus abstract-interpretation energy proofs (`COOL-E025`), dominance and
/// dead-slot analysis (`COOL-W007`/`W008`), and the connectivity lint
/// (`COOL-W009`). Exit codes match `cool lint`.
fn audit(args: &[String]) -> ExitCode {
    let mut format = OutputFormat::Text;
    let mut options = cool::lint::AuditOptions::default();
    let mut paths: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => format = OutputFormat::Json,
            "--format" => {
                let Some(f) = iter
                    .next()
                    .map(String::as_str)
                    .and_then(OutputFormat::parse)
                else {
                    return flag_error("--format needs text | json | sarif");
                };
                format = f;
            }
            "--initial-charge" => {
                let Some(spec) = iter.next() else {
                    return flag_error(
                        "--initial-charge needs LO or LO:HI (battery fractions in [0, 1])",
                    );
                };
                match parse_charge_interval(spec) {
                    Ok(interval) => options.initial_charge = interval,
                    Err(e) => return flag_error(e),
                }
            }
            path if !path.starts_with('-') => paths.push(arg),
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    if paths.is_empty() {
        eprintln!("audit needs at least one scenario file");
        return usage();
    }
    let mut worst = ExitCode::SUCCESS;
    for path in paths {
        match cool::lint::audit_scenario_path(path, &options) {
            Ok(outcome) => {
                format.render(&outcome.report);
                if format == OutputFormat::Text {
                    eprintln!(
                        "{path}: ∀-initial-charge feasibility {}",
                        if outcome.universally_feasible {
                            "proved"
                        } else {
                            "not proved"
                        }
                    );
                }
                if !outcome.report.is_clean() {
                    worst = ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    worst
}

fn run(args: &[String]) -> ExitCode {
    let mut scenario = Scenario::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--set" => {
                let Some(pair) = iter.next() else {
                    return flag_error("--set needs key=value");
                };
                let Some((key, value)) = pair.split_once('=') else {
                    return flag_error(format!("--set needs key=value, got `{pair}`"));
                };
                if let Err(e) = scenario.set(key.trim(), value.trim()) {
                    return flag_error(format!("--set {pair}: {e}"));
                }
            }
            path if !path.starts_with('-') => {
                let text = match std::fs::read_to_string(path) {
                    Ok(text) => text,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                scenario = match Scenario::parse(&text) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error in {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    // Mixed fleets (per-sensor profile lists) and the strip-cover
    // schedulers live on the LCM tick grid; everything else keeps the
    // homogeneous slot path bit-for-bit.
    if scenario.has_profiles() || scenario.scheduler.is_grid_scheduler() {
        return match scenario.run_fleet() {
            Ok(outcome) => {
                emit(&outcome.to_string());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match scenario.run() {
        Ok(outcome) => {
            emit(&outcome.to_string());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_weather(s: &str) -> Option<Weather> {
    match s {
        "sunny" => Some(Weather::Sunny),
        "partly-cloudy" => Some(Weather::PartlyCloudy),
        "overcast" => Some(Weather::Overcast),
        "rainy" => Some(Weather::Rainy),
        _ => None,
    }
}

fn trace(args: &[String]) -> ExitCode {
    let mut weather = Weather::Sunny;
    let mut seed = 2011u64;
    let mut out: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--weather" => {
                let Some(w) = iter.next().map(String::as_str).and_then(parse_weather) else {
                    return flag_error("--weather needs sunny | partly-cloudy | overcast | rainy");
                };
                weather = w;
            }
            "--seed" => {
                let Some(s) = iter.next().and_then(|s| s.parse().ok()) else {
                    return flag_error("--seed needs a non-negative integer");
                };
                seed = s;
            }
            "--out" => {
                let Some(path) = iter.next() else {
                    return flag_error("--out needs a path");
                };
                out = Some(path.clone());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    let config = HarvestConfig {
        weather,
        ..HarvestConfig::default()
    };
    let trace = HarvestTrace::generate(config, &mut SeedSequence::new(seed).nth_rng(0));
    let csv = trace.to_csv();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, csv) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path} ({weather}, seed {seed})");
        }
        None => emit(&csv),
    }
    ExitCode::SUCCESS
}

fn estimate(args: &[String]) -> ExitCode {
    use std::fmt::Write as _;
    let mut path: Option<&String> = None;
    let mut discharge = 15.0f64;
    let mut capacity = 30.0f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--discharge" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(v) if v > 0.0 => discharge = v,
                _ => return flag_error("--discharge needs positive minutes"),
            },
            "--capacity" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(v) if v > 0.0 => capacity = v,
                _ => return flag_error("--capacity needs positive mAh"),
            },
            p if !p.starts_with('-') => path = Some(arg),
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    let Some(path) = path else {
        eprintln!("estimate needs a trace CSV path");
        return usage();
    };
    let csv = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match HarvestTrace::from_csv(HarvestConfig::default(), &csv) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let windows = estimate_pattern(&trace, 120.0, capacity);
    let mut out = format!("2-hour windows (battery {capacity} mAh):\n");
    for w in &windows {
        let _ = writeln!(
            out,
            "  {:>5.0}–{:<5.0} min  mean {:>6.2} mA  T_r ≈ {:>7.1} min",
            w.start_minute, w.end_minute, w.mean_current_ma, w.recharge_minutes
        );
    }
    if let Some(cv) = core_window_stability(&windows) {
        let _ = writeln!(out, "core-window stability (CV): {cv:.3}");
    }
    if let Some(pattern) = fit_pattern(&windows, discharge) {
        let _ = writeln!(out, "fitted pattern: {pattern}");
        match pattern.quantize() {
            Ok(cycle) => {
                let _ = writeln!(out, "quantized cycle: {cycle}");
            }
            Err(e) => {
                let _ = writeln!(out, "quantization failed: {e}");
            }
        }
        emit(&out);
        ExitCode::SUCCESS
    } else {
        eprintln!("error: no usable charging window in the trace");
        ExitCode::FAILURE
    }
}

#[allow(clippy::too_many_lines)]
fn serve(args: &[String]) -> ExitCode {
    let mut config = ServerConfig::default();
    let mut smoke: Option<String> = None;
    let mut session_smoke: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                let Some(addr) = iter.next() else {
                    return flag_error("--addr needs host:port");
                };
                config.addr.clone_from(addr);
            }
            "--threads" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.threads = n,
                _ => return flag_error("--threads needs a positive integer"),
            },
            "--queue-cap" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.queue_cap = n,
                _ => return flag_error("--queue-cap needs a positive integer"),
            },
            "--cache-cap" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.cache_cap = n,
                _ => return flag_error("--cache-cap needs a positive integer"),
            },
            "--timeout-ms" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n >= 1 => config.timeout_ms = n,
                _ => return flag_error("--timeout-ms needs a positive integer"),
            },
            "--session-cap" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.session_cap = n,
                _ => return flag_error("--session-cap needs a positive integer"),
            },
            "--repair-threshold" => match iter.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(r) if (0.0..=1.0).contains(&r) => config.repair_threshold = r,
                _ => return flag_error("--repair-threshold needs a fraction in [0, 1]"),
            },
            "--mode" => {
                let Some(mode) = iter.next().map(String::as_str).and_then(ServeMode::parse) else {
                    return flag_error("--mode needs event | threaded");
                };
                config.mode = mode;
            }
            "--shards" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.shards = n,
                _ => return flag_error("--shards needs a positive integer"),
            },
            "--keep-alive-max" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.keep_alive_max = n,
                _ => return flag_error("--keep-alive-max needs a positive integer"),
            },
            "--idle-timeout-ms" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n >= 1 => config.idle_timeout_ms = n,
                _ => return flag_error("--idle-timeout-ms needs a positive integer"),
            },
            "--smoke" => {
                let Some(path) = iter.next() else {
                    return flag_error("--smoke needs a scenario path");
                };
                smoke = Some(path.clone());
            }
            "--session-smoke" => {
                let Some(path) = iter.next() else {
                    return flag_error("--session-smoke needs a scenario path");
                };
                session_smoke = Some(path.clone());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }

    if let Some(path) = smoke {
        // Self-contained CI probe: boot on an ephemeral port, drive the
        // full protocol, print the final /metrics page for scraping.
        return match run_smoke(&path) {
            Ok(page) => {
                emit(&page);
                eprintln!("serve smoke: ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("serve smoke failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(path) = session_smoke {
        // The session-lifecycle CI probe: PUT → PATCH (with a full-repair
        // forcing ρ change) → GET must match an offline from-scratch
        // solve bit-for-bit → DELETE answers 410 afterwards.
        return match run_session_smoke(&path) {
            Ok(page) => {
                emit(&page);
                eprintln!("session smoke: ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("session smoke failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mode = config.mode;
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Ok(addr) = server.local_addr() {
        eprintln!(
            "cool-serve listening on http://{addr} ({} mode, POST /v1/shutdown to stop)",
            mode.as_str()
        );
    }
    match server.run() {
        Ok(()) => {
            eprintln!("cool-serve drained in-flight requests and stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `cool loadgen` — drive deterministic schedule/session traffic at a
/// running daemon and report throughput and latency percentiles.
/// Exit codes: 0 on a completed run, 1 when the daemon is unreachable,
/// 2 on usage problems.
fn loadgen(args: &[String]) -> ExitCode {
    let mut config = LoadgenConfig::default();
    let mut json = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                let Some(addr) = iter.next() else {
                    return flag_error("--addr needs host:port");
                };
                config.addr.clone_from(addr);
            }
            "--duration-ms" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n >= 1 => config.duration_ms = n,
                _ => return flag_error("--duration-ms needs a positive integer"),
            },
            "--concurrency" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.concurrency = n,
                _ => return flag_error("--concurrency needs a positive integer"),
            },
            "--rate" => match iter.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(r) if r > 0.0 && r.is_finite() => config.rate = Some(r),
                _ => return flag_error("--rate needs positive requests/second"),
            },
            "--session-ratio" => match iter.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(f) if (0.0..=1.0).contains(&f) => config.session_ratio = f,
                _ => return flag_error("--session-ratio needs a fraction in [0, 1]"),
            },
            "--distinct" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.distinct = n,
                _ => return flag_error("--distinct needs a positive integer"),
            },
            "--seed" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(n) => config.seed = n,
                None => return flag_error("--seed needs a non-negative integer"),
            },
            "--no-keep-alive" => config.keep_alive = false,
            "--shutdown" => config.shutdown_after = true,
            "--json" => json = true,
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    match run_loadgen(&config) {
        Ok(report) => {
            if json {
                emit(&report.to_json());
                emit("\n");
            } else {
                emit(&report.render());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("loadgen failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses the `cool session` arguments into (scenario, delta-file path,
/// repair config), or the exit code to bail with.
fn parse_session_args(args: &[String]) -> Result<(Scenario, String, RepairConfig), ExitCode> {
    let mut scenario = Scenario::default();
    let mut replay_path: Option<String> = None;
    let mut config = RepairConfig::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--replay" => {
                let Some(path) = iter.next() else {
                    return Err(flag_error("--replay needs a delta file"));
                };
                replay_path = Some(path.clone());
            }
            "--threshold" => match iter.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(r) if (0.0..=1.0).contains(&r) => config.full_threshold = r,
                _ => return Err(flag_error("--threshold needs a fraction in [0, 1]")),
            },
            "--set" => {
                let Some(pair) = iter.next() else {
                    return Err(flag_error("--set needs key=value"));
                };
                let Some((key, value)) = pair.split_once('=') else {
                    return Err(flag_error(format!("--set needs key=value, got `{pair}`")));
                };
                if let Err(e) = scenario.set(key.trim(), value.trim()) {
                    return Err(flag_error(format!("--set {pair}: {e}")));
                }
            }
            path if !path.starts_with('-') => {
                let text = match std::fs::read_to_string(path) {
                    Ok(text) => text,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return Err(ExitCode::FAILURE);
                    }
                };
                scenario = match Scenario::parse(&text) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error in {path}: {e}");
                        return Err(ExitCode::FAILURE);
                    }
                };
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return Err(usage());
            }
        }
    }
    let Some(replay_path) = replay_path else {
        eprintln!("session needs --replay <delta-file>");
        return Err(usage());
    };
    Ok((scenario, replay_path, config))
}

/// `cool session` — replay a delta script against a scenario with
/// warm-start schedule repair, printing per-delta repair telemetry.
/// Exit codes: 0 when every delta applies, 1 when one is rejected or the
/// instance cannot be solved, 2 on usage problems.
fn session(args: &[String]) -> ExitCode {
    use std::fmt::Write as _;
    let (scenario, replay_path, config) = match parse_session_args(args) {
        Ok(parsed) => parsed,
        Err(code) => return code,
    };
    let script = match std::fs::read_to_string(&replay_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {replay_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let deltas = match parse_deltas(&script) {
        Ok(deltas) => deltas,
        Err(e) => {
            eprintln!("error in {replay_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut entry = match SessionInstance::from_scenario(&scenario).and_then(SessionEntry::solve) {
        Ok(entry) => entry,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut out = format!(
        "session: {} sensors, {} targets, rho {}, initial value {:.6}\n",
        entry.instance().n(),
        entry.instance().targets().len(),
        entry.instance().cycle().rho(),
        entry.value(),
    );
    for (i, delta) in deltas.iter().enumerate() {
        match entry.patch(delta, &config) {
            Ok(stats) => {
                let _ = writeln!(
                    out,
                    "  delta {:>3}  {:<28} {:>11}  cells {:>8}  dirty {:>4}  value {:.6}",
                    i + 1,
                    delta.render(),
                    stats.mode.as_str(),
                    stats.cells_touched,
                    stats.dirty_sensors,
                    stats.value,
                );
            }
            Err(e) => {
                emit(&out);
                eprintln!(
                    "error: delta {} (`{}`) rejected: {e}",
                    i + 1,
                    delta.render()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let _ = writeln!(
        out,
        "applied {} deltas; final value {:.6} over {} sensors alive",
        deltas.len(),
        entry.value(),
        entry.instance().alive().len(),
    );
    emit(&out);
    ExitCode::SUCCESS
}

/// `cool check` — the deterministic differential-testing harness.
/// Exit codes: 0 every relation held, 1 any violation or harness error,
/// 2 usage problems.
fn check(args: &[String]) -> ExitCode {
    let mut config = CheckConfig::default();
    let mut out_dir: Option<String> = None;
    let mut replay_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(n) => config.seed = n,
                None => return flag_error("--seed needs a non-negative integer"),
            },
            "--cases" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.cases = n,
                _ => return flag_error("--cases needs a positive integer"),
            },
            "--lp-trials" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.lp_trials = n,
                _ => return flag_error("--lp-trials needs a positive integer"),
            },
            "--ratio" => match iter.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(r) if r > 0.0 && r.is_finite() => config.ratio = r,
                _ => return flag_error("--ratio needs a positive number"),
            },
            "--no-serve" => config.serve_faults = false,
            "--out" => {
                let Some(dir) = iter.next() else {
                    return flag_error("--out needs a directory path");
                };
                out_dir = Some(dir.clone());
            }
            "--replay" => {
                let Some(path) = iter.next() else {
                    return flag_error("--replay needs a counterexample file");
                };
                replay_path = Some(path.clone());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }

    let report = match replay_path {
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) => return flag_error(format!("--replay: cannot read {path}: {e}")),
            };
            match cool::check::replay(&text, &config) {
                Ok(report) => report,
                Err(e) => return flag_error(format!("--replay {path}: {e}")),
            }
        }
        None => cool::check::run(&config),
    };

    emit(&report.render());
    for ce in &report.counterexamples {
        let dir = out_dir.clone().unwrap_or_else(|| ".".to_string());
        let path = std::path::Path::new(&dir).join(&ce.file_name);
        match std::fs::write(&path, &ce.contents) {
            Ok(()) => eprintln!("wrote counterexample {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cool run [scenario.txt] [--set key=value]... \
         | cool lint <scenario.txt>... [--format text|json|sarif] \
         | cool audit <scenario.txt>... [--format text|json|sarif] \
         [--initial-charge LO[:HI]] \
         | cool template \
         | cool trace [--weather W] [--seed N] [--out F] \
         | cool estimate <trace.csv> [--discharge M] [--capacity MAH] \
         | cool serve [--addr A] [--threads N] [--queue-cap N] [--cache-cap N] \
         [--timeout-ms N] [--session-cap N] [--repair-threshold R] \
         [--mode event|threaded] [--shards N] [--keep-alive-max N] \
         [--idle-timeout-ms N] \
         [--smoke scenario.txt] [--session-smoke scenario.txt] \
         | cool loadgen [--addr A] [--duration-ms N] [--concurrency N] [--rate R] \
         [--session-ratio F] [--distinct N] [--seed N] [--no-keep-alive] \
         [--shutdown] [--json] \
         | cool session --replay <deltas.txt> [scenario.txt] [--set key=value]... \
         [--threshold R] \
         | cool check [--seed N] [--cases N] [--lp-trials N] [--ratio R] \
         [--no-serve] [--out DIR] [--replay FILE] \
         | cool --version"
    );
    ExitCode::from(2)
}
