//! `cool` — schedule solar-powered sensor coverage from a scenario file,
//! and run the charging-pattern measurement pipeline on harvest traces.
//!
//! ```text
//! cool run [scenario.txt] [--set key=value]...   # run a scenario
//! cool lint <scenario.txt>... [--json]           # static checks, COOL-coded diagnostics
//! cool template                                  # print a scenario template
//! cool trace [--weather W] [--seed N] [--out F]  # synthesize a day's harvest trace (CSV)
//! cool estimate <trace.csv> [--discharge M] [--capacity MAH]
//!                                                # fit (T_d, T_r, rho) from a trace
//! cool serve [--addr A] [--threads N] [--queue-cap N] [--cache-cap N]
//!            [--timeout-ms N] [--smoke scenario.txt]
//!                                                # HTTP scheduling daemon
//! cool check [--seed N] [--cases N] [--lp-trials N] [--ratio R]
//!            [--no-serve] [--out DIR] [--replay FILE]
//!                                                # differential-testing harness
//! cool --version                                 # print the version
//! ```
//!
//! `cool lint` exits 0 when every file is clean (warnings allowed), 1 when
//! any carries errors, and 2 on usage or I/O problems. Malformed flag
//! values (a non-numeric `--threads`, a `--set` without `key=value`, …)
//! exit 2 with a message naming the offending flag.

use cool::check::CheckConfig;
use cool::common::SeedSequence;
use cool::energy::{
    core_window_stability, estimate_pattern, fit_pattern, HarvestConfig, HarvestTrace, Weather,
};
use cool::scenario::Scenario;
use cool::serve::{run_smoke, Server, ServerConfig};
use std::process::ExitCode;

/// Writes to stdout, exiting quietly if the reader closed the pipe early
/// (`cool ... | head` must not panic).
fn emit(text: &str) {
    use std::io::Write;
    if std::io::stdout().write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

/// Reports a malformed flag value: exit 2 with a message that names the
/// offending flag instead of dumping the whole usage text.
fn flag_error(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {message}");
    eprintln!("run `cool` without arguments for usage");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--version" | "-V" | "version") => {
            emit(concat!("cool ", env!("CARGO_PKG_VERSION"), "\n"));
            ExitCode::SUCCESS
        }
        Some("template") => {
            emit(&Scenario::template());
            ExitCode::SUCCESS
        }
        Some("run") => run(&args[1..]),
        Some("lint") => lint(&args[1..]),
        Some("trace") => trace(&args[1..]),
        Some("estimate") => estimate(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("check") => check(&args[1..]),
        _ => usage(),
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut paths: Vec<&String> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            path if !path.starts_with('-') => paths.push(arg),
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    if paths.is_empty() {
        eprintln!("lint needs at least one scenario file");
        return usage();
    }
    let mut worst = ExitCode::SUCCESS;
    for path in paths {
        match cool::lint::lint_scenario_path(path) {
            Ok(report) => {
                if json {
                    emit(&report.to_json());
                    emit("\n");
                } else {
                    emit(&report.to_string());
                }
                if !report.is_clean() {
                    worst = ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    worst
}

fn run(args: &[String]) -> ExitCode {
    let mut scenario = Scenario::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--set" => {
                let Some(pair) = iter.next() else {
                    return flag_error("--set needs key=value");
                };
                let Some((key, value)) = pair.split_once('=') else {
                    return flag_error(format!("--set needs key=value, got `{pair}`"));
                };
                if let Err(e) = scenario.set(key.trim(), value.trim()) {
                    return flag_error(format!("--set {pair}: {e}"));
                }
            }
            path if !path.starts_with('-') => {
                let text = match std::fs::read_to_string(path) {
                    Ok(text) => text,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                scenario = match Scenario::parse(&text) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error in {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    match scenario.run() {
        Ok(outcome) => {
            emit(&outcome.to_string());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_weather(s: &str) -> Option<Weather> {
    match s {
        "sunny" => Some(Weather::Sunny),
        "partly-cloudy" => Some(Weather::PartlyCloudy),
        "overcast" => Some(Weather::Overcast),
        "rainy" => Some(Weather::Rainy),
        _ => None,
    }
}

fn trace(args: &[String]) -> ExitCode {
    let mut weather = Weather::Sunny;
    let mut seed = 2011u64;
    let mut out: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--weather" => {
                let Some(w) = iter.next().map(String::as_str).and_then(parse_weather) else {
                    return flag_error("--weather needs sunny | partly-cloudy | overcast | rainy");
                };
                weather = w;
            }
            "--seed" => {
                let Some(s) = iter.next().and_then(|s| s.parse().ok()) else {
                    return flag_error("--seed needs a non-negative integer");
                };
                seed = s;
            }
            "--out" => {
                let Some(path) = iter.next() else {
                    return flag_error("--out needs a path");
                };
                out = Some(path.clone());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    let config = HarvestConfig {
        weather,
        ..HarvestConfig::default()
    };
    let trace = HarvestTrace::generate(config, &mut SeedSequence::new(seed).nth_rng(0));
    let csv = trace.to_csv();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, csv) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path} ({weather}, seed {seed})");
        }
        None => emit(&csv),
    }
    ExitCode::SUCCESS
}

fn estimate(args: &[String]) -> ExitCode {
    use std::fmt::Write as _;
    let mut path: Option<&String> = None;
    let mut discharge = 15.0f64;
    let mut capacity = 30.0f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--discharge" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(v) if v > 0.0 => discharge = v,
                _ => return flag_error("--discharge needs positive minutes"),
            },
            "--capacity" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(v) if v > 0.0 => capacity = v,
                _ => return flag_error("--capacity needs positive mAh"),
            },
            p if !p.starts_with('-') => path = Some(arg),
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    let Some(path) = path else {
        eprintln!("estimate needs a trace CSV path");
        return usage();
    };
    let csv = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match HarvestTrace::from_csv(HarvestConfig::default(), &csv) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let windows = estimate_pattern(&trace, 120.0, capacity);
    let mut out = format!("2-hour windows (battery {capacity} mAh):\n");
    for w in &windows {
        let _ = writeln!(
            out,
            "  {:>5.0}–{:<5.0} min  mean {:>6.2} mA  T_r ≈ {:>7.1} min",
            w.start_minute, w.end_minute, w.mean_current_ma, w.recharge_minutes
        );
    }
    if let Some(cv) = core_window_stability(&windows) {
        let _ = writeln!(out, "core-window stability (CV): {cv:.3}");
    }
    if let Some(pattern) = fit_pattern(&windows, discharge) {
        let _ = writeln!(out, "fitted pattern: {pattern}");
        match pattern.quantize() {
            Ok(cycle) => {
                let _ = writeln!(out, "quantized cycle: {cycle}");
            }
            Err(e) => {
                let _ = writeln!(out, "quantization failed: {e}");
            }
        }
        emit(&out);
        ExitCode::SUCCESS
    } else {
        eprintln!("error: no usable charging window in the trace");
        ExitCode::FAILURE
    }
}

fn serve(args: &[String]) -> ExitCode {
    let mut config = ServerConfig::default();
    let mut smoke: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                let Some(addr) = iter.next() else {
                    return flag_error("--addr needs host:port");
                };
                config.addr.clone_from(addr);
            }
            "--threads" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.threads = n,
                _ => return flag_error("--threads needs a positive integer"),
            },
            "--queue-cap" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.queue_cap = n,
                _ => return flag_error("--queue-cap needs a positive integer"),
            },
            "--cache-cap" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.cache_cap = n,
                _ => return flag_error("--cache-cap needs a positive integer"),
            },
            "--timeout-ms" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n >= 1 => config.timeout_ms = n,
                _ => return flag_error("--timeout-ms needs a positive integer"),
            },
            "--smoke" => {
                let Some(path) = iter.next() else {
                    return flag_error("--smoke needs a scenario path");
                };
                smoke = Some(path.clone());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }

    if let Some(path) = smoke {
        // Self-contained CI probe: boot on an ephemeral port, drive the
        // full protocol, print the final /metrics page for scraping.
        return match run_smoke(&path) {
            Ok(page) => {
                emit(&page);
                eprintln!("serve smoke: ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("serve smoke failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Ok(addr) = server.local_addr() {
        eprintln!("cool-serve listening on http://{addr} (POST /v1/shutdown to stop)");
    }
    match server.run() {
        Ok(()) => {
            eprintln!("cool-serve drained in-flight requests and stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `cool check` — the deterministic differential-testing harness.
/// Exit codes: 0 every relation held, 1 any violation or harness error,
/// 2 usage problems.
fn check(args: &[String]) -> ExitCode {
    let mut config = CheckConfig::default();
    let mut out_dir: Option<String> = None;
    let mut replay_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(n) => config.seed = n,
                None => return flag_error("--seed needs a non-negative integer"),
            },
            "--cases" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.cases = n,
                _ => return flag_error("--cases needs a positive integer"),
            },
            "--lp-trials" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.lp_trials = n,
                _ => return flag_error("--lp-trials needs a positive integer"),
            },
            "--ratio" => match iter.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(r) if r > 0.0 && r.is_finite() => config.ratio = r,
                _ => return flag_error("--ratio needs a positive number"),
            },
            "--no-serve" => config.serve_faults = false,
            "--out" => {
                let Some(dir) = iter.next() else {
                    return flag_error("--out needs a directory path");
                };
                out_dir = Some(dir.clone());
            }
            "--replay" => {
                let Some(path) = iter.next() else {
                    return flag_error("--replay needs a counterexample file");
                };
                replay_path = Some(path.clone());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }

    let report = match replay_path {
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) => return flag_error(format!("--replay: cannot read {path}: {e}")),
            };
            match cool::check::replay(&text, &config) {
                Ok(report) => report,
                Err(e) => return flag_error(format!("--replay {path}: {e}")),
            }
        }
        None => cool::check::run(&config),
    };

    emit(&report.render());
    for ce in &report.counterexamples {
        let dir = out_dir.clone().unwrap_or_else(|| ".".to_string());
        let path = std::path::Path::new(&dir).join(&ce.file_name);
        match std::fs::write(&path, &ce.contents) {
            Ok(()) => eprintln!("wrote counterexample {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cool run [scenario.txt] [--set key=value]... \
         | cool lint <scenario.txt>... [--json] \
         | cool template \
         | cool trace [--weather W] [--seed N] [--out F] \
         | cool estimate <trace.csv> [--discharge M] [--capacity MAH] \
         | cool serve [--addr A] [--threads N] [--queue-cap N] [--cache-cap N] \
         [--timeout-ms N] [--smoke scenario.txt] \
         | cool check [--seed N] [--cases N] [--lp-trials N] [--ratio R] \
         [--no-serve] [--out DIR] [--replay FILE] \
         | cool --version"
    );
    ExitCode::from(2)
}
