//! `cool` — schedule solar-powered sensor coverage from a scenario file,
//! and run the charging-pattern measurement pipeline on harvest traces.
//!
//! ```text
//! cool run [scenario.txt] [--set key=value]...   # run a scenario
//! cool lint <scenario.txt>... [--json]           # static checks, COOL-coded diagnostics
//! cool template                                  # print a scenario template
//! cool trace [--weather W] [--seed N] [--out F]  # synthesize a day's harvest trace (CSV)
//! cool estimate <trace.csv> [--discharge M] [--capacity MAH]
//!                                                # fit (T_d, T_r, rho) from a trace
//! ```
//!
//! `cool lint` exits 0 when every file is clean (warnings allowed), 1 when
//! any carries errors, and 2 on usage or I/O problems.

use cool::common::SeedSequence;
use cool::energy::{
    core_window_stability, estimate_pattern, fit_pattern, HarvestConfig, HarvestTrace, Weather,
};
use cool::scenario::Scenario;
use std::process::ExitCode;

/// Writes to stdout, exiting quietly if the reader closed the pipe early
/// (`cool ... | head` must not panic).
fn emit(text: &str) {
    use std::io::Write;
    if std::io::stdout().write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("template") => {
            emit(&Scenario::template());
            ExitCode::SUCCESS
        }
        Some("run") => run(&args[1..]),
        Some("lint") => lint(&args[1..]),
        Some("trace") => trace(&args[1..]),
        Some("estimate") => estimate(&args[1..]),
        _ => usage(),
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut paths: Vec<&String> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            path if !path.starts_with('-') => paths.push(arg),
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    if paths.is_empty() {
        eprintln!("lint needs at least one scenario file");
        return usage();
    }
    let mut worst = ExitCode::SUCCESS;
    for path in paths {
        match cool::lint::lint_scenario_path(path) {
            Ok(report) => {
                if json {
                    emit(&report.to_json());
                    emit("\n");
                } else {
                    emit(&report.to_string());
                }
                if !report.is_clean() {
                    worst = ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    worst
}

fn run(args: &[String]) -> ExitCode {
    let mut scenario = Scenario::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--set" => {
                let Some(pair) = iter.next() else {
                    eprintln!("--set needs key=value");
                    return usage();
                };
                let Some((key, value)) = pair.split_once('=') else {
                    eprintln!("--set needs key=value, got `{pair}`");
                    return usage();
                };
                if let Err(e) = scenario.set(key.trim(), value.trim()) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            path if !path.starts_with('-') => {
                let text = match std::fs::read_to_string(path) {
                    Ok(text) => text,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                scenario = match Scenario::parse(&text) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error in {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    match scenario.run() {
        Ok(outcome) => {
            emit(&outcome.to_string());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_weather(s: &str) -> Option<Weather> {
    match s {
        "sunny" => Some(Weather::Sunny),
        "partly-cloudy" => Some(Weather::PartlyCloudy),
        "overcast" => Some(Weather::Overcast),
        "rainy" => Some(Weather::Rainy),
        _ => None,
    }
}

fn trace(args: &[String]) -> ExitCode {
    let mut weather = Weather::Sunny;
    let mut seed = 2011u64;
    let mut out: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--weather" => {
                let Some(w) = iter.next().map(String::as_str).and_then(parse_weather) else {
                    eprintln!("--weather needs sunny | partly-cloudy | overcast | rainy");
                    return ExitCode::FAILURE;
                };
                weather = w;
            }
            "--seed" => {
                let Some(s) = iter.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                };
                seed = s;
            }
            "--out" => {
                let Some(path) = iter.next() else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                out = Some(path.clone());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    let config = HarvestConfig {
        weather,
        ..HarvestConfig::default()
    };
    let trace = HarvestTrace::generate(config, &mut SeedSequence::new(seed).nth_rng(0));
    let csv = trace.to_csv();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, csv) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path} ({weather}, seed {seed})");
        }
        None => emit(&csv),
    }
    ExitCode::SUCCESS
}

fn estimate(args: &[String]) -> ExitCode {
    use std::fmt::Write as _;
    let mut path: Option<&String> = None;
    let mut discharge = 15.0f64;
    let mut capacity = 30.0f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--discharge" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(v) if v > 0.0 => discharge = v,
                _ => {
                    eprintln!("--discharge needs positive minutes");
                    return ExitCode::FAILURE;
                }
            },
            "--capacity" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(v) if v > 0.0 => capacity = v,
                _ => {
                    eprintln!("--capacity needs positive mAh");
                    return ExitCode::FAILURE;
                }
            },
            p if !p.starts_with('-') => path = Some(arg),
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    let Some(path) = path else {
        eprintln!("estimate needs a trace CSV path");
        return usage();
    };
    let csv = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match HarvestTrace::from_csv(HarvestConfig::default(), &csv) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let windows = estimate_pattern(&trace, 120.0, capacity);
    let mut out = format!("2-hour windows (battery {capacity} mAh):\n");
    for w in &windows {
        let _ = writeln!(
            out,
            "  {:>5.0}–{:<5.0} min  mean {:>6.2} mA  T_r ≈ {:>7.1} min",
            w.start_minute, w.end_minute, w.mean_current_ma, w.recharge_minutes
        );
    }
    if let Some(cv) = core_window_stability(&windows) {
        let _ = writeln!(out, "core-window stability (CV): {cv:.3}");
    }
    if let Some(pattern) = fit_pattern(&windows, discharge) {
        let _ = writeln!(out, "fitted pattern: {pattern}");
        match pattern.quantize() {
            Ok(cycle) => {
                let _ = writeln!(out, "quantized cycle: {cycle}");
            }
            Err(e) => {
                let _ = writeln!(out, "quantization failed: {e}");
            }
        }
        emit(&out);
        ExitCode::SUCCESS
    } else {
        eprintln!("error: no usable charging window in the trace");
        ExitCode::FAILURE
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cool run [scenario.txt] [--set key=value]... \
         | cool lint <scenario.txt>... [--json] \
         | cool template \
         | cool trace [--weather W] [--seed N] [--out F] \
         | cool estimate <trace.csv> [--discharge M] [--capacity MAH]"
    );
    ExitCode::from(2)
}
