//! `cool` — coverage scheduling for solar-powered wireless sensor networks.
//!
//! A from-scratch Rust reproduction of *"Cool: On Coverage with
//! Solar-Powered Sensors"* (Tang, Li, Shen, Zhang, Dai, Das — ICDCS 2011):
//! dynamic node-activation scheduling that maximises a submodular coverage
//! utility subject to solar recharge cycles, with the paper's greedy
//! hill-climbing ½-approximation at its centre.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`common`] | `cool-common` | sensor-set bitsets, ids, stats, seeds, tables |
//! | [`geometry`] | `cool-geometry` | sensing regions, deployments, arrangements |
//! | [`energy`] | `cool-energy` | ρ/T slot algebra, batteries, solar harvest, weather |
//! | [`utility`] | `cool-utility` | submodular utilities + incremental evaluators |
//! | [`core`] | `cool-core` | greedy / LP / exact schedulers, bounds, baselines |
//! | [`lint`] | `cool-lint` | static invariant analysis with `COOL-Exxx` diagnostics |
//! | [`scenario`] | `cool-scenario` | declarative `key = value` scenario files |
//! | [`session`] | `cool-session` | live instances, delta patches, warm-start repair |
//! | [`serve`] | `cool-serve` | HTTP/1.1 JSON scheduling daemon with caching + metrics |
//! | [`check`] | `cool-check` | differential-testing + fault-injection harness |
//! | [`testbed`] | `cool-testbed` | the simulated rooftop testbed |
//!
//! # Quickstart
//!
//! ```
//! use cool::core::{greedy::greedy_schedule, problem::Problem};
//! use cool::energy::ChargeCycle;
//! use cool::utility::DetectionUtility;
//!
//! // 100 solar sensors watch one target (p = 0.4); sunny recharge cycle.
//! let problem = Problem::new(
//!     DetectionUtility::uniform(100, 0.4),
//!     ChargeCycle::paper_sunny(),
//!     12, // a 12-hour working day
//! )?;
//! let schedule = greedy_schedule(&problem);
//! assert!(schedule.is_feasible(problem.cycle()));
//! println!("average utility: {:.4}", problem.average_utility_per_target_slot(&schedule));
//! # Ok::<(), cool::core::problem::ProblemError>(())
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `cargo run -p cool-bench --bin repro -- list` for the paper-figure
//! reproduction harness.

pub use cool_check as check;
pub use cool_common as common;
pub use cool_core as core;
pub use cool_energy as energy;
pub use cool_geometry as geometry;
pub use cool_lint as lint;
pub use cool_scenario as scenario;
pub use cool_serve as serve;
pub use cool_session as session;
pub use cool_testbed as testbed;
pub use cool_utility as utility;
