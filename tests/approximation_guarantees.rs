//! Workspace-level property tests of the paper's theorems, run through the
//! public facade API on randomly generated instances.

use cool::common::SeedSequence;
use cool::core::greedy::{greedy_active_naive, greedy_passive_naive};
use cool::core::instances::random_multi_target;
use cool::core::optimal::exhaustive_optimal;
use cool::core::schedule::ScheduleMode;
use cool::utility::check_utility;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 4.1: greedy ≥ ½·OPT, exhaustively verified.
    #[test]
    fn greedy_half_approximation(n in 2usize..7, m in 1usize..4,
                                 slots in 2usize..4, seed in any::<u64>()) {
        let mut rng = SeedSequence::new(seed).nth_rng(0);
        let u = random_multi_target(n, m, 0.5, 0.4, &mut rng);
        let greedy = greedy_active_naive(&u, slots).unwrap().period_utility(&u);
        let opt = exhaustive_optimal(&u, slots, ScheduleMode::ActiveSlot).period_utility(&u);
        prop_assert!(greedy + 1e-9 >= 0.5 * opt);
        prop_assert!(greedy <= opt + 1e-9);
    }

    /// Theorem 4.4: the passive-slot dual also ≥ ½·OPT.
    #[test]
    fn passive_half_approximation(n in 2usize..6, slots in 2usize..4, seed in any::<u64>()) {
        let mut rng = SeedSequence::new(seed).nth_rng(1);
        let u = random_multi_target(n, 2, 0.5, 0.4, &mut rng);
        let greedy = greedy_passive_naive(&u, slots).unwrap().period_utility(&u);
        let opt = exhaustive_optimal(&u, slots, ScheduleMode::PassiveSlot).period_utility(&u);
        prop_assert!(greedy + 1e-9 >= 0.5 * opt);
    }

    /// Every generated instance satisfies the §II-C utility axioms the
    /// guarantees rest on.
    #[test]
    fn instances_satisfy_utility_axioms(n in 1usize..10, m in 1usize..5, seed in any::<u64>()) {
        let mut rng = SeedSequence::new(seed).nth_rng(2);
        let u = random_multi_target(n, m, 0.4, 0.6, &mut rng);
        prop_assert!(check_utility(&u, 80, &mut rng).is_ok());
    }

    /// The greedy never assigns an out-of-range slot and covers every
    /// sensor exactly once (feasibility half of Theorem 4.3).
    #[test]
    fn greedy_assignment_shape(n in 1usize..20, slots in 1usize..6, seed in any::<u64>()) {
        let mut rng = SeedSequence::new(seed).nth_rng(3);
        let u = random_multi_target(n, 2, 0.5, 0.4, &mut rng);
        let schedule = greedy_active_naive(&u, slots).unwrap();
        prop_assert_eq!(schedule.assignment().len(), n);
        prop_assert!(schedule.assignment().iter().all(|&t| t < slots));
        let total: usize = (0..slots).map(|t| schedule.active_set(t).len()).sum();
        prop_assert_eq!(total, n, "each sensor active exactly once per period");
    }
}
