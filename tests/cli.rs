//! End-to-end tests of the `cool` CLI binary.

use std::process::Command;

fn cool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cool"))
}

#[test]
fn template_round_trips_through_a_file() {
    let out = cool().arg("template").output().expect("binary runs");
    assert!(out.status.success());
    let template = String::from_utf8(out.stdout).expect("utf-8");
    assert!(template.contains("sensors"));

    let dir = std::env::temp_dir().join(format!("cool_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scenario.txt");
    std::fs::write(&path, &template).unwrap();

    let out = cool()
        .args([
            "run",
            path.to_str().unwrap(),
            "--set",
            "sensors=16",
            "--set",
            "targets=2",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("16 sensors, 2 targets"));
    assert!(text.contains("avg utility / target / slot"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_without_file_uses_defaults_with_overrides() {
    let out = cool()
        .args([
            "run",
            "--set",
            "sensors=12",
            "--set",
            "scheduler=round-robin",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("round-robin scheduler"));
}

#[test]
fn bad_key_fails_with_message() {
    let out = cool()
        .args(["run", "--set", "volume=11"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown key"));
}

#[test]
fn bad_cycle_fails_with_message() {
    let out = cool()
        .args(["run", "--set", "recharge_minutes=40"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("integer"));
}

#[test]
fn missing_file_fails_cleanly() {
    let out = cool()
        .args(["run", "/nonexistent/scenario.txt"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn usage_on_no_arguments() {
    let out = cool().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn trace_estimate_pipeline_round_trips() {
    let dir = std::env::temp_dir().join(format!("cool_cli_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sunny.csv");

    let out = cool()
        .args([
            "trace",
            "--weather",
            "sunny",
            "--seed",
            "9",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = cool()
        .args(["estimate", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("fitted pattern"), "{text}");
    assert!(
        text.contains("rho=3.0"),
        "sunny trace quantizes to the paper cycle: {text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn estimate_rejects_garbage() {
    let dir = std::env::temp_dir().join(format!("cool_cli_garbage_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.csv");
    std::fs::write(&path, "not,a,trace\n").unwrap();
    let out = cool()
        .args(["estimate", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("header"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn version_flag_prints_the_workspace_version() {
    for flag in ["--version", "-V", "version"] {
        let out = cool().arg(flag).output().expect("binary runs");
        assert!(out.status.success(), "{flag}");
        let text = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            text.trim(),
            format!("cool {}", env!("CARGO_PKG_VERSION")),
            "{flag}"
        );
    }
}

#[test]
fn malformed_flag_values_exit_2_naming_the_flag() {
    // Satellite contract: a bad value for a known flag names that flag and
    // exits 2 — it does not dump the full usage text.
    for (args, flag) in [
        (vec!["run", "--set", "sensors"], "--set"),
        (vec!["run", "--set", "sensors=abc"], "--set"),
        (vec!["run", "--set", "volume=11"], "--set"),
        (vec!["trace", "--seed", "soon"], "--seed"),
        (vec!["trace", "--weather", "hail"], "--weather"),
        (
            vec!["estimate", "x.csv", "--discharge", "-4"],
            "--discharge",
        ),
        (
            vec!["estimate", "x.csv", "--capacity", "zero"],
            "--capacity",
        ),
        (vec!["serve", "--threads", "many"], "--threads"),
        (vec!["serve", "--queue-cap", "0"], "--queue-cap"),
        (vec!["serve", "--cache-cap", "-1"], "--cache-cap"),
        (vec!["serve", "--timeout-ms", "1.5"], "--timeout-ms"),
        (vec!["serve", "--smoke"], "--smoke"),
    ] {
        let out = cool().args(&args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr).to_string();
        assert!(stderr.contains(flag), "{args:?}: {stderr}");
        assert!(
            !stderr.contains("usage:"),
            "named-flag errors must not dump usage ({args:?}): {stderr}"
        );
    }
}

#[test]
fn usage_lists_the_serve_subcommand_and_its_flags() {
    let out = cool().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    for needle in [
        "cool serve",
        "--addr",
        "--threads",
        "--queue-cap",
        "--cache-cap",
        "--timeout-ms",
        "--smoke",
        "--version",
    ] {
        assert!(stderr.contains(needle), "usage lacks `{needle}`: {stderr}");
    }
}

#[test]
fn serve_smoke_runs_the_full_protocol() {
    let path = format!("{}/scenarios/paper_testbed.txt", env!("CARGO_MANIFEST_DIR"));
    let out = cool()
        .args(["serve", "--smoke", &path])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let page = String::from_utf8_lossy(&out.stdout).to_string();
    for series in [
        "cool_requests_total",
        "cool_request_seconds_bucket",
        "cool_cache_hits_total",
        "cool_cache_misses_total",
        "cool_queue_depth",
    ] {
        assert!(page.contains(series), "missing `{series}`:\n{page}");
    }
}

#[test]
fn bundled_scenarios_run() {
    for file in [
        "paper_testbed.txt",
        "overcast_week.txt",
        "dense_fast_recharge.txt",
    ] {
        let path = format!("{}/scenarios/{file}", env!("CARGO_MANIFEST_DIR"));
        let out = cool().args(["run", &path]).output().expect("binary runs");
        assert!(
            out.status.success(),
            "{file} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        // The bound must dominate the achieved utility in every bundle.
        let pick = |label: &str| -> f64 {
            text.lines()
                .find(|l| l.contains(label))
                .and_then(|l| l.split('|').nth(2))
                .and_then(|c| c.trim().trim_end_matches('%').parse().ok())
                .unwrap_or_else(|| panic!("missing {label} in output:\n{text}"))
        };
        let avg = pick("avg utility / target / slot");
        let bound = pick("optimum upper bound");
        assert!(avg <= bound + 1e-9, "{file}: {avg} > {bound}");
    }
}

#[test]
fn check_is_byte_for_byte_reproducible() {
    let run = || {
        cool()
            .args(["check", "--seed", "42", "--cases", "4", "--no-serve"])
            .output()
            .expect("binary runs")
    };
    let first = run();
    assert!(
        first.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&first.stderr)
    );
    let second = run();
    assert_eq!(
        first.stdout, second.stdout,
        "same seed must render byte-identical output"
    );
    let text = String::from_utf8_lossy(&first.stdout).to_string();
    assert!(text.contains("summary: 4 cases"), "{text}");
    assert!(text.trim_end().ends_with("ok"), "{text}");
}

#[test]
fn check_flags_follow_the_exit_2_contract() {
    for (args, flag) in [
        (vec!["check", "--seed", "soon"], "--seed"),
        (vec!["check", "--cases", "0"], "--cases"),
        (vec!["check", "--ratio", "-1"], "--ratio"),
        (vec!["check", "--lp-trials", "few"], "--lp-trials"),
        (vec!["check", "--replay", "/nonexistent/ce.txt"], "--replay"),
    ] {
        let out = cool().args(&args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr).to_string();
        assert!(stderr.contains(flag), "{args:?}: {stderr}");
    }
}

#[test]
fn check_replays_a_written_counterexample() {
    // An impossible ratio manufactures a violation; the shrunk file it
    // writes must replay (exit 1, "still reproduces") under the same
    // settings and come up clean under the defaults.
    let dir = std::env::temp_dir().join(format!("cool_cli_check_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let out = cool()
        .args([
            "check",
            "--seed",
            "42",
            "--cases",
            "3",
            "--ratio",
            "1.01",
            "--no-serve",
            "--out",
        ])
        .arg(&dir)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "impossible ratio must fail");

    let ce = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().contains("greedy-ratio"))
        })
        .expect("a greedy-ratio counterexample was written");

    let out = cool()
        .args(["check", "--ratio", "1.01", "--no-serve", "--out"])
        .arg(&dir)
        .arg("--replay")
        .arg(&ce)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("still reproduces"), "{text}");

    let out = cool()
        .args(["check", "--no-serve", "--out"])
        .arg(&dir)
        .arg("--replay")
        .arg(&ce)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "fixed ratio must replay clean");
    std::fs::remove_dir_all(&dir).ok();
}
