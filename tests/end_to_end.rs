//! End-to-end integration: geometry → utility → scheduler → testbed
//! simulator, checking that the planned utility is exactly realised by a
//! feasible schedule driven through the energy state machines.

use cool::common::{SeedSequence, SensorSet};
use cool::core::greedy::{greedy_schedule, greedy_schedule_lazy};
use cool::core::instances::geometric_multi_target;
use cool::core::policy::SchedulePolicy;
use cool::core::problem::Problem;
use cool::energy::ChargeCycle;
use cool::geometry::Rect;
use cool::testbed::{RooftopDeployment, TestbedSim};
use cool::utility::{DetectionUtility, SumUtility, UtilityFunction};

#[test]
fn geometric_pipeline_plans_and_executes() {
    let seeds = SeedSequence::new(501);
    let mut rng = seeds.nth_rng(0);

    // Build a geometric multi-target instance whose sensors live on the
    // simulated rooftop.
    let deployment = RooftopDeployment::new(Rect::square(40.0), 36, 12.0, &mut rng);
    let (utility, positions, _targets) =
        geometric_multi_target(Rect::square(40.0), 36, 6, 10.0, 0.4, &mut rng);
    assert_eq!(positions.len(), deployment.n_nodes());

    let cycle = ChargeCycle::paper_sunny();
    let problem = Problem::new(utility.clone(), cycle, 8).unwrap();
    let schedule = greedy_schedule(&problem);
    assert!(schedule.is_feasible(cycle));
    let planned = problem.average_utility_per_slot(&schedule);

    let mut sim = TestbedSim::new(deployment, cycle);
    let metrics = sim.run(
        SchedulePolicy::new(schedule),
        &utility,
        problem.horizon_slots(),
        &mut seeds.nth_rng(1),
    );
    assert_eq!(metrics.slots(), problem.horizon_slots());
    assert!(
        (metrics.average_utility() - planned).abs() < 1e-9,
        "simulated {} != planned {planned}",
        metrics.average_utility()
    );
    assert_eq!(metrics.activation_success_rate(), 1.0);
}

#[test]
fn lazy_and_naive_agree_through_the_full_problem_api() {
    let seeds = SeedSequence::new(502);
    let mut rng = seeds.nth_rng(0);
    let (utility, _, _) = geometric_multi_target(Rect::square(300.0), 80, 12, 60.0, 0.4, &mut rng);
    let problem = Problem::new(utility, ChargeCycle::paper_sunny(), 3).unwrap();
    let a = greedy_schedule(&problem);
    let b = greedy_schedule_lazy(&problem);
    assert_eq!(a.assignment(), b.assignment());
}

#[test]
fn fast_recharge_pipeline_schedules_passive_slots() {
    // ρ = 1/3: sensors are active 3 of every 4 slots.
    let cycle = ChargeCycle::from_rho(1.0 / 3.0, 15.0).unwrap();
    let utility = DetectionUtility::uniform(12, 0.3);
    let problem = Problem::new(utility.clone(), cycle, 4).unwrap();
    let schedule = greedy_schedule(&problem);
    assert!(schedule.is_feasible(cycle));

    // Per-slot active count is n − (passive allocations in that slot);
    // total activity across a period is n · (T − 1).
    let total_active: usize = (0..4).map(|t| schedule.active_set(t).len()).sum();
    assert_eq!(total_active, 12 * 3);

    // And it executes loss-free on the simulator.
    let seeds = SeedSequence::new(503);
    let mut rng = seeds.nth_rng(0);
    let deployment = RooftopDeployment::new(Rect::square(20.0), 12, 10.0, &mut rng);
    let mut sim = TestbedSim::new(deployment, cycle);
    let metrics = sim.run(SchedulePolicy::new(schedule), &utility, 16, &mut rng);
    assert_eq!(metrics.activation_success_rate(), 1.0);
}

#[test]
fn multi_target_average_matches_manual_accounting() {
    // Cross-check Problem's averaging against a hand-rolled slot loop.
    let cov = [
        SensorSet::from_indices(9, [0, 1, 2, 3]),
        SensorSet::from_indices(9, [3, 4, 5]),
        SensorSet::from_indices(9, [6, 7, 8]),
    ];
    let utility = SumUtility::multi_target_detection(&cov, 0.5);
    let problem = Problem::new(utility.clone(), ChargeCycle::paper_sunny(), 5).unwrap();
    let schedule = greedy_schedule(&problem);

    let mut manual = 0.0;
    for _period in 0..5 {
        for t in 0..4 {
            manual += utility.eval(&schedule.active_set(t));
        }
    }
    manual /= f64::from(5 * 4) * utility.n_targets() as f64;
    assert!((problem.average_utility_per_target_slot(&schedule) - manual).abs() < 1e-12);
}
