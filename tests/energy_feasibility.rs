//! Cross-crate property tests of the energy model: every schedule the
//! library produces must drive the node state machines without a single
//! refused activation, under every charge cycle, horizon and utility —
//! and the machines themselves must conserve energy.

use cool::common::{SeedSequence, SensorId};
use cool::core::greedy::{greedy_active_naive, greedy_passive_naive, greedy_schedule};
use cool::core::horizon::greedy_horizon;
use cool::core::instances::random_multi_target;
use cool::core::problem::Problem;
use cool::energy::{ChargeCycle, NodeEnergyMachine, Weather};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every period schedule from every scheduler is honoured exactly by
    /// the energy machines across many periods, for every integral ρ.
    #[test]
    fn period_schedules_never_refused(
        n in 1usize..10,
        ratio in 1usize..6,
        invert in any::<bool>(),
        periods in 1usize..5,
        seed in any::<u64>(),
    ) {
        let rho = if invert { 1.0 / ratio as f64 } else { ratio as f64 };
        let cycle = ChargeCycle::from_rho(rho, 15.0).unwrap();
        let mut rng = SeedSequence::new(seed).nth_rng(0);
        let u = random_multi_target(n, 2, 0.5, 0.4, &mut rng);
        let schedule = if cycle.rho() > 1.0 {
            greedy_active_naive(&u, cycle.slots_per_period()).unwrap()
        } else {
            greedy_passive_naive(&u, cycle.slots_per_period()).unwrap()
        };
        for v in 0..n {
            let mut node = NodeEnergyMachine::new(cycle);
            for _ in 0..periods {
                for t in 0..cycle.slots_per_period() {
                    let want = schedule.is_active(SensorId(v), t);
                    let got = node.step(want);
                    prop_assert!(!want || got, "refused activation for v{v} slot {t}");
                }
            }
        }
    }

    /// The horizon scheduler honours heterogeneous per-sensor cycles.
    #[test]
    fn horizon_schedules_never_refused(
        n in 1usize..6,
        slots in 4usize..16,
        seed in any::<u64>(),
    ) {
        let mut rng = SeedSequence::new(seed).nth_rng(1);
        let u = random_multi_target(n, 2, 0.6, 0.4, &mut rng);
        let ratios = [1.0, 3.0, 5.0, 1.0 / 3.0];
        let cycles: Vec<ChargeCycle> = (0..n)
            .map(|v| ChargeCycle::from_rho(ratios[v % ratios.len()], 15.0).unwrap())
            .collect();
        let schedule = greedy_horizon(&u, &cycles, slots);
        prop_assert!(schedule.is_feasible(&cycles));
    }

    /// Energy machines never exceed their capacity or go negative under
    /// random request streams and random weather-derived cycles.
    #[test]
    fn machines_stay_in_bounds(
        weather_idx in 0usize..4,
        requests in proptest::collection::vec(any::<bool>(), 1..120),
        leakage in 0.0f64..0.2,
    ) {
        let cycle = Weather::ALL[weather_idx].charge_cycle().unwrap();
        let mut node = NodeEnergyMachine::new(cycle).with_ready_leakage(leakage);
        for &want in &requests {
            node.step(want);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&node.battery_fraction()));
        }
        let (active, passive, ready) = node.slot_counts();
        prop_assert_eq!((active + passive + ready) as usize, requests.len());
    }

    /// Problem-level consistency: average per-target utility is always in
    /// [0, 1] for detection utilities and is reproduced by the simulator's
    /// slot loop (spot-checked via the schedule's own accounting).
    #[test]
    fn average_utility_is_normalised(
        n in 1usize..15,
        m in 1usize..4,
        periods in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut rng = SeedSequence::new(seed).nth_rng(2);
        let u = random_multi_target(n, m, 0.5, 0.4, &mut rng);
        let problem = Problem::new(u, ChargeCycle::paper_sunny(), periods).unwrap();
        let schedule = greedy_schedule(&problem);
        let avg = problem.average_utility_per_target_slot(&schedule);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&avg));
    }
}
