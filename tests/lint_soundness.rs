//! Lint soundness: a scenario that passes `cool lint` must execute.
//!
//! The linter's contract is `report.is_clean()` ⇒ the scheduler pipeline
//! accepts the scenario (no panic, no error, a feasible schedule). These
//! tests pin that implication on the shipped scenario files and on randomly
//! generated field assignments — both well-formed and corrupted.

use cool::lint::lint_scenario_text;
use cool::scenario::Scenario;
use proptest::prelude::*;

/// Renders a scenario file from explicit fields.
#[allow(clippy::too_many_arguments)]
fn scenario_text(
    sensors: usize,
    targets: usize,
    detection_p: f64,
    discharge: f64,
    recharge: f64,
    hours: f64,
    region: f64,
    radius: f64,
    seed: u64,
) -> String {
    format!(
        "sensors = {sensors}\ntargets = {targets}\ndetection_p = {detection_p}\n\
         discharge_minutes = {discharge}\nrecharge_minutes = {recharge}\nhours = {hours}\n\
         region = {region}\nradius = {radius}\nseed = {seed}\n"
    )
}

/// Runs the full CLI pipeline the linter vouches for.
fn execute(text: &str) -> Result<(), String> {
    let scenario = Scenario::parse(text).map_err(|e| e.to_string())?;
    // Mirror the CLI dispatch: profile lists and strip-cover schedulers
    // run on the LCM tick grid, everything else on the slot path.
    if scenario.has_profiles() || scenario.scheduler.is_grid_scheduler() {
        let outcome = scenario.run_fleet()?;
        if outcome.schedule.is_feasible(&outcome.grid) {
            Ok(())
        } else {
            Err("grid schedule infeasible".into())
        }
    } else {
        let outcome = scenario.run()?;
        if outcome.schedule.is_feasible(outcome.cycle) {
            Ok(())
        } else {
            Err("schedule infeasible".into())
        }
    }
}

#[test]
fn shipped_scenarios_lint_clean_and_run() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("scenarios/ exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "txt") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let report = lint_scenario_text(&text, &path.display().to_string());
        assert!(report.is_clean(), "{report}");
        execute(&text).unwrap_or_else(|e| panic!("{} failed to run: {e}", path.display()));
        checked += 1;
    }
    assert!(
        checked >= 3,
        "expected the three shipped scenario files, found {checked}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Well-formed random scenarios: lint is clean and execution succeeds.
    #[test]
    fn clean_scenarios_execute(
        sensors in 1usize..30,
        targets in 1usize..5,
        p in 0.05f64..0.95,
        slot in 5.0f64..30.0,
        ratio in 1usize..6,
        invert in any::<bool>(),
        periods in 1usize..6,
        seed in any::<u64>(),
    ) {
        let (discharge, recharge) = if invert {
            (slot * ratio as f64, slot) // rho = 1/ratio
        } else {
            (slot, slot * ratio as f64) // rho = ratio
        };
        let period_minutes = discharge + recharge;
        // Half a period of slack so float rounding never lands the horizon a
        // hair short of the intended whole number of periods.
        let hours = period_minutes * (periods as f64 + 0.5) / 60.0;
        let text = scenario_text(
            sensors, targets, p, discharge, recharge, hours, 200.0, 80.0, seed,
        );
        let report = lint_scenario_text(&text, "generated.txt");
        prop_assert!(report.is_clean(), "{}", report);
        prop_assert!(execute(&text).is_ok());
    }

    /// The implication itself, on scenarios corrupted at random: whenever
    /// the linter stays quiet, execution must succeed. (The converse — the
    /// linter being *complete* — is deliberately not asserted; extra
    /// strictness like the degenerate-horizon error is allowed.)
    #[test]
    fn lint_clean_implies_run_succeeds(
        sensors in 0usize..20,
        targets in 0usize..4,
        p in -0.5f64..1.5,
        discharge in prop::sample::select(vec![0.0, 10.0, 15.0, 27.0]),
        recharge in prop::sample::select(vec![0.0, 15.0, 40.0, 45.0, 180.0]),
        hours in prop::sample::select(vec![0.2, 6.0, 12.0]),
        radius in prop::sample::select(vec![0.0, 50.0, 400.0]),
        seed in any::<u64>(),
    ) {
        let text = scenario_text(
            sensors, targets, p, discharge, recharge, hours, 250.0, radius, seed,
        );
        let report = lint_scenario_text(&text, "generated.txt");
        if report.is_clean() {
            prop_assert!(
                execute(&text).is_ok(),
                "lint saw nothing wrong but execution failed:\n{}",
                text
            );
        }
    }
}
