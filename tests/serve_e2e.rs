//! End-to-end tests of the `cool-serve` daemon over real sockets.
//!
//! Each test boots a server on an ephemeral port and drives it with raw
//! `std::net::TcpStream` writes — no client library — covering the happy
//! path (schedule + cache hit), the lint pre-flight rejection, queue
//! saturation (429), request timeouts (408), the `/metrics` scrape, and
//! the graceful-shutdown drain contract.

// The raw-socket helpers below sit outside `#[test]` functions, where the
// lint wall's in-test unwrap allowance does not reach; panicking on
// transport failures is exactly what an e2e harness should do.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use cool::serve::{Server, ServerConfig};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

/// Boots a daemon on `127.0.0.1:0` and returns its address plus the
/// serving thread.
fn boot(mut config: ServerConfig) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    config.addr = "127.0.0.1:0".to_string();
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// One raw HTTP/1.1 exchange: hand-written request bytes in, full response
/// text out, parsed into (status, head, body).
fn raw_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut request = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        let _ = write!(request, "{name}: {value}\r\n");
    }
    request.push_str("\r\n");
    request.push_str(body);
    stream.write_all(request.as_bytes()).expect("write request");

    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header separator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {head}"));
    (status, head.to_string(), body.to_string())
}

fn schedule_body(scenario: &str) -> String {
    format!("{{\"scenario\":{}}}", cool::common::json::escape(scenario))
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<std::io::Result<()>>) {
    let (status, _, _) = raw_request(addr, "POST", "/v1/shutdown", &[], "");
    assert_eq!(status, 200);
    handle
        .join()
        .expect("server thread exits")
        .expect("server loop clean");
}

#[test]
fn schedule_cache_lint_and_metrics_over_the_wire() {
    let (addr, handle) = boot(ServerConfig::default());

    let (status, _, health) = raw_request(addr, "GET", "/healthz", &[], "");
    assert_eq!(status, 200);
    assert!(health.contains("\"status\":\"ok\""));

    // Schedule the paper testbed scenario; first request is a cold miss.
    let scenario = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/paper_testbed.txt"
    ))
    .expect("bundled scenario");
    let body = schedule_body(&scenario);
    let (status, head, first) = raw_request(addr, "POST", "/v1/schedule", &[], &body);
    assert_eq!(status, 200, "{first}");
    assert!(head.contains("x-cool-cache: miss"), "{head}");
    assert!(first.contains("\"average_per_target_slot\""));

    // Identical second request: recorded cache hit, byte-identical body.
    let (status, head, second) = raw_request(addr, "POST", "/v1/schedule", &[], &body);
    assert_eq!(status, 200);
    assert!(head.contains("x-cool-cache: hit"), "{head}");
    assert_eq!(first, second, "cache hit must replay the exact bytes");

    // Lint pre-flight rejection carries COOL codes.
    let bad = schedule_body("recharge_minutes = 40\n");
    let (status, _, rejected) = raw_request(addr, "POST", "/v1/schedule", &[], &bad);
    assert_eq!(status, 422, "{rejected}");
    assert!(rejected.contains("COOL-E012"), "{rejected}");
    assert!(rejected.contains("\"lint\":{"), "{rejected}");

    // Unparsable JSON is COOL-E019.
    let (status, _, garbage) = raw_request(addr, "POST", "/v1/schedule", &[], "not json");
    assert_eq!(status, 400);
    assert!(garbage.contains("COOL-E019"));

    // The scrape reflects everything above.
    let (status, _, page) = raw_request(addr, "GET", "/metrics", &[], "");
    assert_eq!(status, 200);
    for series in [
        "cool_requests_total{endpoint=\"schedule\",status=\"200\"} 2",
        "cool_requests_total{endpoint=\"schedule\",status=\"422\"} 1",
        "cool_request_seconds_bucket",
        "cool_cache_hits_total 1",
        "cool_cache_misses_total 1",
        "cool_cache_entries 1",
        "cool_queue_depth",
        "cool_inflight_requests",
    ] {
        assert!(page.contains(series), "missing `{series}` in:\n{page}");
    }

    shutdown(addr, handle);
}

#[test]
fn batch_requests_fan_out_and_report_per_item_status() {
    let (addr, handle) = boot(ServerConfig::default());
    let body = r#"{"batch":[
        {"scenario":"sensors = 10\n"},
        {"scenario":"sensors = 10\n","algorithm":"horizon"},
        {"scenario":"recharge_minutes = 40\n"}
    ]}"#;
    let (status, _, response) = raw_request(addr, "POST", "/v1/schedule", &[], body);
    assert_eq!(status, 200, "{response}");
    assert!(response.contains("\"count\":3"));
    assert!(response.contains("\"http_status\":200"));
    assert!(response.contains("\"http_status\":422"));
    assert!(response.contains("COOL-E012"));
    shutdown(addr, handle);
}

#[test]
fn saturated_queue_sheds_load_with_429() {
    let (addr, handle) = boot(ServerConfig {
        threads: 1,
        queue_cap: 1,
        test_hooks: true,
        ..ServerConfig::default()
    });

    // Six concurrent slow requests against one worker and a one-slot
    // queue: at most two can be in the system, the rest must be shed.
    let workers: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let body = schedule_body("sensors = 6\n");
                let (status, _, response) = raw_request(
                    addr,
                    "POST",
                    "/v1/schedule",
                    &[("x-cool-test-sleep-ms", "400")],
                    &body,
                );
                (status, response)
            })
        })
        .collect();
    let outcomes: Vec<(u16, String)> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    let served = outcomes.iter().filter(|(s, _)| *s == 200).count();
    let shed: Vec<&(u16, String)> = outcomes.iter().filter(|(s, _)| *s == 429).collect();
    assert!(served >= 1, "no request was served: {outcomes:?}");
    assert!(
        !shed.is_empty(),
        "bounded queue never shed load: {outcomes:?}"
    );
    for (_, response) in &shed {
        assert!(response.contains("COOL-E018"), "{response}");
    }

    let (_, _, page) = raw_request(addr, "GET", "/metrics", &[], "");
    assert!(
        !page.contains("cool_queue_rejections_total 0"),
        "rejections not recorded:\n{page}"
    );
    shutdown(addr, handle);
}

#[test]
fn requests_past_their_budget_answer_408() {
    let (addr, handle) = boot(ServerConfig {
        timeout_ms: 100,
        test_hooks: true,
        ..ServerConfig::default()
    });
    let body = schedule_body("sensors = 6\n");
    let (status, _, response) = raw_request(
        addr,
        "POST",
        "/v1/schedule",
        &[("x-cool-test-sleep-ms", "400")],
        &body,
    );
    assert_eq!(status, 408, "{response}");
    assert!(response.contains("COOL-E017"), "{response}");
    let (_, _, page) = raw_request(addr, "GET", "/metrics", &[], "");
    assert!(page.contains("cool_request_timeouts_total 1"), "{page}");
    shutdown(addr, handle);
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let (addr, handle) = boot(ServerConfig {
        threads: 2,
        test_hooks: true,
        ..ServerConfig::default()
    });

    // A slow request occupies a worker while shutdown is requested.
    let slow = std::thread::spawn(move || {
        let body = schedule_body("sensors = 8\n");
        raw_request(
            addr,
            "POST",
            "/v1/schedule",
            &[("x-cool-test-sleep-ms", "500")],
            &body,
        )
    });
    // Let the slow request reach its worker before asking for shutdown.
    std::thread::sleep(Duration::from_millis(150));
    let (status, _, _) = raw_request(addr, "POST", "/v1/shutdown", &[], "");
    assert_eq!(status, 200);

    // Drain contract: the accepted slow request still completes with 200.
    let (status, _, response) = slow.join().expect("slow request thread");
    assert_eq!(
        status, 200,
        "in-flight request dropped on shutdown: {response}"
    );
    handle
        .join()
        .expect("server thread exits")
        .expect("server loop clean");

    // And the listener is really gone.
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
}
