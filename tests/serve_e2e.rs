//! End-to-end tests of the `cool-serve` daemon over real sockets.
//!
//! Each test boots a server on an ephemeral port and drives it with raw
//! `std::net::TcpStream` writes — no client library — covering the happy
//! path (schedule + cache hit), the lint pre-flight rejection, queue
//! saturation (429), request timeouts (408), the `/metrics` scrape, and
//! the graceful-shutdown drain contract.

// The raw-socket helpers below sit outside `#[test]` functions, where the
// lint wall's in-test unwrap allowance does not reach; panicking on
// transport failures is exactly what an e2e harness should do.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use cool::serve::{ServeMode, Server, ServerConfig};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

/// Boots a daemon on `127.0.0.1:0` and returns its address plus the
/// serving thread.
fn boot(mut config: ServerConfig) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    config.addr = "127.0.0.1:0".to_string();
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// One raw HTTP/1.1 exchange: hand-written request bytes in, full response
/// text out, parsed into (status, head, body).
fn raw_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut request = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        let _ = write!(request, "{name}: {value}\r\n");
    }
    request.push_str("\r\n");
    request.push_str(body);
    stream.write_all(request.as_bytes()).expect("write request");

    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header separator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {head}"));
    (status, head.to_string(), body.to_string())
}

fn schedule_body(scenario: &str) -> String {
    format!("{{\"scenario\":{}}}", cool::common::json::escape(scenario))
}

/// One hand-written request that asks to keep the connection open (or pass
/// `connection: "close"` to end it).
fn keep_alive_bytes(method: &str, path: &str, connection: &str, body: &str) -> Vec<u8> {
    format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Reads exactly one `Content-Length`-framed response off a live keep-alive
/// connection; surplus bytes stay in `pending` for the next call.
fn read_framed(stream: &mut TcpStream, pending: &mut Vec<u8>) -> (u16, String, String) {
    let mut chunk = [0u8; 4096];
    let (head_end, content_length) = loop {
        if let Some(pos) = pending.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&pending[..pos]).expect("utf-8 head");
            let length = head
                .lines()
                .skip(1)
                .find_map(|line| {
                    let (name, value) = line.split_once(':')?;
                    name.trim()
                        .eq_ignore_ascii_case("content-length")
                        .then(|| value.trim().parse::<usize>().expect("content-length"))
                })
                .unwrap_or(0);
            break (pos, length);
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "connection closed mid-head: {pending:?}");
        pending.extend_from_slice(&chunk[..n]);
    };
    let total = head_end + 4 + content_length;
    while pending.len() < total {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "connection closed mid-body");
        pending.extend_from_slice(&chunk[..n]);
    }
    let head = String::from_utf8_lossy(&pending[..head_end]).to_string();
    let body = String::from_utf8_lossy(&pending[head_end + 4..total]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {head}"));
    pending.drain(..total);
    (status, head, body)
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<std::io::Result<()>>) {
    let (status, _, _) = raw_request(addr, "POST", "/v1/shutdown", &[], "");
    assert_eq!(status, 200);
    handle
        .join()
        .expect("server thread exits")
        .expect("server loop clean");
}

#[test]
fn schedule_cache_lint_and_metrics_over_the_wire() {
    let (addr, handle) = boot(ServerConfig::default());

    let (status, _, health) = raw_request(addr, "GET", "/healthz", &[], "");
    assert_eq!(status, 200);
    assert!(health.contains("\"status\":\"ok\""));

    // Schedule the paper testbed scenario; first request is a cold miss.
    let scenario = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/paper_testbed.txt"
    ))
    .expect("bundled scenario");
    let body = schedule_body(&scenario);
    let (status, head, first) = raw_request(addr, "POST", "/v1/schedule", &[], &body);
    assert_eq!(status, 200, "{first}");
    assert!(head.contains("x-cool-cache: miss"), "{head}");
    assert!(first.contains("\"average_per_target_slot\""));

    // Identical second request: recorded cache hit, byte-identical body.
    let (status, head, second) = raw_request(addr, "POST", "/v1/schedule", &[], &body);
    assert_eq!(status, 200);
    assert!(head.contains("x-cool-cache: hit"), "{head}");
    assert_eq!(first, second, "cache hit must replay the exact bytes");

    // Lint pre-flight rejection carries COOL codes.
    let bad = schedule_body("recharge_minutes = 40\n");
    let (status, _, rejected) = raw_request(addr, "POST", "/v1/schedule", &[], &bad);
    assert_eq!(status, 422, "{rejected}");
    assert!(rejected.contains("COOL-E012"), "{rejected}");
    assert!(rejected.contains("\"lint\":{"), "{rejected}");

    // Unparsable JSON is COOL-E019.
    let (status, _, garbage) = raw_request(addr, "POST", "/v1/schedule", &[], "not json");
    assert_eq!(status, 400);
    assert!(garbage.contains("COOL-E019"));

    // The scrape reflects everything above.
    let (status, _, page) = raw_request(addr, "GET", "/metrics", &[], "");
    assert_eq!(status, 200);
    for series in [
        "cool_requests_total{endpoint=\"schedule\",status=\"200\"} 2",
        "cool_requests_total{endpoint=\"schedule\",status=\"422\"} 1",
        "cool_request_seconds_bucket",
        "cool_cache_hits_total 1",
        "cool_cache_misses_total 1",
        "cool_cache_entries 1",
        "cool_queue_depth",
        "cool_inflight_requests",
    ] {
        assert!(page.contains(series), "missing `{series}` in:\n{page}");
    }

    shutdown(addr, handle);
}

#[test]
fn batch_requests_fan_out_and_report_per_item_status() {
    let (addr, handle) = boot(ServerConfig::default());
    let body = r#"{"batch":[
        {"scenario":"sensors = 10\n"},
        {"scenario":"sensors = 10\n","algorithm":"horizon"},
        {"scenario":"recharge_minutes = 40\n"}
    ]}"#;
    let (status, _, response) = raw_request(addr, "POST", "/v1/schedule", &[], body);
    assert_eq!(status, 200, "{response}");
    assert!(response.contains("\"count\":3"));
    assert!(response.contains("\"http_status\":200"));
    assert!(response.contains("\"http_status\":422"));
    assert!(response.contains("COOL-E012"));
    shutdown(addr, handle);
}

#[test]
fn saturated_queue_sheds_load_with_429() {
    let (addr, handle) = boot(ServerConfig {
        threads: 1,
        queue_cap: 1,
        test_hooks: true,
        ..ServerConfig::default()
    });

    // Six concurrent slow requests against one worker and a one-slot
    // queue: at most two can be in the system, the rest must be shed.
    let workers: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let body = schedule_body("sensors = 6\n");
                let (status, _, response) = raw_request(
                    addr,
                    "POST",
                    "/v1/schedule",
                    &[("x-cool-test-sleep-ms", "400")],
                    &body,
                );
                (status, response)
            })
        })
        .collect();
    let outcomes: Vec<(u16, String)> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    let served = outcomes.iter().filter(|(s, _)| *s == 200).count();
    let shed: Vec<&(u16, String)> = outcomes.iter().filter(|(s, _)| *s == 429).collect();
    assert!(served >= 1, "no request was served: {outcomes:?}");
    assert!(
        !shed.is_empty(),
        "bounded queue never shed load: {outcomes:?}"
    );
    for (_, response) in &shed {
        assert!(response.contains("COOL-E018"), "{response}");
    }

    let (_, _, page) = raw_request(addr, "GET", "/metrics", &[], "");
    assert!(
        !page.contains("cool_queue_rejections_total 0"),
        "rejections not recorded:\n{page}"
    );
    shutdown(addr, handle);
}

#[test]
fn requests_past_their_budget_answer_408() {
    let (addr, handle) = boot(ServerConfig {
        timeout_ms: 100,
        test_hooks: true,
        ..ServerConfig::default()
    });
    let body = schedule_body("sensors = 6\n");
    let (status, _, response) = raw_request(
        addr,
        "POST",
        "/v1/schedule",
        &[("x-cool-test-sleep-ms", "400")],
        &body,
    );
    assert_eq!(status, 408, "{response}");
    assert!(response.contains("COOL-E017"), "{response}");
    let (_, _, page) = raw_request(addr, "GET", "/metrics", &[], "");
    assert!(page.contains("cool_request_timeouts_total 1"), "{page}");
    shutdown(addr, handle);
}

#[test]
fn pipelined_request_after_a_4xx_is_still_answered() {
    let (addr, handle) = boot(ServerConfig::default());
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // One burst, two requests: the first draws a route-level 400 (bad
    // JSON), which must not tear down the connection before the pipelined
    // follower is answered.
    let mut burst = keep_alive_bytes("POST", "/v1/schedule", "keep-alive", "not json");
    burst.extend_from_slice(&keep_alive_bytes("GET", "/healthz", "keep-alive", ""));
    stream.write_all(&burst).expect("write burst");

    let mut pending = Vec::new();
    let (status, head, body) = read_framed(&mut stream, &mut pending);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("COOL-E019"), "{body}");
    assert!(head.contains("connection: keep-alive"), "{head}");
    let (status, _, body) = read_framed(&mut stream, &mut pending);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""));

    drop(stream);
    shutdown(addr, handle);
}

#[test]
fn idle_keep_alive_connections_are_closed_by_the_idle_timeout() {
    let (addr, handle) = boot(ServerConfig {
        idle_timeout_ms: 100,
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(&keep_alive_bytes("GET", "/healthz", "keep-alive", ""))
        .expect("write");
    let mut pending = Vec::new();
    let (status, head, _) = read_framed(&mut stream, &mut pending);
    assert_eq!(status, 200);
    assert!(head.contains("connection: keep-alive"), "{head}");

    // Then silence: the daemon must close the idle connection on its own.
    let start = std::time::Instant::now();
    let mut sink = [0u8; 64];
    let n = stream.read(&mut sink).expect("EOF, not a reset or timeout");
    assert_eq!(n, 0, "expected idle-timeout close, read {n} bytes");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "idle close took {:?}",
        start.elapsed()
    );
    shutdown(addr, handle);
}

#[test]
fn connection_close_overrides_the_http11_keep_alive_default() {
    let (addr, handle) = boot(ServerConfig::default());
    // raw_request sends HTTP/1.1 with `connection: close`; the response
    // must advertise the close and actually end the connection (the
    // read_to_string inside raw_request only returns on EOF).
    let (status, head, _) = raw_request(addr, "GET", "/healthz", &[], "");
    assert_eq!(status, 200);
    assert!(head.contains("connection: close"), "{head}");
    shutdown(addr, handle);
}

#[test]
fn keep_alive_request_cap_forces_a_close() {
    let (addr, handle) = boot(ServerConfig {
        keep_alive_max: 2,
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut pending = Vec::new();

    stream
        .write_all(&keep_alive_bytes("GET", "/healthz", "keep-alive", ""))
        .expect("write first");
    let (status, head, _) = read_framed(&mut stream, &mut pending);
    assert_eq!(status, 200);
    assert!(head.contains("connection: keep-alive"), "{head}");

    // The capping request is still answered, but with `connection: close`.
    stream
        .write_all(&keep_alive_bytes("GET", "/healthz", "keep-alive", ""))
        .expect("write second");
    let (status, head, _) = read_framed(&mut stream, &mut pending);
    assert_eq!(status, 200);
    assert!(head.contains("connection: close"), "{head}");
    let mut sink = [0u8; 64];
    assert_eq!(
        stream.read(&mut sink).expect("EOF after cap"),
        0,
        "connection must close once the request cap is reached"
    );
    shutdown(addr, handle);
}

#[test]
fn threaded_429_path_honours_the_configured_budget() {
    // Regression: `reject_overloaded` used to consume the request under a
    // hardcoded 500 ms read timeout, ignoring `--timeout-ms`.
    let (addr, handle) = boot(ServerConfig {
        mode: ServeMode::Threaded,
        threads: 1,
        queue_cap: 1,
        timeout_ms: 120,
        test_hooks: true,
        ..ServerConfig::default()
    });

    // Saturate the one worker and then the one queue slot, staggered so
    // the first slow request is on the worker before the second queues.
    let send_slow = move || {
        std::thread::spawn(move || {
            let body = schedule_body("sensors = 6\n");
            raw_request(
                addr,
                "POST",
                "/v1/schedule",
                &[("x-cool-test-sleep-ms", "600")],
                &body,
            )
        })
    };
    let first = send_slow();
    std::thread::sleep(Duration::from_millis(100));
    let second = send_slow();
    std::thread::sleep(Duration::from_millis(100));

    // A shed connection that never finishes its request: the consuming
    // read must give up after ~120 ms, not the old hardcoded 500 ms.
    let start = std::time::Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"POST /v1/schedule HTTP/1.1\r\nhost: test\r\ncontent-length: 64\r\n\r\npartial")
        .expect("write partial");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read 429");
    let elapsed = start.elapsed();
    assert!(raw.contains("429"), "{raw}");
    assert!(raw.contains("COOL-E018"), "{raw}");
    assert!(
        elapsed < Duration::from_millis(450),
        "429 took {elapsed:?}; the configured 120 ms budget was not honoured"
    );

    // The saturating requests overshoot the same 120 ms budget and answer
    // a typed 408 — the point is they were accepted and answered, not shed.
    for worker in [first, second] {
        let (status, _, body) = worker.join().expect("slow request thread");
        assert_eq!(status, 408, "{body}");
        assert!(body.contains("COOL-E017"), "{body}");
    }
    shutdown(addr, handle);
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let (addr, handle) = boot(ServerConfig {
        threads: 2,
        test_hooks: true,
        ..ServerConfig::default()
    });

    // A slow request occupies a worker while shutdown is requested.
    let slow = std::thread::spawn(move || {
        let body = schedule_body("sensors = 8\n");
        raw_request(
            addr,
            "POST",
            "/v1/schedule",
            &[("x-cool-test-sleep-ms", "500")],
            &body,
        )
    });
    // Let the slow request reach its worker before asking for shutdown.
    std::thread::sleep(Duration::from_millis(150));
    let (status, _, _) = raw_request(addr, "POST", "/v1/shutdown", &[], "");
    assert_eq!(status, 200);

    // Drain contract: the accepted slow request still completes with 200.
    let (status, _, response) = slow.join().expect("slow request thread");
    assert_eq!(
        status, 200,
        "in-flight request dropped on shutdown: {response}"
    );
    handle
        .join()
        .expect("server thread exits")
        .expect("server loop clean");

    // And the listener is really gone.
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
}
