//! Randomised validation of the in-crate simplex against an independent
//! reference: for small LPs with bounded variables, dense grid search over
//! the box (feasibility-filtered) lower-bounds the optimum, and constraint
//! checking certifies the returned point. Run through the public facade.

use cool::core::simplex::{LinearProgram, Relation, SimplexError};
use proptest::prelude::*;

/// Builds `max c·x` s.t. `A x ≤ b`, `x ≤ 1` (boxed), `x ≥ 0` — always
/// feasible (x = 0) and always bounded (box).
fn boxed_lp(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> LinearProgram {
    let n = c.len();
    let mut lp = LinearProgram::new(n);
    lp.set_objective(c.to_vec());
    for (row, &rhs) in a.iter().zip(b) {
        lp.add_constraint(row.clone(), Relation::Le, rhs);
    }
    for v in 0..n {
        let mut row = vec![0.0; n];
        row[v] = 1.0;
        lp.add_constraint(row, Relation::Le, 1.0);
    }
    lp
}

fn grid_best(c: &[f64], a: &[Vec<f64>], b: &[f64], steps: usize) -> f64 {
    // Exhaustive grid over [0,1]^n (n ≤ 3).
    let n = c.len();
    let mut best = f64::NEG_INFINITY;
    let mut idx = vec![0usize; n];
    loop {
        let x: Vec<f64> = idx.iter().map(|&i| i as f64 / steps as f64).collect();
        let feasible = a
            .iter()
            .zip(b)
            .all(|(row, &rhs)| row.iter().zip(&x).map(|(r, xi)| r * xi).sum::<f64>() <= rhs + 1e-9);
        if feasible {
            let value: f64 = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
            best = best.max(value);
        }
        let mut d = 0;
        loop {
            if d == n {
                return best;
            }
            idx[d] += 1;
            if idx[d] <= steps {
                break;
            }
            idx[d] = 0;
            d += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The simplex optimum (a) satisfies all constraints and (b) dominates
    /// every feasible grid point.
    #[test]
    fn simplex_beats_grid_reference(
        c in proptest::collection::vec(0.0f64..5.0, 2..=3),
        rows in proptest::collection::vec(
            proptest::collection::vec(0.0f64..3.0, 3), 1..4),
        rhs in proptest::collection::vec(0.5f64..4.0, 1..4),
    ) {
        let n = c.len();
        let m = rows.len().min(rhs.len());
        let a: Vec<Vec<f64>> = rows[..m].iter().map(|r| r[..n].to_vec()).collect();
        let b = &rhs[..m];

        let lp = boxed_lp(&c, &a, b);
        let sol = lp.solve().expect("boxed LP is feasible and bounded");

        // (a) Feasibility of the returned point.
        for (row, &limit) in a.iter().zip(b) {
            let lhs: f64 = row.iter().zip(&sol.x).map(|(r, x)| r * x).sum();
            prop_assert!(lhs <= limit + 1e-6, "constraint violated: {lhs} > {limit}");
        }
        for &x in &sol.x {
            prop_assert!((-1e-9..=1.0 + 1e-6).contains(&x));
        }
        // Objective consistency.
        let recomputed: f64 = c.iter().zip(&sol.x).map(|(ci, xi)| ci * xi).sum();
        prop_assert!((recomputed - sol.objective_value).abs() < 1e-6);

        // (b) Dominance over the grid reference.
        let reference = grid_best(&c, &a, b, 20);
        prop_assert!(
            sol.objective_value + 1e-6 >= reference,
            "simplex {} below grid reference {}",
            sol.objective_value,
            reference
        );
    }

    /// Infeasibility detection: contradictory bounds are reported, never
    /// silently "solved".
    #[test]
    fn contradictions_are_infeasible(limit in 1.5f64..10.0) {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(vec![1.0]);
        lp.add_constraint(vec![1.0], Relation::Le, 1.0);
        lp.add_constraint(vec![1.0], Relation::Ge, limit);
        prop_assert_eq!(lp.solve().unwrap_err(), SimplexError::Infeasible);
    }
}
