//! Offline vendored shim for the subset of the `criterion` API used by the
//! workspace benches.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This shim keeps the bench sources compiling and
//! running: each benchmark executes a short timed loop and prints a
//! mean-time-per-iteration line. No statistics, plots, or baselines.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id made of the parameter rendering only.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// The timing harness handed to bench closures, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times to smooth noise.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: aim for a bounded wall-clock budget.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let budget = Duration::from_millis(200);
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// A named group of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / u32::try_from(bencher.iters).unwrap_or(u32::MAX)
        };
        println!(
            "{}/{label}: {mean:?}/iter ({} iters)",
            self.name, bencher.iters
        );
    }

    /// Benchmarks `routine` against one `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.to_string();
        self.run(&label, |b| routine(b, input));
        self
    }

    /// Benchmarks a closure under a plain string id.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        let mut routine = routine;
        self.run(id, &mut routine);
        self
    }

    /// Accepted for compatibility; the shim sizes runs by wall-clock budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, routine);
        self
    }
}

/// Declares a group-runner function from bench functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            });
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("naive", "n100").to_string(), "naive/n100");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
