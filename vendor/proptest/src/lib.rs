//! Offline vendored shim for the subset of the `proptest` API used by this
//! workspace.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This shim keeps the same surface syntax — the
//! [`proptest!`] macro, `prop_assert*!`, [`any`], range strategies,
//! [`collection::vec`] and [`ProptestConfig`] — backed by a simple
//! deterministic random-case runner (no shrinking; a failing case panics
//! with the generated inputs in the message instead).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream default is 256; keep it.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test random source handed to strategies.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Creates the RNG for `test_path` (module path + test name), case
    /// `case`. Deterministic across runs and machines.
    #[must_use]
    pub fn for_case(test_path: &str, case: u64) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Strategies: value generators for property inputs.
pub mod strategy {
    use super::TestRng;
    use rand::Rng;

    /// A generator of random values, mirroring `proptest::strategy::Strategy`
    /// (generation only — this shim does not shrink).
    pub trait Strategy {
        /// The value type produced.
        type Value: std::fmt::Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`, mirroring
        /// `proptest::strategy::Strategy::prop_map`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            T: std::fmt::Debug,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        T: std::fmt::Debug,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy for "any value of `T`" — see [`super::arbitrary`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Draws one value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng().random()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty => $via:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.rng().random::<$via>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8 => u64, u16 => u64, u32 => u32, u64 => u64, usize => u64,
                        i8 => u64, i16 => u64, i32 => u32, i64 => u64, isize => u64);

    impl Arbitrary for f64 {
        /// Uniform in `[0, 1)` plus occasional interesting magnitudes —
        /// enough spread for the numeric properties in this workspace.
        fn arbitrary(rng: &mut TestRng) -> Self {
            let unit: f64 = rng.rng().random();
            match rng.rng().random_range(0u32..8) {
                0 => 0.0,
                1 => -unit,
                2 => unit * 1e6,
                3 => -unit * 1e6,
                _ => unit,
            }
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// Always produces a clone of one value, mirroring `proptest::strategy::Just`.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Size specification for [`vec`]: a fixed size or a range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.rng().random_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.rng().random_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// Creates a strategy for vectors whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Strategy drawing uniformly from a fixed list of options.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone + std::fmt::Debug>(Vec<T>);

    /// Creates a strategy that picks one of `options` uniformly at random.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.rng().random_range(0..self.0.len());
            self.0[i].clone()
        }
    }
}

/// Returns the whole-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
#[must_use]
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any {
        _marker: std::marker::PhantomData,
    }
}

/// `proptest::prelude` lookalike: everything the `proptest!` macro and its
/// callers need in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::strategy::{Any, Arbitrary, Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
    pub use rand::{Rng, RngCore, SeedableRng};
}

/// Asserts a property-test condition; panics with the formatted message on
/// failure (the shim has no shrinking, so this is equivalent to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($config:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases: u32 = ($config).cases;
                let __path = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..__cases {
                    let mut __rng = $crate::TestRng::for_case(__path, u64::from(__case));
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    { $body }
                }
            }
        )+
    };
}

/// Declares property tests, mirroring `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn prop(x in 0usize..10, flip in any::<bool>()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)+) => {
        $crate::__proptest_fns! { config = ($config); $($rest)+ }
    };
    ($($rest:tt)+) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)+ }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(
            n in 1usize..40,
            x in -1e3f64..1e3,
            pair in (0usize..8, any::<bool>()),
            xs in collection::vec(0.0f64..=1.0, 1..20),
        ) {
            prop_assert!((1..40).contains(&n));
            prop_assert!((-1e3..1e3).contains(&x));
            prop_assert!(pair.0 < 8);
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|v| (0.0..=1.0).contains(v)));
        }

        #[test]
        fn any_u64_varies(a in any::<u64>(), b in any::<u64>()) {
            // Not a tautology: both draws come from one deterministic
            // stream, so equality would indicate a stuck generator.
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn default_config_without_attribute() {
        proptest! {
            fn inner(q in 0u32..5) {
                prop_assert!(q < 5);
            }
        }
        inner();
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("x::y", 3);
        let mut b = crate::TestRng::for_case("x::y", 3);
        use rand::Rng;
        assert_eq!(a.rng().random::<u64>(), b.rng().random::<u64>());
    }
}
