//! Offline vendored shim for the subset of the `rand` 0.9 API used by this
//! workspace.
//!
//! The build environment has no network access and no registry cache, so the
//! real `rand` crate cannot be fetched. This shim provides API-compatible
//! replacements for the pieces the workspace actually exercises:
//!
//! * [`Rng`] — `random`, `random_range`, `random_bool`;
//! * [`SeedableRng`] — `from_seed`, `seed_from_u64`;
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator.
//!
//! Streams are deterministic per seed (the property every test in the
//! workspace relies on) but are **not** bit-compatible with upstream
//! `StdRng` (ChaCha12); nothing in the workspace depends on the upstream
//! bit-stream.

/// Low-level entropy source: the object-safe core every generator
/// implements.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from an [`RngCore`] — the shim's
/// analogue of `StandardUniform: Distribution<T>`.
pub trait Random: Sized {
    /// Draws one uniformly distributed value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for usize {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for i64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled — the shim's analogue of `SampleRange`.
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Rejection-free-enough bounded integer sampling (Lemire-style would be
/// overkill here; modulo bias at 64-bit width is ≤ 2⁻⁵³ for every span the
/// workspace uses).
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "empty sampling span");
    // Widening multiply maps 64 random bits onto [0, span) almost uniformly.
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = sample_u64_below(rng, span);
                (self.start as i128 + i128::from(offset)) as $t
            }
        }

        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return (rng.next_u64() as i128 + lo as i128) as $t;
                }
                let offset = sample_u64_below(rng, span + 1);
                (lo as i128 + i128::from(offset)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = f64::random(rng);
        let sampled = self.start + unit * (self.end - self.start);
        // Guard against round-up to the excluded endpoint.
        if sampled >= self.end {
            self.start
                .max(self.end - (self.end - self.start) * f64::EPSILON)
        } else {
            sampled
        }
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        lo + f64::random(rng) * (hi - lo)
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of any [`Random`] type (uniform over its domain; `f64`
    /// is uniform in `[0, 1)`).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64
    /// (the conventional seeding mixer).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Not cryptographic — fine for simulations and tests, which
    /// is all this workspace does with it.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }

    /// Alias: the workspace treats `SmallRng` and `StdRng` identically.
    pub type SmallRng = StdRng;
}

/// `rand::prelude` lookalike.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..32).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.random()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&y));
            let z = rng.random_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&z));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
